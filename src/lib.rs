//! # dbscan-revisited
//!
//! A comprehensive Rust reproduction of **Gan & Tao, "DBSCAN Revisited: Mis-Claim,
//! Un-Fixability, and Approximation" (SIGMOD 2015)**.
//!
//! This facade crate re-exports the workspace members so downstream users can depend
//! on a single crate:
//!
//! * [`geom`] — points, boxes, grid cells, fast hashing;
//! * [`index`] — kd-tree, STR R-tree, uniform grid index, and the hierarchical-grid
//!   approximate range counter of the paper's Lemma 5;
//! * [`core`] — the DBSCAN definitions and all five algorithms (KDD96, Gunawan-2D,
//!   the paper's exact grid+BCP algorithm, the ρ-approximate algorithm, and the
//!   CIT08 grid-partitioned baseline), plus the USEC→DBSCAN reduction of Lemma 4;
//! * [`datagen`] — the seed-spreader generator of Section 5.1 and simulated
//!   stand-ins for the paper's real datasets;
//! * [`eval`] — clustering comparison, the sandwich-theorem checker, maximum legal
//!   ρ, and collapsing-radius search.
//!
//! ## Quickstart
//!
//! ```
//! use dbscan_revisited::core::{DbscanParams, algorithms};
//! use dbscan_revisited::geom::Point;
//!
//! // A tight pair of blobs plus one outlier.
//! let pts: Vec<Point<2>> = vec![
//!     Point([0.0, 0.0]), Point([1.0, 0.0]), Point([0.0, 1.0]),
//!     Point([10.0, 10.0]), Point([11.0, 10.0]), Point([10.0, 11.0]),
//!     Point([100.0, 100.0]),
//! ];
//! let params = DbscanParams::new(2.0, 3).unwrap();
//! let clustering = algorithms::grid_exact(&pts, params);
//! assert_eq!(clustering.num_clusters, 2);
//! assert!(clustering.assignments[6].is_noise());
//! ```

pub use dbscan_core as core;
pub use dbscan_datagen as datagen;
pub use dbscan_eval as eval;
pub use dbscan_geom as geom;
pub use dbscan_index as index;
pub use dbscan_viz as viz;
