#!/usr/bin/env bash
# Tier-1 gate: every change must pass this before merging (see README).
# Runs the release build, the full test suite, and a warning-free clippy
# sweep over all targets. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== fault-injection: cargo test -p dbscan-core --features fault-injection -q =="
cargo test -p dbscan-core --features fault-injection -q

echo "== fault-injection: seeded chaos CLI smoke =="
# A seeded FaultPlan kills every edge-phase task; fallback-sequential must
# absorb the panic (exit 0) and report the recovery in the v4 stats line.
chaos_csv=$(mktemp /tmp/dbscan-verify-chaos-XXXXXX.csv)
trace_json=$(mktemp /tmp/dbscan-verify-trace-XXXXXX.json)
trap 'rm -f "$chaos_csv" "$trace_json"; [[ -n "${srv_pid:-}" ]] && kill "$srv_pid" 2>/dev/null || true' EXIT
for i in $(seq 0 199); do
    echo "$(( i % 20 )).$(( i / 20 )),$(( i % 7 )).5"
done > "$chaos_csv"
stats_line=$(cargo run -q --release -p dbscan-cli --features fault-injection --bin dbscan -- \
    --input "$chaos_csv" --eps 1.5 --min-pts 4 --algorithm exact \
    --threads 4 --recovery fallback-sequential --faults seed=42,edge=1 \
    --stats --quiet)
echo "$stats_line"
echo "$stats_line" | grep -q '"schema":"dbscan-stats/v7"'
echo "$stats_line" | grep -q '"recovery":"fallback-sequential"'
echo "$stats_line" | grep -Eq '"sequential_fallbacks":[1-9]'

echo "== trace: chaos run exports a valid Chrome trace =="
# The same seeded chaos run with --trace must exit 0, produce parseable
# trace-event JSON, and record both the injected worker panics and at least
# one steal (4 workers over an uneven task list always steal).
cargo run -q --release -p dbscan-cli --features fault-injection --bin dbscan -- \
    --input "$chaos_csv" --eps 1.5 --min-pts 4 --algorithm exact \
    --threads 4 --recovery fallback-sequential --faults seed=42,edge=1 \
    --trace "$trace_json" --trace-format chrome --quiet
python3 -m json.tool "$trace_json" > /dev/null
grep -q '"name":"worker_panic"' "$trace_json"
grep -q '"name":"steal"' "$trace_json"

echo "== fault-injection: cargo test -p dbscan-server --features fault-injection -q =="
cargo test -p dbscan-server --features fault-injection -q

echo "== server: daemon + loadgen + telemetry smoke =="
# A fault-injection daemon serves a 16-job concurrent burst that includes one
# fault-seeded job (worker panic -> typed error, tenant isolation) and one
# with an unmeetable deadline. The loadgen exits non-zero unless every job
# resolved as expected AND the daemon's stats accounting is consistent
# (submitted == completed + failed + cancelled; shed counted separately) AND
# the `metrics` exposition agrees with that envelope at quiescence. The
# daemon runs with the whole telemetry plane on: a scrapeable HTTP metrics
# endpoint, a structured JSON log file, and the health time-series sampler.
# Afterwards: zero thread growth in the daemon, clean SIGTERM drain, exit 0.
cargo build -q --release -p dbscan-cli --features fault-injection
cargo build -q --release -p dbscan-bench --bin repro
srv_sock=$(mktemp -u /tmp/dbscan-verify-srv-XXXXXX.sock)
srv_log=$(mktemp /tmp/dbscan-verify-srv-XXXXXX.log)
srv_jsonlog=$(mktemp /tmp/dbscan-verify-srvlog-XXXXXX.jsonl)
lg_dir=$(mktemp -d /tmp/dbscan-verify-loadgen-XXXXXX)
./target/release/dbscan serve --socket "$srv_sock" --workers 2 --max-queue 8 \
    --drain-deadline 10s --metrics-listen 127.0.0.1:0 \
    --log-file "$srv_jsonlog" --log-level debug 2> "$srv_log" &
srv_pid=$!
for _ in $(seq 50); do [[ -S "$srv_sock" ]] && break; sleep 0.1; done
[[ -S "$srv_sock" ]]
# Warm-up burst so the executor pool and accept loop are fully spawned before
# the thread baseline is taken (they come up lazily around the first jobs).
./target/release/repro loadgen --socket "$srv_sock" --jobs 2 --out "$lg_dir" \
    > /dev/null 2>&1
sleep 1
threads_before=$(ls "/proc/$srv_pid/task" | wc -l)
lg_out=$(./target/release/repro loadgen --socket "$srv_sock" --jobs 16 \
    --faulted 1 --past-deadline 1 --traced 1 \
    --metrics-out "$lg_dir/loadgen_metrics.json" --out "$lg_dir" 2>/dev/null)
echo "$lg_out"
echo "$lg_out" | grep -q 'accounting ok'
echo "$lg_out" | grep -q 'metrics cross-check ok'
python3 -m json.tool "$lg_dir/loadgen_hist.json" > /dev/null

echo "== server: mid-run metrics time-series (dbscan-loadgen-metrics/v1) =="
# The loadgen's poller scraped the exposition every 100ms during the burst;
# the resulting time-series must parse, carry the schema tag, and hold
# monotonically non-decreasing counters.
python3 - "$lg_dir/loadgen_metrics.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "dbscan-loadgen-metrics/v1", doc["schema"]
assert doc["num_samples"] == len(doc["samples"]) >= 1
for key in ("jobs_submitted_total", "jobs_completed_total", "jobs_failed_total"):
    vals = [s[key] for s in doc["samples"]]
    assert vals == sorted(vals), f"{key} not monotonic: {vals}"
print(f"  loadgen metrics time-series ok ({doc['num_samples']} samples)")
PY

echo "== server: HTTP metrics endpoint scrape =="
# The serve banner on stderr names the ephemeral metrics port; a plain HTTP
# GET must return a parseable Prometheus exposition whose job counters
# satisfy the accounting invariant at quiescence and record the seeded
# worker panic of the faulted tenant.
metrics_url=$(grep -o 'http://[0-9.:]*/metrics' "$srv_log" | head -1)
[[ -n "$metrics_url" ]]
python3 - "$metrics_url" <<'PY'
import sys, urllib.request
text = urllib.request.urlopen(sys.argv[1], timeout=5).read().decode()
vals = {}
for line in text.splitlines():
    if not line or line.startswith("#"):
        continue
    name, _, val = line.rpartition(" ")
    float(val)  # every sample line must end in a number
    vals[name] = float(val)
sub = vals["dbscan_server_jobs_submitted_total"]
done = vals["dbscan_server_jobs_completed_total"]
fail = vals["dbscan_server_jobs_failed_total"]
canc = vals["dbscan_server_jobs_cancelled_total"]
assert sub == done + fail + canc, f"accounting broken: {sub} != {done}+{fail}+{canc}"
assert fail >= 1, "the faulted job should be in jobs_failed_total"
assert vals["dbscan_server_worker_panics_total"] >= 1, "seeded panic not recorded"
assert vals["dbscan_server_service_time_us_count"] == sub, "histogram count != jobs"
print(f"  scrape ok: submitted={sub:.0f} completed={done:.0f} failed={fail:.0f} "
      f"cancelled={canc:.0f} worker_panics={vals['dbscan_server_worker_panics_total']:.0f}")
PY

echo "== server: inline per-request chrome trace =="
# The traced submit must come back as valid Chrome trace-event JSON carrying
# per-phase spans (the cells may come from the structure cache, so the
# labeling-side phases are the stable ones to probe).
python3 -m json.tool "$lg_dir/loadgen_trace.json" > /dev/null
grep -q '"cat":"phase"' "$lg_dir/loadgen_trace.json"
grep -q '"name":"edge_tests"' "$lg_dir/loadgen_trace.json"
grep -q '"name":"union_find"' "$lg_dir/loadgen_trace.json"

sleep 1   # per-connection threads park on a 50ms read timeout; let them reap
threads_after=$(ls "/proc/$srv_pid/task" | wc -l)
if (( threads_after > threads_before )); then
    echo "daemon leaked threads: $threads_before before burst, $threads_after after" >&2
    exit 1
fi
kill -TERM "$srv_pid"
wait "$srv_pid"   # drain must exit 0; set -e fails the gate otherwise
srv_pid=""
[[ ! -S "$srv_sock" ]]   # drain unlinks the socket

echo "== server: structured log lifecycle events =="
# Every line of the JSON log must parse, and the daemon's lifecycle —
# start (with its config echo), drain, exit (with the final counters) —
# must appear in order around the per-job records.
python3 - "$srv_jsonlog" <<'PY'
import json, sys
events = [json.loads(l)["event"] for l in open(sys.argv[1]) if l.strip()]
for needed in ("server_start", "job_submitted", "job_done", "server_drain", "server_exit"):
    assert needed in events, f"missing {needed} in {events}"
assert events.index("server_start") < events.index("server_drain") < events.index("server_exit")
print(f"  structured log ok ({len(events)} records)")
PY
rm -rf "$lg_dir" "$srv_log" "$srv_jsonlog"

echo "== deadline: zero-budget degrade smoke =="
# A zero budget under the degrade policy must still exit 0: every edge test
# routes through the Lemma-5 approximate counter (Sandwich-Theorem valid) and
# the stats envelope records the degraded outcome with a non-zero edge count.
dl_line=$(cargo run -q --release -p dbscan-cli --bin dbscan -- \
    --input "$chaos_csv" --eps 1.5 --min-pts 4 --algorithm exact \
    --deadline 0s --deadline-policy degrade --degrade-rho 0.01 \
    --stats --quiet)
echo "$dl_line"
echo "$dl_line" | grep -q '"schema":"dbscan-stats/v7"'
echo "$dl_line" | grep -q '"outcome":"degraded"'
echo "$dl_line" | grep -Eq '"degraded_edges":[1-9]'

echo "== deadline: zero-budget abort smoke =="
# The abort policy must surface the typed error: non-zero exit and the
# diagnostic on stderr.
if cargo run -q --release -p dbscan-cli --bin dbscan -- \
    --input "$chaos_csv" --eps 1.5 --min-pts 4 --algorithm exact \
    --deadline 0s --deadline-policy abort --quiet 2> /tmp/dbscan-verify-abort.err; then
    echo "abort run unexpectedly succeeded" >&2
    exit 1
fi
grep -q 'deadline exceeded' /tmp/dbscan-verify-abort.err
rm -f /tmp/dbscan-verify-abort.err

echo "== server: crash-durability drill (kill -9 + journal replay) =="
# `repro crashchaos` spawns its own journaled daemon (--journal-sync always),
# SIGKILLs it at a seeded point mid-burst, restarts it on the same journal,
# and exits non-zero unless the recovery invariant held: no acked job lost,
# no delivered (tombstoned) job re-run, every replayed result bit-identical
# to the standalone clustering, `recovered_jobs` accounting exact — and the
# journal compacted back below its trigger by quiescence.
cc_out=$(./target/release/repro crashchaos --seed 42)
echo "$cc_out"
echo "$cc_out" | grep -q 'recovery invariant ok'
echo "$cc_out" | grep -Eq 'journal compacted to [0-9]+ bytes'

if [[ "${VERIFY_BENCH:-0}" == "1" ]]; then
    echo "== bench: repro bench baseline (VERIFY_BENCH=1) =="
    # Snapshot the committed baseline before the bench overwrites it; the
    # kernel guard below compares fresh-vs-committed.
    kernel_baseline=$(mktemp /tmp/dbscan-verify-kernel-XXXXXX.json)
    git show HEAD:BENCH_core.json > "$kernel_baseline" 2>/dev/null \
        || cp BENCH_core.json "$kernel_baseline"
    cargo run -q --release -p dbscan-bench --bin repro -- bench --scale tiny
    python3 -m json.tool BENCH_core.json > /dev/null

    echo "== bench: label bit-identity smoke =="
    # The blocked kernels promise bit-identical labels: the FNV fingerprints
    # of every dataset x algorithm x mode cell must match the committed ones
    # (BENCH_labels.txt, recorded when the kernels landed). Any drift here is
    # a correctness bug, not noise — there is no tolerance.
    labels_now=$(mktemp /tmp/dbscan-verify-labels-XXXXXX.txt)
    cargo run -q --release -p dbscan-bench --bin repro -- labels \
        | grep '^labels ' > "$labels_now"
    diff BENCH_labels.txt "$labels_now"
    rm -f "$labels_now"

    echo "== bench: kernel hot-path regression guard =="
    # structure_build + edge_tests on the exact sequential path is exactly
    # the work the blocked SoA kernels (and the raised brute-force
    # crossover) own; a fresh measurement must not regress past the
    # committed baseline by more than VERIFY_BENCH_KERNEL_TOLERANCE. Set
    # VERIFY_BENCH_ALLOW_KERNEL_REGRESSION=1 to record a baseline on a host
    # whose timings are incomparable with the committed one (same escape
    # hatch pattern as the parallel guard below).
    tolerance="${VERIFY_BENCH_KERNEL_TOLERANCE:-1.05}" \
    baseline="$kernel_baseline" \
    python3 - <<'GUARD' || [[ "${VERIFY_BENCH_ALLOW_KERNEL_REGRESSION:-0}" == "1" ]]
import json, os, sys
tol = float(os.environ["tolerance"])
def kernel_time(path):
    rows = {}
    for e in json.load(open(path))["entries"]:
        if e["n"] == 20000 and e["algorithm"] == "exact" and e["threads_requested"] is None:
            ph = e["phases"]
            rows[e["dataset"]] = ph["structure_build_s"] + ph["edge_tests_s"]
    return rows
base, fresh = kernel_time(os.environ["baseline"]), kernel_time("BENCH_core.json")
ok = True
for ds in ("ss3d", "ss5d"):
    if ds not in base:
        print(f"  {ds}: no committed baseline row, skipping")
        continue
    verdict = "ok" if fresh[ds] <= base[ds] * tol else "REGRESSION"
    print(f"  {ds} exact seq n=20k kernel path: baseline {base[ds]*1e3:.3f}ms "
          f"fresh {fresh[ds]*1e3:.3f}ms ratio {fresh[ds]/base[ds]:.3f} "
          f"(tolerance {tol}) {verdict}")
    ok &= fresh[ds] <= base[ds] * tol
sys.exit(0 if ok else 1)
GUARD
    rm -f "$kernel_baseline"

    echo "== bench: parallel-vs-sequential regression guard =="
    # With the persistent worker pool, an all-cores parallel exact run at
    # n=20k must not be slower than the sequential run on the same input
    # (the regression this guard exists for was parallel = 6x sequential).
    # The bench interleaves seq/par repetitions (see bench_pair in
    # crates/bench), so the comparison is drift-free; the tolerance below
    # absorbs the remaining rep noise. It widened from 1.05 when the
    # blocked kernels roughly halved the exact totals: the parallel
    # dispatch overhead is fixed (~tens of microseconds), so on a ~0.8ms
    # cell it is now a larger *fraction* and measured ratios fluctuate
    # 0.98-1.06 run to run on a single-core host — 1.10 still catches the
    # regression class this guard exists for by an order of magnitude.
    # Set VERIFY_BENCH_ALLOW_PAR_REGRESSION=1 to record a baseline on a
    # machine where the guard is known to flap (e.g. a loaded CI box)
    # without failing the gate.
    tolerance="${VERIFY_BENCH_PAR_TOLERANCE:-1.10}" \
    python3 - <<'GUARD' || [[ "${VERIFY_BENCH_ALLOW_PAR_REGRESSION:-0}" == "1" ]]
import json, os, sys
doc = json.load(open("BENCH_core.json"))
tol = float(os.environ["tolerance"])
rows = {}
for e in doc["entries"]:
    if e["n"] != 20000 or e["algorithm"] != "exact":
        continue
    mode = "seq" if e["threads_requested"] is None else "par"
    rows[(e["dataset"], mode)] = e["total_s"]
ok = True
for ds in ("ss3d", "ss5d"):
    seq, par = rows[(ds, "seq")], rows[(ds, "par")]
    verdict = "ok" if par <= seq * tol else "REGRESSION"
    print(f"  {ds} exact n=20k: seq {seq*1e3:.3f}ms par {par*1e3:.3f}ms "
          f"ratio {par/seq:.3f} (tolerance {tol}) {verdict}")
    ok &= par <= seq * tol
sys.exit(0 if ok else 1)
GUARD
fi

echo "== tier-1: OK =="
