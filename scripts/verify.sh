#!/usr/bin/env bash
# Tier-1 gate: every change must pass this before merging (see README).
# Runs the release build, the full test suite, and a warning-free clippy
# sweep over all targets. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: OK =="
