//! Figure 1 of the paper, made executable: density-based clustering discovers
//! arbitrary-shape clusters where k-means returns ball-like ones.
//!
//! Builds the classic two-interleaved-moons plus two-rings scene, clusters it
//! with both ρ-approximate DBSCAN and k-means, and compares each against the
//! generating ground truth with the adjusted Rand index.
//!
//! ```sh
//! cargo run --release --example arbitrary_shapes
//! ```

use dbscan_revisited::core::algorithms::rho_approx;
use dbscan_revisited::core::baselines::kmeans;
use dbscan_revisited::core::{Assignment, Clustering, DbscanParams};
use dbscan_revisited::datagen::scenes::moons_and_rings;
use dbscan_revisited::eval::kdist::{sorted_kdist_plot, suggest_eps};
use dbscan_revisited::eval::metrics::adjusted_rand_index;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn truth_clustering(truth: &[u32]) -> Clustering {
    Clustering {
        assignments: truth.iter().map(|&l| Assignment::Core(l)).collect(),
        num_clusters: 4,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(10);
    let (pts, truth) = moons_and_rings(&mut rng);
    let truth_c = truth_clustering(&truth);

    // Pick eps with the KDD'96 sorted k-dist heuristic (MinPts = 5 => k = 4).
    // On a noise-free scene the knee sits at the sparse fringe of the clusters,
    // so it is read as a scale estimate and doubled — still fully automatic.
    let knee = suggest_eps(&sorted_kdist_plot(&pts, 4)).expect("knee");
    let eps = 2.0 * knee;
    println!("4-dist knee: {knee:.3}; using eps = 2x knee = {eps:.3} (MinPts = 5)\n");

    let dbscan = rho_approx(&pts, DbscanParams::new(eps, 5).unwrap(), 0.001);
    let km = kmeans(&pts, 4, 200, &mut rng);
    let km_clustering = Clustering {
        assignments: km.labels.iter().map(|&l| Assignment::Core(l)).collect(),
        num_clusters: km.centroids.len(),
    };

    let ari_dbscan = adjusted_rand_index(&truth_c, &dbscan);
    let ari_kmeans = adjusted_rand_index(&truth_c, &km_clustering);

    println!(
        "DBSCAN (rho-approx): {} clusters, ARI vs truth = {ari_dbscan:.3}",
        dbscan.num_clusters
    );
    println!("k-means (k = 4):     4 clusters, ARI vs truth = {ari_kmeans:.3}\n");
    println!(
        "DBSCAN recovers the moons and rings (ARI ≈ 1); k-means cuts them into\n\
         balls (ARI ≪ 1) — the motivating contrast of the paper's Figure 1."
    );
    assert!(
        ari_dbscan > ari_kmeans,
        "density clustering must beat k-means on arbitrary shapes"
    );
}
