//! Choosing ε and ρ in practice: the stability story of Sections 4.2 and 5.2.
//!
//! The sandwich theorem says ρ-approximate DBSCAN sits between exact DBSCAN at
//! ε and at ε(1+ρ). So approximation is only "visible" at *unstable* ε values,
//! where exact DBSCAN itself changes within [ε, ε(1+ρ)] — and those are exactly
//! the ε one should avoid anyway. This example sweeps ε over a dataset with two
//! clusters a known distance apart, reporting the exact cluster count, the
//! maximum legal ρ, and the ARI between exact and 0.01-approximate results.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use dbscan_revisited::core::algorithms::{grid_exact, rho_approx};
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::eval::metrics::adjusted_rand_index;
use dbscan_revisited::eval::{max_legal_rho, PAPER_RHO_GRID};
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blob(center: [f64; 2], r: f64, n: usize, rng: &mut StdRng) -> Vec<Point<2>> {
    (0..n)
        .map(|_| {
            let a = rng.gen::<f64>() * std::f64::consts::TAU;
            let d = r * rng.gen::<f64>().sqrt();
            Point([center[0] + a.cos() * d, center[1] + a.sin() * d])
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // Two discs of radius 300, centers 2000 apart → boundary gap ≈ 1400.
    let mut pts = blob([3_000.0, 3_000.0], 300.0, 1_500, &mut rng);
    pts.extend(blob([5_000.0, 3_000.0], 300.0, 1_500, &mut rng));

    println!("two discs, boundary gap ~1400 (MinPts = 10)\n");
    println!(
        "{:>6} {:>10} {:>15} {:>22}",
        "eps", "#clusters", "max legal rho", "ARI(exact, rho=0.01)"
    );
    for eps in [
        60.0, 120.0, 400.0, 1_000.0, 1_380.0, 1_399.0, 1_420.0, 2_000.0,
    ] {
        let params = DbscanParams::new(eps, 10).unwrap();
        let exact = grid_exact(&pts, params);
        let legal = max_legal_rho(&pts, params, &PAPER_RHO_GRID);
        let approx = rho_approx(&pts, params, 0.01);
        let ari = adjusted_rand_index(&exact, &approx);
        println!(
            "{eps:>6} {:>10} {:>15} {ari:>22.4}",
            exact.num_clusters,
            legal.map_or("<0.001".into(), |r| format!("{r}")),
        );
    }

    println!(
        "\nreading the table: at stable eps the maximum legal rho is large and the\n\
         approximate result is identical (ARI = 1). Only in the sliver just below\n\
         the 1400 merge distance — where exact DBSCAN itself is about to change —\n\
         does a large rho alter the output, exactly as Figure 6 of the paper\n\
         illustrates with its 'bad' eps_3."
    );
}
