//! Color segmentation by density clustering — the use case behind the paper's
//! *Farm* dataset ("VZ-feature clustering is a common approach to perform color
//! segmentation of an image", Section 5.1).
//!
//! A synthetic satellite image with a few land-cover types is converted into
//! 5D feature vectors (x, y, and three spectral channels), and ρ-approximate
//! DBSCAN recovers the land-cover regions.
//!
//! ```sh
//! cargo run --release --example image_segmentation
//! ```

use dbscan_revisited::core::algorithms::rho_approx;
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZE: usize = 96; // image side in pixels

/// "Land cover" types of the synthetic scene, with their spectral signatures.
const COVERS: [(&str, [f64; 3]); 4] = [
    ("cropland", [30_000.0, 75_000.0, 25_000.0]),
    ("desert", [80_000.0, 70_000.0, 40_000.0]),
    ("water", [10_000.0, 20_000.0, 65_000.0]),
    ("urban", [55_000.0, 50_000.0, 52_000.0]),
];

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);

    // Paint a scene: four quadrant-ish regions with noisy borders.
    let mut features: Vec<Point<5>> = Vec::with_capacity(SIZE * SIZE);
    let mut truth: Vec<usize> = Vec::with_capacity(SIZE * SIZE);
    for y in 0..SIZE {
        for x in 0..SIZE {
            let wobble = (x as f64 * 0.17).sin() * 6.0 + (y as f64 * 0.11).cos() * 6.0;
            let cover = match (
                (x as f64 + wobble) < SIZE as f64 / 2.0,
                (y as f64 - wobble) < SIZE as f64 / 2.0,
            ) {
                (true, true) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (false, false) => 3,
            };
            let sig = COVERS[cover].1;
            // Feature: scaled pixel position + jittered spectral signature.
            // Position weight is small so color dominates, but spatially
            // disconnected same-color regions can still separate.
            let scale = 100_000.0 / SIZE as f64;
            features.push(Point([
                x as f64 * scale * 0.05,
                y as f64 * scale * 0.05,
                sig[0] + rng.gen_range(-2500.0..2500.0),
                sig[1] + rng.gen_range(-2500.0..2500.0),
                sig[2] + rng.gen_range(-2500.0..2500.0),
            ]));
            truth.push(cover);
        }
    }

    let params = DbscanParams::new(4_000.0, 30).expect("valid parameters");
    let clustering = rho_approx(&features, params, 0.001);
    println!(
        "segmented {} pixels into {} regions ({} noise pixels)\n",
        features.len(),
        clustering.num_clusters,
        clustering.noise_count()
    );

    // Confusion summary: for each discovered region, the dominant true cover.
    let labels = clustering.flat_labels();
    let mut counts = vec![[0usize; COVERS.len()]; clustering.num_clusters];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            counts[*c as usize][truth[i]] += 1;
        }
    }
    println!(
        "{:>8} {:>8} {:>12} {:>8}",
        "region", "pixels", "dominant", "purity"
    );
    for (region, row) in counts.iter().enumerate() {
        let total: usize = row.iter().sum();
        let (best, best_n) = row
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(i, &n)| (i, n))
            .unwrap();
        println!(
            "{region:>8} {total:>8} {:>12} {:>7.1}%",
            COVERS[best].0,
            100.0 * best_n as f64 / total as f64
        );
    }

    // ASCII rendering of the segmentation, downsampled 2x.
    println!("\nsegmentation map (one glyph per discovered region, '.' = noise):");
    let glyphs: Vec<char> = "abcdefghijklmnopqrstuvwxyz".chars().collect();
    for y in (0..SIZE).step_by(2) {
        let mut line = String::with_capacity(SIZE / 2);
        for x in (0..SIZE).step_by(2) {
            let l = labels[y * SIZE + x];
            line.push(l.map_or('.', |c| glyphs[c as usize % glyphs.len()]));
        }
        println!("{line}");
    }
}
