//! Multi-granularity clustering with OPTICS — the Section 4.2 story.
//!
//! The paper (following the OPTICS paper it cites) argues that different ε
//! values are different *views* of the same data, and that ρ-approximation is
//! only visible at unstable ε. OPTICS computes all views at once: this example
//! builds a dataset with hierarchical structure (two far-apart super-groups,
//! each made of two nearby sub-clusters), prints the reachability plot, and
//! extracts the DBSCAN clustering at two granularities — matching exact DBSCAN
//! at both.
//!
//! ```sh
//! cargo run --release --example optics_granularity
//! ```

use dbscan_revisited::core::algorithms::grid_exact;
use dbscan_revisited::core::optics::optics;
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blob(cx: f64, cy: f64, r: f64, n: usize, rng: &mut StdRng) -> Vec<Point<2>> {
    (0..n)
        .map(|_| {
            let a = rng.gen::<f64>() * std::f64::consts::TAU;
            let d = r * rng.gen::<f64>().sqrt();
            Point([cx + a.cos() * d, cy + a.sin() * d])
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(20);
    // Super-group A: sub-clusters 6 apart. Super-group B: 100 away.
    let mut pts = blob(0.0, 0.0, 1.0, 150, &mut rng);
    pts.extend(blob(6.0, 0.0, 1.0, 150, &mut rng));
    pts.extend(blob(100.0, 0.0, 1.0, 150, &mut rng));
    pts.extend(blob(106.0, 0.0, 1.0, 150, &mut rng));

    let min_pts = 5;
    let ordering = optics(&pts, DbscanParams::new(50.0, min_pts).unwrap());

    // ASCII reachability plot (downsampled): valleys = clusters.
    println!("reachability plot (walk order, log-ish bar lengths):");
    let plot = ordering.reachability_plot();
    for chunk in plot.chunks(12) {
        let worst = chunk
            .iter()
            .map(|&(_, r)| if r.is_finite() { r } else { 50.0 })
            .fold(0.0f64, f64::max);
        let bar = "#".repeat(((worst + 1.0).ln() * 12.0) as usize);
        println!("{bar}");
    }

    for eps_prime in [2.0, 20.0] {
        let (labels, k) = ordering.extract_clusters(eps_prime);
        let exact = grid_exact(&pts, DbscanParams::new(eps_prime, min_pts).unwrap());
        let noise = labels.iter().filter(|l| l.is_none()).count();
        println!(
            "\nextract at eps' = {eps_prime:>4}: {k} clusters ({noise} noise) — exact DBSCAN at the same eps: {}",
            exact.num_clusters
        );
        assert_eq!(k, exact.num_clusters);
    }
    println!(
        "\nfine granularity sees the 4 sub-clusters; coarse granularity the 2\n\
         super-groups — one OPTICS run answers both, matching exact DBSCAN."
    );
}
