//! Activity-pattern mining on PAMAP2-like sensor features — the use case behind
//! the paper's 4D real dataset (Section 5.1: "the first 4 principal components
//! of a PCA on the PAMAP2 database").
//!
//! Demonstrates the scalability argument of the paper on a single workload:
//! KDD'96 is fine at small n but the approximate algorithm pulls away as the
//! data grows, at no loss of clustering quality.
//!
//! ```sh
//! cargo run --release --example activity_clustering
//! ```

use dbscan_revisited::core::algorithms::{kdd96_rtree, rho_approx};
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::datagen::realworld::pamap2_like;
use dbscan_revisited::eval::metrics::adjusted_rand_index;
use std::time::Instant;

fn main() {
    let params = DbscanParams::new(3_000.0, 50).expect("valid parameters");

    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>10} {:>8}",
        "n", "KDD96 (s)", "approx (s)", "speedup", "#clusters", "ARI"
    );
    for n in [10_000usize, 20_000, 40_000, 80_000] {
        let pts = pamap2_like(n, 42);

        let t0 = Instant::now();
        let exact = kdd96_rtree(&pts, params);
        let t_exact = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let approx = rho_approx(&pts, params, 0.001);
        let t_approx = t0.elapsed().as_secs_f64();

        let ari = adjusted_rand_index(&exact, &approx);
        println!(
            "{n:>8} {t_exact:>12.3} {t_approx:>12.3} {:>8.1}x {:>10} {ari:>8.4}",
            t_exact / t_approx.max(1e-9),
            approx.num_clusters,
        );
    }

    println!(
        "\nthe approximate clustering keeps ARI ≈ 1 against exact KDD'96 output while\n\
         its advantage grows with n — the Figure 11 story on an activity workload."
    );
}
