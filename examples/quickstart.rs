//! Quickstart: cluster a small 2D dataset with every algorithm in the crate and
//! print what they agree on.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbscan_revisited::core::algorithms::{
    cit08, grid_exact, gunawan_2d, kdd96_rtree, rho_approx, Cit08Config,
};
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::datagen::{seed_spreader, SpreaderConfig};
use dbscan_revisited::eval::same_clustering;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 2D seed-spreader dataset (Section 5.1 of the paper): ~5 snake-shaped
    // clusters of 2000 points plus background noise.
    let mut cfg = SpreaderConfig::paper_defaults(2_000, 2);
    cfg.restart_prob = 5.0 / 2_000.0;
    let points = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(7));

    // The paper's parameters: ε = 5000 on the [0, 100000]² domain.
    let params = DbscanParams::new(5_000.0, 10).expect("valid parameters");

    // The paper's exact algorithm (Theorem 2) — works in any dimension.
    let exact = grid_exact(&points, params);
    println!(
        "grid_exact:  {} clusters, {} core / {} border / {} noise points",
        exact.num_clusters,
        exact.core_count(),
        exact.border_count(),
        exact.noise_count()
    );

    // Every other exact algorithm must produce the identical clustering.
    let g2d = gunawan_2d(&points, params);
    let kdd = kdd96_rtree(&points, params);
    let cit = cit08(&points, params, Cit08Config::default());
    println!(
        "gunawan_2d matches: {}, kdd96 matches: {}, cit08 matches: {}",
        same_clustering(&exact, &g2d),
        same_clustering(&exact, &kdd),
        same_clustering(&exact, &cit)
    );

    // ρ-approximate DBSCAN (Theorem 4): linear expected time; with the
    // recommended ρ = 0.001 it almost always returns the exact clusters.
    let approx = rho_approx(&points, params, 0.001);
    println!(
        "rho_approx(0.001): {} clusters, identical to exact: {}",
        approx.num_clusters,
        same_clustering(&exact, &approx)
    );

    // Inspect one cluster.
    let members = exact.cluster_members();
    if let Some(largest) = members.iter().max_by_key(|m| m.len()) {
        println!(
            "largest cluster has {} points; first few ids: {:?}",
            largest.len(),
            &largest[..largest.len().min(5)]
        );
    }
}
