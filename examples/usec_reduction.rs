//! The hardness reduction of Lemma 4, run for real: solving Unit-Spherical
//! Emptiness Checking (USEC) with DBSCAN as a black box.
//!
//! This is the constructive heart of the paper's Ω(n^{4/3}) conditional lower
//! bound (Theorem 1): if DBSCAN could be solved in o(n^{4/3}) time in d ≥ 3,
//! the same would follow for USEC — widely believed impossible.
//!
//! ```sh
//! cargo run --release --example usec_reduction
//! ```

use dbscan_revisited::core::usec::{solve_brute, solve_via_dbscan, UsecInstance};
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(
    n_points: usize,
    n_balls: usize,
    radius: f64,
    span: f64,
    rng: &mut StdRng,
) -> UsecInstance<3> {
    let point = |rng: &mut StdRng| {
        Point([
            rng.gen::<f64>() * span,
            rng.gen::<f64>() * span,
            rng.gen::<f64>() * span,
        ])
    };
    UsecInstance {
        points: (0..n_points).map(|_| point(rng)).collect(),
        centers: (0..n_balls).map(|_| point(rng)).collect(),
        radius,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    println!("USEC via the Lemma 4 reduction (P = S_pt ∪ centers, eps = radius, MinPts = 1):\n");
    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>10}",
        "points", "balls", "radius", "DBSCAN", "oracle"
    );
    let mut agreements = 0;
    let mut total = 0;
    for &(np, nb, r) in &[
        (500usize, 300usize, 1.0f64),
        (500, 300, 3.0),
        (500, 300, 6.0),
        (2000, 1000, 2.0),
        (2000, 1000, 0.5),
    ] {
        let inst = random_instance(np, nb, r, 100.0, &mut rng);
        let via_dbscan = solve_via_dbscan(&inst);
        let via_oracle = solve_brute(&inst);
        println!(
            "{np:>8} {nb:>8} {r:>8.1} {via_dbscan:>10} {via_oracle:>10}{}",
            if via_dbscan == via_oracle {
                ""
            } else {
                "   <-- MISMATCH"
            }
        );
        total += 1;
        agreements += usize::from(via_dbscan == via_oracle);
    }
    println!("\nreduction agreed with the brute-force oracle on {agreements}/{total} instances");
    assert_eq!(agreements, total, "Lemma 4 reduction must be exact");

    // The sneaky case from the proof of Lemma 4: chains. A ball B may contain
    // no point, yet its center is chained (within eps) to another center whose
    // ball does contain a point — the clusters still answer correctly.
    let chained = UsecInstance::<3> {
        points: vec![Point([0.0, 0.0, 0.0])],
        centers: vec![Point([0.8, 0.0, 0.0]), Point([1.6, 0.0, 0.0])],
        radius: 1.0,
    };
    println!(
        "\nchained-centers instance: DBSCAN says {}, oracle says {} (ball at x=1.6 is empty,\nbut the cluster chain certifies coverage of the point by the ball at x=0.8)",
        solve_via_dbscan(&chained),
        solve_brute(&chained)
    );
}
