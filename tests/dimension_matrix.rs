//! Closes the dimensionality matrix: the experiments use d ∈ {2,3,4,5,7}, but
//! the library is generic over D — verify the full stack at the remaining
//! dimensions (1, 4, 6, 8) where off-by-one errors in grid constants or offset
//! enumeration would hide.

use dbscan_revisited::core::algorithms::{
    cit08, grid_exact, kdd96_kdtree, rho_approx, Cit08Config,
};
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::eval::same_clustering;
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_points<const D: usize>(per_blob: usize, blobs: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for b in 0..blobs {
        let mut center = [0.0; D];
        center[0] = b as f64 * 100.0;
        for _ in 0..per_blob {
            let mut c = center;
            for v in c.iter_mut() {
                *v += rng.gen_range(-2.0..2.0);
            }
            pts.push(Point(c));
        }
    }
    pts
}

fn check_dim<const D: usize>() {
    let pts = clustered_points::<D>(80, 3, D as u64);
    let params = DbscanParams::new(3.0, 5).unwrap();
    let exact = grid_exact(&pts, params);
    exact.validate().unwrap();
    assert_eq!(exact.num_clusters, 3, "d={D}: blob count");
    assert!(
        same_clustering(&exact, &kdd96_kdtree(&pts, params)),
        "d={D}: kdd96"
    );
    assert!(
        same_clustering(&exact, &cit08(&pts, params, Cit08Config::default())),
        "d={D}: cit08"
    );
    // rho-approx with blobs separated far beyond eps(1+rho): must be identical.
    assert!(
        same_clustering(&exact, &rho_approx(&pts, params, 0.01)),
        "d={D}: rho_approx"
    );
}

#[test]
fn dimension_1() {
    check_dim::<1>();
}

#[test]
fn dimension_4() {
    check_dim::<4>();
}

#[test]
fn dimension_6() {
    check_dim::<6>();
}

#[test]
fn dimension_8() {
    check_dim::<8>();
}
