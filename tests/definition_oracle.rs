//! Validation against a from-the-definitions oracle.
//!
//! Independently of all five algorithms, this test computes the unique DBSCAN
//! clustering straight from Definitions 1–3: brute-force core labeling, a
//! union-find over core points joined whenever two cores are within ε (the
//! transitive closure of density-reachability restricted to cores), and border
//! assignment to every cluster with a core within ε. Every algorithm must match.

use dbscan_revisited::core::algorithms::{cit08, grid_exact, kdd96_kdtree, Cit08Config};
use dbscan_revisited::core::unionfind::UnionFind;
use dbscan_revisited::core::{Assignment, Clustering, DbscanParams};
use dbscan_revisited::eval::same_clustering;
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// O(n²) reference DBSCAN from the definitions.
fn oracle<const D: usize>(points: &[Point<D>], params: DbscanParams) -> Clustering {
    let n = points.len();
    let eps_sq = params.eps() * params.eps();
    let is_core: Vec<bool> = points
        .iter()
        .map(|p| points.iter().filter(|q| p.dist_sq(q) <= eps_sq).count() >= params.min_pts())
        .collect();

    let mut uf = UnionFind::new(n);
    for i in 0..n {
        if !is_core[i] {
            continue;
        }
        for j in (i + 1)..n {
            if is_core[j] && points[i].dist_sq(&points[j]) <= eps_sq {
                uf.union(i as u32, j as u32);
            }
        }
    }
    // Compact cluster ids over core-point components, in first-core order.
    let mut cluster_of_root: Vec<Option<u32>> = vec![None; n];
    let mut num_clusters = 0u32;
    let mut assignments = vec![Assignment::Noise; n];
    for i in 0..n {
        if is_core[i] {
            let root = uf.find(i as u32) as usize;
            let c = *cluster_of_root[root].get_or_insert_with(|| {
                let c = num_clusters;
                num_clusters += 1;
                c
            });
            assignments[i] = Assignment::Core(c);
        }
    }
    for i in 0..n {
        if is_core[i] {
            continue;
        }
        let mut cs: Vec<u32> = (0..n)
            .filter(|&j| is_core[j] && points[i].dist_sq(&points[j]) <= eps_sq)
            .map(|j| cluster_of_root[uf.find(j as u32) as usize].unwrap())
            .collect();
        cs.sort_unstable();
        cs.dedup();
        if !cs.is_empty() {
            assignments[i] = Assignment::Border(cs);
        }
    }
    Clustering {
        assignments,
        num_clusters: num_clusters as usize,
    }
}

fn random_points<const D: usize>(n: usize, span: f64, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen::<f64>() * span;
            }
            Point(c)
        })
        .collect()
}

#[test]
fn algorithms_match_definition_oracle_2d() {
    for seed in 0..5u64 {
        let pts = random_points::<2>(250, 20.0, seed);
        for (eps, min_pts) in [(1.0, 3), (2.0, 6), (0.5, 2), (5.0, 20)] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            let truth = oracle(&pts, params);
            truth.validate().unwrap();
            for (name, c) in [
                ("grid_exact", grid_exact(&pts, params)),
                ("kdd96", kdd96_kdtree(&pts, params)),
                ("cit08", cit08(&pts, params, Cit08Config::default())),
            ] {
                assert!(
                    same_clustering(&truth, &c),
                    "{name} differs from the definition oracle (seed {seed}, eps {eps}, MinPts {min_pts})"
                );
            }
        }
    }
}

#[test]
fn algorithms_match_definition_oracle_3d_and_7d() {
    for seed in 0..3u64 {
        let pts = random_points::<3>(200, 10.0, seed);
        let params = DbscanParams::new(1.2, 4).unwrap();
        let truth = oracle(&pts, params);
        assert!(same_clustering(&truth, &grid_exact(&pts, params)));
        assert!(same_clustering(&truth, &kdd96_kdtree(&pts, params)));
        assert!(same_clustering(
            &truth,
            &cit08(&pts, params, Cit08Config::default())
        ));

        let pts7 = random_points::<7>(150, 6.0, seed + 100);
        let params7 = DbscanParams::new(2.5, 5).unwrap();
        let truth7 = oracle(&pts7, params7);
        assert!(same_clustering(&truth7, &grid_exact(&pts7, params7)));
        assert!(same_clustering(&truth7, &kdd96_kdtree(&pts7, params7)));
        assert!(same_clustering(
            &truth7,
            &cit08(&pts7, params7, Cit08Config::default())
        ));
    }
}

#[test]
fn oracle_matches_on_degenerate_configurations() {
    // Clustered duplicates and exact-distance ties.
    let mut pts: Vec<Point<2>> = vec![Point([0.0, 0.0]); 10];
    pts.extend((0..10).map(|i| Point([i as f64, 0.0])));
    pts.push(Point([3.0, 4.0])); // at distance exactly 5 from origin
    for (eps, min_pts) in [(1.0, 3), (5.0, 11), (0.1, 2)] {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let truth = oracle(&pts, params);
        assert!(
            same_clustering(&truth, &grid_exact(&pts, params)),
            "eps {eps} MinPts {min_pts}"
        );
        assert!(same_clustering(&truth, &kdd96_kdtree(&pts, params)));
    }
}
