//! Cross-algorithm agreement: Problem 1 has a *unique* solution, so every exact
//! algorithm — KDD96 (all three indexes), Gunawan-2D, the paper's grid+BCP
//! algorithm, and CIT08 — must return the identical clustering on any input.

use dbscan_revisited::core::algorithms::{
    cit08, grid_exact, gunawan_2d, kdd96_kdtree, kdd96_linear, kdd96_rtree, rho_approx, Cit08Config,
};
use dbscan_revisited::core::{Clustering, DbscanParams};
use dbscan_revisited::datagen::{seed_spreader, SpreaderConfig};
use dbscan_revisited::eval::same_clustering;
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_all_equal(clusterings: &[(&str, Clustering)]) {
    let (ref_name, reference) = &clusterings[0];
    reference.validate().unwrap();
    for (name, c) in &clusterings[1..] {
        c.validate().unwrap();
        assert!(
            same_clustering(reference, c),
            "{name} disagrees with {ref_name}: {} vs {} clusters, \
             core {} vs {}, noise {} vs {}",
            c.num_clusters,
            reference.num_clusters,
            c.core_count(),
            reference.core_count(),
            c.noise_count(),
            reference.noise_count()
        );
    }
}

#[test]
fn all_exact_algorithms_agree_in_2d() {
    let mut cfg = SpreaderConfig::paper_defaults(3_000, 2);
    cfg.restart_prob = 6.0 / 3_000.0;
    cfg.noise_fraction = 0.01;
    for seed in [1u64, 2, 3] {
        let pts = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(seed));
        for (eps, min_pts) in [(3_000.0, 10), (500.0, 3), (8_000.0, 40)] {
            let params = DbscanParams::new(eps, min_pts).unwrap();
            assert_all_equal(&[
                ("grid_exact", grid_exact(&pts, params)),
                ("gunawan_2d", gunawan_2d(&pts, params)),
                ("kdd96_linear", kdd96_linear(&pts, params)),
                ("kdd96_kdtree", kdd96_kdtree(&pts, params)),
                ("kdd96_rtree", kdd96_rtree(&pts, params)),
                ("cit08", cit08(&pts, params, Cit08Config::default())),
            ]);
        }
    }
}

#[test]
fn all_exact_algorithms_agree_in_3d_and_5d() {
    let cfg3 = SpreaderConfig::paper_defaults(4_000, 3);
    let pts3 = seed_spreader::<3>(&cfg3, &mut StdRng::seed_from_u64(7));
    let params = DbscanParams::new(5_000.0, 10).unwrap();
    assert_all_equal(&[
        ("grid_exact", grid_exact(&pts3, params)),
        ("kdd96_kdtree", kdd96_kdtree(&pts3, params)),
        ("kdd96_rtree", kdd96_rtree(&pts3, params)),
        ("cit08", cit08(&pts3, params, Cit08Config::default())),
    ]);

    let cfg5 = SpreaderConfig::paper_defaults(3_000, 5);
    let pts5 = seed_spreader::<5>(&cfg5, &mut StdRng::seed_from_u64(8));
    let params5 = DbscanParams::new(6_000.0, 10).unwrap();
    assert_all_equal(&[
        ("grid_exact", grid_exact(&pts5, params5)),
        ("kdd96_kdtree", kdd96_kdtree(&pts5, params5)),
        ("cit08", cit08(&pts5, params5, Cit08Config::default())),
    ]);
}

#[test]
fn agreement_on_uniform_noise() {
    // Pure uniform scatter: parameter regimes from all-noise to one cluster.
    let mut rng = StdRng::seed_from_u64(42);
    let pts: Vec<Point<3>> = (0..2_000)
        .map(|_| {
            Point([
                rng.gen::<f64>() * 1_000.0,
                rng.gen::<f64>() * 1_000.0,
                rng.gen::<f64>() * 1_000.0,
            ])
        })
        .collect();
    for (eps, min_pts) in [(10.0, 5), (60.0, 5), (200.0, 20), (2_000.0, 2)] {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        assert_all_equal(&[
            ("grid_exact", grid_exact(&pts, params)),
            ("kdd96_kdtree", kdd96_kdtree(&pts, params)),
            ("cit08", cit08(&pts, params, Cit08Config::default())),
        ]);
    }
}

#[test]
fn agreement_on_adversarial_inputs() {
    // Duplicates, collinear chains, cluster exactly at a cell boundary, and
    // points at exactly eps distances.
    let mut pts: Vec<Point<2>> = Vec::new();
    pts.extend(std::iter::repeat_n(Point([100.0, 100.0]), 50));
    pts.extend((0..40).map(|i| Point([i as f64 * 1.0, 0.0]))); // spacing = eps
    pts.extend((0..10).map(|i| Point([500.0 + i as f64 * 0.2, 500.0])));
    pts.push(Point([1e5, 1e5]));
    let params = DbscanParams::new(1.0, 4).unwrap();
    assert_all_equal(&[
        ("grid_exact", grid_exact(&pts, params)),
        ("gunawan_2d", gunawan_2d(&pts, params)),
        ("kdd96_linear", kdd96_linear(&pts, params)),
        ("cit08", cit08(&pts, params, Cit08Config::default())),
    ]);
}

#[test]
fn rho_approx_with_tiny_rho_matches_exact_on_spreader_data() {
    // Not guaranteed in general, but on seed-spreader data at the recommended
    // rho = 0.001 the paper observed equality "almost everywhere"; with the
    // default eps = 5000 and well-separated clusters it must hold.
    let cfg = SpreaderConfig::paper_defaults(5_000, 3);
    let pts = seed_spreader::<3>(&cfg, &mut StdRng::seed_from_u64(77));
    let params = DbscanParams::new(5_000.0, 10).unwrap();
    let exact = grid_exact(&pts, params);
    let approx = rho_approx(&pts, params, 0.001);
    assert!(same_clustering(&exact, &approx));
}

#[test]
fn cit08_partition_sizes_do_not_change_the_result() {
    let cfg = SpreaderConfig::paper_defaults(2_000, 3);
    let pts = seed_spreader::<3>(&cfg, &mut StdRng::seed_from_u64(5));
    let params = DbscanParams::new(4_000.0, 8).unwrap();
    let reference = grid_exact(&pts, params);
    for multiple in [2.0, 3.0, 4.0, 8.0, 32.0] {
        let c = cit08(
            &pts,
            params,
            Cit08Config {
                partition_eps_multiple: multiple,
            },
        );
        assert!(
            same_clustering(&reference, &c),
            "partition multiple {multiple} changed the clustering"
        );
    }
}
