//! Integration test of the Lemma 4 USEC reduction across dimensionalities and
//! density regimes, against the brute-force oracle.

use dbscan_revisited::core::usec::{solve_brute, solve_via_dbscan, UsecInstance};
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance<const D: usize>(
    n_points: usize,
    n_balls: usize,
    radius: f64,
    span: f64,
    rng: &mut StdRng,
) -> UsecInstance<D> {
    let point = |rng: &mut StdRng| {
        let mut c = [0.0; D];
        for v in c.iter_mut() {
            *v = rng.gen::<f64>() * span;
        }
        Point(c)
    };
    UsecInstance {
        points: (0..n_points).map(|_| point(rng)).collect(),
        centers: (0..n_balls).map(|_| point(rng)).collect(),
        radius,
    }
}

#[test]
fn reduction_agrees_with_oracle_3d() {
    let mut rng = StdRng::seed_from_u64(4168);
    let mut yes = 0;
    let mut no = 0;
    for trial in 0..40 {
        // Radii spanning "almost surely no" to "almost surely yes".
        let radius = 0.05 + 0.25 * trial as f64;
        let inst: UsecInstance<3> = random_instance(60, 40, radius, 40.0, &mut rng);
        let expected = solve_brute(&inst);
        assert_eq!(solve_via_dbscan(&inst), expected, "trial {trial}");
        if expected {
            yes += 1;
        } else {
            no += 1;
        }
    }
    // Both outcomes must actually be exercised for the test to mean anything.
    assert!(
        yes >= 5 && no >= 5,
        "unbalanced coverage: {yes} yes / {no} no"
    );
}

#[test]
fn reduction_agrees_with_oracle_5d() {
    let mut rng = StdRng::seed_from_u64(14207);
    for trial in 0..15 {
        let radius = 1.0 + trial as f64;
        let inst: UsecInstance<5> = random_instance(40, 30, radius, 25.0, &mut rng);
        assert_eq!(solve_via_dbscan(&inst), solve_brute(&inst), "trial {trial}");
    }
}

#[test]
fn reduction_handles_dense_cluster_chains() {
    // All centers chained together, only the last ball covering the point —
    // stress the cluster-chain case of the proof.
    let centers: Vec<Point<2>> = (0..50).map(|i| Point([i as f64 * 0.9, 0.0])).collect();
    let inst = UsecInstance {
        points: vec![Point([49.0 * 0.9 + 0.95, 0.0])],
        centers,
        radius: 1.0,
    };
    assert!(solve_brute(&inst));
    assert!(solve_via_dbscan(&inst));

    // Nudge the point to 1.05 > radius from the nearest center: no ball covers
    // it, it joins no cluster, and the reduction must answer no.
    let centers: Vec<Point<2>> = (0..50).map(|i| Point([i as f64 * 0.9, 0.0])).collect();
    let inst2 = UsecInstance {
        points: vec![Point([49.0 * 0.9 + 1.05, 0.0])],
        centers,
        radius: 1.0,
    };
    assert!(!solve_brute(&inst2));
    assert!(!solve_via_dbscan(&inst2));
}
