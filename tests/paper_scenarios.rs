//! Reconstructions of the worked examples in the paper's figures, as
//! executable tests.

use dbscan_revisited::core::algorithms::{grid_exact, gunawan_2d, rho_approx};
use dbscan_revisited::core::parallel::grid_exact_par;
use dbscan_revisited::core::{Assignment, DbscanParams};
use dbscan_revisited::eval::same_clustering;
use dbscan_revisited::geom::point::p2;
use dbscan_revisited::geom::Point;

/// Figure 2 topology: two clusters C1 (o1..o10) and C2 (o10..o17) sharing the
/// border point o10, plus noise o18, at MinPts = 4.
///
/// Coordinates are a faithful re-creation of the figure's structure: a dense
/// left group, a dense right group, a bridge point within ε of a core point on
/// each side but with fewer than 4 points in its own ball, and one outlier.
#[test]
fn figure2_two_clusters_shared_border_and_noise() {
    let eps = 1.4;
    let pts = vec![
        // left cluster cores (o1..o4-ish)
        p2(0.0, 0.0),
        p2(-0.5, 0.0),
        p2(-0.2, 0.5),
        p2(-0.3, -0.4),
        // right cluster cores (o11..o14-ish)
        p2(2.6, 0.0),
        p2(3.1, 0.0),
        p2(2.8, 0.5),
        p2(2.9, -0.4),
        // o10: the shared border point
        p2(1.3, 0.0),
        // o18: noise
        p2(10.0, 10.0),
    ];
    let params = DbscanParams::new(eps, 4).unwrap();
    let c = grid_exact(&pts, params);
    c.validate().unwrap();

    assert_eq!(
        c.num_clusters, 2,
        "the problem's unique output has 2 clusters"
    );
    // o10 belongs to BOTH clusters (the paper: "the clusters in C are not
    // necessarily disjoint ... o10 belongs to both C1 and C2").
    assert_eq!(
        c.assignments[8],
        Assignment::Border(vec![0, 1]),
        "o10 must be a border point of both clusters"
    );
    // A core point always belongs to a unique cluster (Lemma 2 of [10]).
    for i in 0..8 {
        assert!(c.assignments[i].is_core());
        assert_eq!(c.assignments[i].clusters().len(), 1);
    }
    assert!(c.assignments[9].is_noise(), "o18 is noise");

    // Every other algorithm agrees on this example.
    assert!(same_clustering(&c, &gunawan_2d(&pts, params)));
    assert!(same_clustering(&c, &grid_exact_par(&pts, params, Some(3))));
}

/// Figure 5: o5 is ρ-approximate density-reachable from o3 but not
/// density-reachable. Definition 5 permits (but does not require) o5's cluster
/// membership — both {o1..o4} and {o1..o5} are legal ρ-approximate clusters.
/// The sandwich bounds are what any implementation must satisfy.
#[test]
fn figure5_approximate_reachability_is_sandwiched() {
    // o1,o2,o3 chained at 0.9; o4 near o1; o5 at 1.3 from o1 — between ε = 1
    // and ε(1+ρ) = 1.5 for ρ = 0.5. To make o5's membership hinge on the
    // *edge* rule (not border assignment), o5 must itself be core: give it a
    // companion group.
    let eps = 1.0;
    let rho = 0.5;
    let pts = vec![
        p2(0.0, 0.0),  // o1
        p2(0.9, 0.0),  // o2
        p2(1.8, 0.0),  // o3
        p2(0.0, 0.9),  // o4
        p2(-1.3, 0.0), // o5
        p2(-2.2, 0.0), // companions making o5 core
        p2(-1.3, -0.9),
    ];
    let params = DbscanParams::new(eps, 3).unwrap();

    let inner = grid_exact(&pts, params); // exact at ε: two clusters
    assert_eq!(inner.num_clusters, 2);
    let outer = grid_exact(&pts, params.inflate(rho)); // exact at 1.5: one
    assert_eq!(outer.num_clusters, 1);

    let approx = rho_approx(&pts, params, rho);
    // Legal results have 1 or 2 clusters; nothing else.
    assert!(
        approx.num_clusters == 1 || approx.num_clusters == 2,
        "approx returned {} clusters",
        approx.num_clusters
    );
    // And the theorem's statements hold.
    use dbscan_revisited::eval::sandwich::{check_sandwich, SandwichOutcome};
    assert_eq!(
        check_sandwich(&inner, &approx, &outer),
        SandwichOutcome::Holds
    );
}

/// Figure 6's stability story: with two clusters at boundary distance ~g,
/// ε values away from g are robust to approximation (same output for any
/// ρ ≤ 0.1), while ε within a factor (1+ρ) of g is the only regime where a
/// ρ-approximate result may differ.
#[test]
fn figure6_only_unstable_eps_can_differ() {
    // Two vertical chains, boundary gap exactly 2.0 between nearest points.
    let mut pts: Vec<Point<2>> = (0..12).map(|i| p2(0.0, i as f64 * 0.4)).collect();
    pts.extend((0..12).map(|i| p2(2.0, i as f64 * 0.4)));
    let min_pts = 3;

    for eps in [0.5, 1.0, 1.5, 1.81] {
        // eps(1.1) < 2.0 for all of these: approximation cannot merge.
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let exact = grid_exact(&pts, params);
        for rho in [0.001, 0.01, 0.1] {
            let approx = rho_approx(&pts, params, rho);
            assert!(
                same_clustering(&exact, &approx),
                "stable eps {eps} diverged at rho {rho}"
            );
        }
    }

    // Unstable eps: 1.9 with rho = 0.1 brackets the 2.0 gap. The approximate
    // result is permitted to merge, but must still satisfy the sandwich.
    let params = DbscanParams::new(1.9, min_pts).unwrap();
    let inner = grid_exact(&pts, params);
    let approx = rho_approx(&pts, params, 0.1);
    let outer = grid_exact(&pts, params.inflate(0.1));
    assert_eq!(inner.num_clusters, 2);
    assert_eq!(outer.num_clusters, 1);
    use dbscan_revisited::eval::sandwich::{check_sandwich, SandwichOutcome};
    assert_eq!(
        check_sandwich(&inner, &approx, &outer),
        SandwichOutcome::Holds
    );
}

/// Footnote 1: the adversarial instance where all points lie within ε of each
/// other. KDD'96 needs Θ(n²) work there; the grid algorithms stay fast and all
/// return the single correct cluster.
#[test]
fn footnote1_adversarial_instance() {
    let n = 20_000;
    let pts: Vec<Point<2>> = (0..n)
        .map(|i| p2((i % 100) as f64 * 1e-4, (i / 100) as f64 * 1e-4))
        .collect();
    let params = DbscanParams::new(1.0, 100).unwrap();
    let start = std::time::Instant::now();
    let c = grid_exact(&pts, params);
    let elapsed = start.elapsed();
    assert_eq!(c.num_clusters, 1);
    assert_eq!(c.core_count(), n);
    // Generous bound: the grid algorithm must stay far from quadratic blowup
    // (20k² distance pairs would take seconds; this runs in milliseconds).
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "grid algorithm too slow on the dense instance: {elapsed:?}"
    );
}

/// MinPts = 1 (the reduction's setting): every point is core, clusters are the
/// connected components of the ε-distance graph, no noise and no borders.
#[test]
fn min_pts_one_components() {
    let pts = vec![
        p2(0.0, 0.0),
        p2(0.9, 0.0),
        p2(5.0, 5.0),
        p2(5.9, 5.0),
        p2(20.0, 20.0),
    ];
    let params = DbscanParams::new(1.0, 1).unwrap();
    let c = grid_exact(&pts, params);
    assert_eq!(c.num_clusters, 3);
    assert_eq!(c.core_count(), 5);
    assert_eq!(c.border_count(), 0);
    assert_eq!(c.noise_count(), 0);
}
