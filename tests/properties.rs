//! Property-based tests (proptest) over randomized inputs: index correctness,
//! the Lemma 5 counter guarantee, DBSCAN semantic invariants, cross-algorithm
//! agreement, and the sandwich theorem.

use dbscan_revisited::core::algorithms::{grid_exact, kdd96_linear, rho_approx};
use dbscan_revisited::core::{Assignment, DbscanParams};
use dbscan_revisited::eval::same_clustering;
use dbscan_revisited::eval::sandwich::{check_sandwich, SandwichOutcome};
use dbscan_revisited::geom::Point;
use dbscan_revisited::index::{ApproxRangeCounter, KdTree, LinearScan, RTree, RangeIndex};
use proptest::prelude::*;

fn arb_points_2d(max_n: usize, span: f64) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0.0..span, 0.0..span), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point([x, y])).collect())
}

fn arb_points_3d(max_n: usize, span: f64) -> impl Strategy<Value = Vec<Point<3>>> {
    prop::collection::vec((-span..span, -span..span, -span..span), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point([x, y, z])).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trees_match_linear_scan(
        pts in arb_points_3d(120, 10.0),
        q in (-12.0..12.0, -12.0..12.0, -12.0..12.0),
        r in 0.0..8.0,
    ) {
        let q = Point([q.0, q.1, q.2]);
        let lin = LinearScan::new(&pts);
        let kd = KdTree::build(&pts);
        let rt = RTree::build(&pts);
        let collect = |idx: &dyn Fn(&mut Vec<u32>)| {
            let mut out = Vec::new();
            idx(&mut out);
            out.sort_unstable();
            out
        };
        let expect = collect(&|o| lin.range_query(&q, r, o));
        prop_assert_eq!(collect(&|o| kd.range_query(&q, r, o)), expect.clone());
        prop_assert_eq!(collect(&|o| rt.range_query(&q, r, o)), expect.clone());
        // Count and nearest agree too.
        prop_assert_eq!(kd.count_within(&q, r, usize::MAX), expect.len());
        prop_assert_eq!(rt.count_within(&q, r, usize::MAX), expect.len());
        let nn_lin = lin.nearest_within(&q, r).map(|(_, d)| d);
        prop_assert_eq!(kd.nearest_within(&q, r).map(|(_, d)| d), nn_lin);
        prop_assert_eq!(rt.nearest_within(&q, r).map(|(_, d)| d), nn_lin);
    }

    #[test]
    fn counter_respects_lemma5_bounds(
        pts in arb_points_2d(150, 15.0),
        eps in 0.1..5.0f64,
        rho in 0.002..0.9f64,
    ) {
        let counter = ApproxRangeCounter::build(&pts, eps, rho);
        for q in pts.iter().step_by(7) {
            let lo = pts.iter().filter(|p| p.dist_sq(q) <= eps * eps).count();
            let outer = eps * (1.0 + rho);
            let hi = pts.iter().filter(|p| p.dist_sq(q) <= outer * outer).count();
            let ans = counter.query(q);
            prop_assert!(lo <= ans && ans <= hi, "{lo} <= {ans} <= {hi}");
            prop_assert_eq!(counter.query_positive(q), ans > 0);
        }
    }

    #[test]
    fn dbscan_semantic_invariants(
        pts in arb_points_2d(150, 12.0),
        eps in 0.2..4.0f64,
        min_pts in 1usize..8,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let c = grid_exact(&pts, params);
        prop_assert!(c.validate().is_ok());
        let eps_sq = eps * eps;
        let ball = |i: usize| pts.iter().filter(|p| p.dist_sq(&pts[i]) <= eps_sq).count();
        for (i, a) in c.assignments.iter().enumerate() {
            match a {
                Assignment::Core(_) => prop_assert!(ball(i) >= min_pts, "point {i} mislabeled core"),
                Assignment::Border(cs) => {
                    prop_assert!(ball(i) < min_pts, "point {i} should be core");
                    // There is a core point within eps in each listed cluster.
                    for &cl in cs {
                        let witness = c.assignments.iter().enumerate().any(|(j, b)| {
                            matches!(b, Assignment::Core(x) if *x == cl)
                                && pts[j].dist_sq(&pts[i]) <= eps_sq
                        });
                        prop_assert!(witness, "border {i} has no core witness in cluster {cl}");
                    }
                }
                Assignment::Noise => {
                    let near_core = c.assignments.iter().enumerate().any(|(j, b)| {
                        b.is_core() && pts[j].dist_sq(&pts[i]) <= eps_sq
                    });
                    prop_assert!(!near_core, "noise {i} is within eps of a core point");
                }
            }
        }
    }

    #[test]
    fn exact_algorithms_agree_on_arbitrary_inputs(
        pts in arb_points_2d(120, 10.0),
        eps in 0.2..4.0f64,
        min_pts in 1usize..6,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let a = grid_exact(&pts, params);
        let b = kdd96_linear(&pts, params);
        prop_assert!(same_clustering(&a, &b));
    }

    #[test]
    fn sandwich_theorem_on_arbitrary_inputs(
        pts in arb_points_2d(120, 10.0),
        eps in 0.2..3.0f64,
        min_pts in 1usize..6,
        rho in 0.002..0.8f64,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let inner = grid_exact(&pts, params);
        let approx = rho_approx(&pts, params, rho);
        let outer = grid_exact(&pts, params.inflate(rho));
        prop_assert_eq!(check_sandwich(&inner, &approx, &outer), SandwichOutcome::Holds);
    }

    #[test]
    fn canonicalization_is_idempotent_and_permutation_invariant(
        pts in arb_points_2d(100, 10.0),
        eps in 0.3..3.0f64,
    ) {
        // Any clustering compares equal to itself, and shuffling which
        // algorithm produced it does not matter.
        let params = DbscanParams::new(eps, 2).unwrap();
        let c = grid_exact(&pts, params);
        prop_assert!(same_clustering(&c, &c));
    }
}
