//! Empirical verification of Theorem 3 (the sandwich quality guarantee) across
//! datasets, radii, and approximation ratios: the ρ-approximate result always
//! sits between exact DBSCAN at ε and at ε(1+ρ).

use dbscan_revisited::core::algorithms::{grid_exact, rho_approx};
use dbscan_revisited::core::DbscanParams;
use dbscan_revisited::datagen::{seed_spreader, SpreaderConfig};
use dbscan_revisited::eval::sandwich::{check_sandwich, SandwichOutcome};
use dbscan_revisited::geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_sandwich<const D: usize>(pts: &[Point<D>], eps: f64, min_pts: usize, rho: f64) {
    let params = DbscanParams::new(eps, min_pts).unwrap();
    let inner = grid_exact(pts, params);
    let approx = rho_approx(pts, params, rho);
    let outer = grid_exact(pts, params.inflate(rho));
    let outcome = check_sandwich(&inner, &approx, &outer);
    assert_eq!(
        outcome,
        SandwichOutcome::Holds,
        "sandwich violated at eps={eps}, MinPts={min_pts}, rho={rho}: {outcome:?}"
    );
}

#[test]
fn sandwich_on_uniform_random_data() {
    // Uniform data maximizes boundary effects: many pairs near distance ε.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<3>> = (0..800)
            .map(|_| {
                Point([
                    rng.gen::<f64>() * 30.0,
                    rng.gen::<f64>() * 30.0,
                    rng.gen::<f64>() * 30.0,
                ])
            })
            .collect();
        for rho in [0.001, 0.05, 0.3, 1.0] {
            assert_sandwich(&pts, 1.5, 4, rho);
            assert_sandwich(&pts, 3.0, 10, rho);
        }
    }
}

#[test]
fn sandwich_on_spreader_data_all_dims() {
    let cfg2 = SpreaderConfig::paper_defaults(2_000, 2);
    let pts2 = seed_spreader::<2>(&cfg2, &mut StdRng::seed_from_u64(1));
    let cfg5 = SpreaderConfig::paper_defaults(2_000, 5);
    let pts5 = seed_spreader::<5>(&cfg5, &mut StdRng::seed_from_u64(2));
    let cfg7 = SpreaderConfig::paper_defaults(1_500, 7);
    let pts7 = seed_spreader::<7>(&cfg7, &mut StdRng::seed_from_u64(3));
    for rho in [0.001, 0.01, 0.1] {
        assert_sandwich(&pts2, 5_000.0, 10, rho);
        assert_sandwich(&pts5, 5_000.0, 10, rho);
        assert_sandwich(&pts7, 5_000.0, 10, rho);
    }
}

#[test]
fn sandwich_at_pathological_radii() {
    // A lattice with spacing exactly matching eps multiples: every distance
    // comparison is a tie somewhere.
    let mut pts: Vec<Point<2>> = Vec::new();
    for x in 0..15 {
        for y in 0..15 {
            pts.push(Point([x as f64, y as f64]));
        }
    }
    for eps in [1.0, 2f64.sqrt(), 2.0] {
        for rho in [0.001, 0.25] {
            assert_sandwich(&pts, eps, 4, rho);
        }
    }
}
