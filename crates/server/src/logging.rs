//! Structured leveled logging for the daemon: JSON lines to stderr or a
//! file, std-only.
//!
//! Each line is one `json::Value` object — `ts_ms` (unix millis), `level`,
//! `event`, then the caller's fields in order. Job-lifecycle events carry
//! `job`, `tag`, `verb`, outcome, and durations, so operators can reconstruct
//! any request's history from the log alone (the PR 9 lifecycle satellite).
//!
//! File sinks rotate atomically: when a line would push the file past
//! `max_bytes`, the current file is renamed to `<path>.1` (clobbering any
//! previous rotation) and a fresh file is created before the line is
//! written. Rotation and writes happen under the sink mutex, so concurrent
//! executors never interleave partial lines.

use crate::json::{obj, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered so `Error < Warn < Info < Debug`; a logger at
/// level `L` emits every record with level ≤ `L`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

enum Sink {
    Stderr,
    File {
        path: PathBuf,
        file: File,
        written: u64,
        max_bytes: u64,
    },
}

/// A leveled JSON-lines logger. Cheap to share behind an `Arc`; emitting a
/// disabled level is a single enum compare with no formatting.
pub struct Logger {
    level: Level,
    sink: Mutex<Sink>,
}

impl Logger {
    pub fn stderr(level: Level) -> Logger {
        Logger { level, sink: Mutex::new(Sink::Stderr) }
    }

    pub fn to_file(level: Level, path: PathBuf, max_bytes: u64) -> io::Result<Logger> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(Logger {
            level,
            sink: Mutex::new(Sink::File { path, file, written, max_bytes }),
        })
    }

    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Emits one structured record. `fields` keep their order in the output
    /// line (the `json::Value` object is a Vec of pairs).
    pub fn log(&self, level: Level, event: &str, fields: Vec<(&str, Value)>) {
        if !self.enabled(level) {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut pairs = vec![
            ("ts_ms", Value::Num(ts_ms as f64)),
            ("level", Value::Str(level.name().to_string())),
            ("event", Value::Str(event.to_string())),
        ];
        pairs.extend(fields);
        let line = obj(pairs).to_line();
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *sink {
            Sink::Stderr => {
                let mut err = io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            Sink::File { path, file, written, max_bytes } => {
                let needed = line.len() as u64 + 1;
                if *written > 0 && *written + needed > *max_bytes {
                    // Atomic rotation: rename the full file aside, then start
                    // a fresh one. A failed rename keeps writing in place
                    // rather than losing records.
                    let mut rotated = path.clone().into_os_string();
                    rotated.push(".1");
                    if std::fs::rename(&path, &rotated).is_ok() {
                        if let Ok(fresh) =
                            OpenOptions::new().create(true).append(true).open(&path)
                        {
                            *file = fresh;
                            *written = 0;
                        }
                    }
                }
                if writeln!(file, "{line}").is_ok() {
                    *written += needed;
                }
            }
        }
    }

    pub fn error(&self, event: &str, fields: Vec<(&str, Value)>) {
        self.log(Level::Error, event, fields);
    }

    pub fn warn(&self, event: &str, fields: Vec<(&str, Value)>) {
        self.log(Level::Warn, event, fields);
    }

    pub fn info(&self, event: &str, fields: Vec<(&str, Value)>) {
        self.log(Level::Info, event, fields);
    }

    pub fn debug(&self, event: &str, fields: Vec<(&str, Value)>) {
        self.log(Level::Debug, event, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbscan-logging-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut rotated = p.clone().into_os_string();
        rotated.push(".1");
        let _ = std::fs::remove_file(PathBuf::from(rotated));
        p
    }

    #[test]
    fn level_ordering_filters_records() {
        assert!(Level::Error < Level::Debug);
        let log = Logger::stderr(Level::Warn);
        assert!(log.enabled(Level::Error));
        assert!(log.enabled(Level::Warn));
        assert!(!log.enabled(Level::Info));
        assert!(!log.enabled(Level::Debug));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn file_sink_writes_parseable_json_lines() {
        let path = temp_path("lines");
        let log = Logger::to_file(Level::Info, path.clone(), u64::MAX).unwrap();
        log.info("job_done", vec![("job", Value::Num(7.0)), ("ok", Value::Bool(true))]);
        log.debug("hidden", vec![]); // below the level → not written
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("job_done"));
        assert_eq!(v.get("level").and_then(|e| e.as_str()), Some("info"));
        assert_eq!(v.get("job").and_then(|e| e.as_u64()), Some(7));
        assert!(v.get("ts_ms").and_then(|e| e.as_u64()).unwrap() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_rotates_at_max_bytes() {
        let path = temp_path("rotate");
        // Cap small enough that every record triggers a rotation check; each
        // line is ~70 bytes, so 128 holds one line but not two.
        let log = Logger::to_file(Level::Info, path.clone(), 128).unwrap();
        for i in 0..5 {
            log.info("tick", vec![("i", Value::Num(f64::from(i)))]);
        }
        drop(log);
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        let rotated = PathBuf::from(rotated);
        assert!(rotated.exists(), "rotation must have happened");
        // Every line in both files still parses; nothing was torn.
        let mut total = 0;
        for p in [&path, &rotated] {
            for line in std::fs::read_to_string(p).unwrap().lines() {
                json::parse(line).unwrap();
                total += 1;
            }
        }
        // Rotation clobbers older generations, so some ticks may be gone,
        // but the newest record always survives in the live file.
        assert!(total >= 2);
        let live = std::fs::read_to_string(&path).unwrap();
        assert!(live.contains("\"i\":4"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }
}
