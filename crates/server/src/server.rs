//! The daemon: listener, admission control, executor pool, drain logic.
//!
//! Threading model (all threads joined on shutdown — the isolation tests
//! assert `/proc/self/task` returns to baseline):
//!
//! * one *orchestrator* thread runs the nonblocking accept loop and drives
//!   the drain state machine;
//! * one handler thread per connection, reading newline-delimited JSON
//!   requests with a short read timeout so it can notice shutdown;
//! * `workers` executor threads pull jobs off the bounded queue; each job
//!   runs under `catch_unwind` plus its own [`RunCtl`], so a panicking or
//!   fault-injected request becomes a typed error line while concurrent
//!   requests are untouched;
//! * one shared [`WorkerPool`] of `job_threads` for the parallel pipeline
//!   (its `phase_lock` serializes phases across concurrent jobs — saturated,
//!   never oversubscribed). The pool is owned by the server and dropped on
//!   shutdown, unlike the never-torn-down process-global pool;
//! * one *sampler* thread feeding the rolling health time-series, and (only
//!   with `--metrics-listen`) one scrape-only HTTP thread serving the
//!   Prometheus text exposition.

use crate::cache::{fnv1a_u64, CacheKey, CellsCache};
use crate::journal::{Journal, JournalConfig};
use crate::json::{obj, parse, Value};
use crate::logging::{Level, Logger};
use crate::metrics::{render_prometheus, Gauges, MCounter, MHist};
use crate::signals;
use crate::telemetry::{cap_folded, HealthSample, Telemetry};
use dbscan_core::algorithms::{
    try_grid_exact_from_cells_ctl, try_rho_approx_from_cells_ctl, BcpStrategy,
};
use dbscan_core::cells::CoreCells;
use dbscan_core::error::validate_rho;
use dbscan_core::parallel::{try_grid_exact_par_ctl, try_rho_approx_par_ctl};
use dbscan_core::{
    chrome_trace_json_capped, folded_stacks, parse_duration, Clustering, Counter, DbscanError,
    DbscanParams, DeadlineConfig, DeadlineOutcome, DeadlinePolicy, FaultPlan, NoStats, ParConfig,
    RecoveryPolicy, ResourceLimits, RunCtl, StageId, Stats, StatsReport, StatsSink, TracedStats,
    WorkerPool,
};
use dbscan_geom::Point;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// Unix-domain socket at this path (removed on clean shutdown).
    Unix(PathBuf),
    /// TCP address like `127.0.0.1:7474` (`:0` picks a free port).
    Tcp(String),
}

/// Daemon configuration; every field maps to a `dbscan serve` flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub bind: Bind,
    /// Queue depth past which submissions are shed with `retry_after_ms`.
    pub max_queue: usize,
    /// Executor threads (concurrent jobs).
    pub workers: usize,
    /// Threads in the shared parallel-pipeline pool.
    pub job_threads: usize,
    /// Queue age past which queued *exact* jobs are switched to
    /// ρ-approximate (`overload_rho`); `None` disables pressure degradation.
    pub pressure_threshold: Option<Duration>,
    /// The ρ used for pressure-degraded jobs (Sandwich-valid per Theorem 3).
    pub overload_rho: f64,
    /// How long a SIGTERM/`shutdown` drain may take before in-flight jobs
    /// are interrupted and queued jobs cancelled.
    pub drain_deadline: Duration,
    /// Per-request index-build byte budget ([`ResourceLimits`]).
    pub max_index_bytes: Option<u64>,
    /// Byte budget for the [`CellsCache`].
    pub cache_bytes: u64,
    /// Optional TCP address for the scrape-only Prometheus endpoint
    /// (`GET` anything → the text exposition); `None` disables the listener
    /// (the `metrics` verb works either way).
    pub metrics_listen: Option<String>,
    /// Structured-log severity threshold.
    pub log_level: Level,
    /// JSON-lines log destination; `None` logs to stderr.
    pub log_file: Option<PathBuf>,
    /// Rotation threshold for `log_file` (renamed to `<path>.1` when full).
    pub log_max_bytes: u64,
    /// Health time-series sampling period.
    pub sample_interval: Duration,
    /// Byte cap for an inline per-request trace (`submit {"trace":...}`).
    pub trace_max_bytes: usize,
    /// Health time-series ring capacity (samples retained).
    pub timeseries_cap: usize,
    /// Write-ahead job journal (`--journal DIR`); `None` keeps the daemon
    /// fully in-memory — the pre-journal zero-overhead path.
    pub journal: Option<JournalConfig>,
    /// Idle deadline per connection (`--conn-timeout`): a connection with no
    /// complete frame for this long is evicted (slow-loris defense). `None`
    /// disables eviction.
    pub conn_timeout: Option<Duration>,
    /// Hard cap on a single request frame; a partial frame growing past it
    /// gets a typed `frame_too_large` error and the connection is closed.
    pub max_frame_bytes: usize,
    /// Concurrent-connection cap; past it, new connections get a typed
    /// `too_many_conns` line and are dropped at accept.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            max_queue: 64,
            workers: 2,
            job_threads: 1,
            pressure_threshold: None,
            overload_rho: 1e-2,
            drain_deadline: Duration::from_secs(5),
            max_index_bytes: None,
            cache_bytes: 64 << 20,
            metrics_listen: None,
            log_level: Level::Info,
            log_file: None,
            log_max_bytes: 10 << 20,
            sample_interval: Duration::from_secs(1),
            trace_max_bytes: 4 << 20,
            timeseries_cap: 600,
            journal: None,
            conn_timeout: None,
            max_frame_bytes: 16 << 20,
            max_conns: 1024,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Algorithm {
    Exact,
    Approx { rho: f64 },
}

/// Inline trace format a tenant can request per submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TraceFmt {
    /// Chrome trace-event JSON (Perfetto-openable).
    Chrome,
    /// Folded flamegraph stacks (`flamegraph.pl` input).
    Folded,
}

impl TraceFmt {
    pub(crate) fn name(self) -> &'static str {
        match self {
            TraceFmt::Chrome => "chrome",
            TraceFmt::Folded => "folded",
        }
    }
}

/// A rendered per-request trace, size-capped at `trace_max_bytes`.
struct TraceCapture {
    rendered: String,
    format: TraceFmt,
    /// The render hit the byte cap (events/lines were omitted).
    truncated: bool,
    /// Events lost in the tracer's ring buffers before rendering.
    events_dropped: u64,
}

/// One parsed `submit` request (or its journal-decoded twin — the journal
/// module serializes and reconstructs these across restarts).
#[derive(Clone, Debug)]
pub(crate) struct JobSpec {
    pub(crate) points: Arc<Vec<f64>>, // flattened row-major, n × dim
    pub(crate) dim: usize,
    pub(crate) params: DbscanParams,
    pub(crate) algorithm: Algorithm,
    /// Run the parallel pipeline (shared pool) instead of the cached
    /// sequential path. Implied by a fault spec.
    pub(crate) parallel: bool,
    pub(crate) recovery: RecoveryPolicy,
    pub(crate) deadline: DeadlineConfig,
    pub(crate) faults: Option<FaultPlan>,
    /// Testing aid: hold the executor for this long (in cancellable slices)
    /// before clustering, so tests can fill the queue deterministically.
    pub(crate) pause_ms: u64,
    /// Testing aid (fault-injection builds only): panic at the job boundary,
    /// exercising the server's own `catch_unwind`.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    pub(crate) boom: bool,
    pub(crate) return_labels: bool,
    pub(crate) tag: Option<String>,
    /// Capture a per-request trace through `TracedStats` and return it
    /// inline with the result.
    pub(crate) trace: Option<TraceFmt>,
    /// Re-enqueued from the journal after a restart (surfaced in `status`
    /// responses so clients can tell replayed work from fresh work).
    pub(crate) recovered: bool,
}

struct JobOutput {
    clustering: Clustering,
    outcome: &'static str,
    complete: bool,
    from_cache: bool,
    degraded_by_server: bool,
    rho_used: Option<f64>,
    elapsed: Duration,
    trace: Option<TraceCapture>,
}

enum JobState {
    Queued,
    Running,
    Done(Box<JobOutput>),
    Failed { code: &'static str, message: String },
    Cancelled,
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    ctl: Arc<RunCtl>,
    submitted: Instant,
}

/// Terminal records retained past this count are evicted oldest-first, so a
/// client that never fetches its result cannot pin job memory forever.
const MAX_TERMINAL_RECORDS: usize = 256;

/// The job map plus bounded retention of terminal records. Without the bound
/// (and the consume-once `result` eviction) every submission would retain its
/// input points and labels for the life of the daemon.
#[derive(Default)]
struct JobTable {
    map: HashMap<u64, JobRecord>,
    /// Terminal job ids, oldest first; drives the retention bound.
    retired: VecDeque<u64>,
}

impl JobTable {
    /// Moves a record into a terminal state. The input points are released
    /// immediately — `status`/`result` only need the spec's metadata — and
    /// the record joins the bounded retirement queue.
    fn finish(&mut self, id: u64, state: JobState) {
        debug_assert!(state.terminal());
        if let Some(rec) = self.map.get_mut(&id) {
            rec.state = state;
            rec.spec.points = Arc::new(Vec::new());
            self.retired.push_back(id);
            while self.retired.len() > MAX_TERMINAL_RECORDS {
                if let Some(old) = self.retired.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Releases a terminal record whose result has been delivered
    /// (`result` is consume-once; see the README protocol section).
    fn remove_delivered(&mut self, id: u64) {
        self.map.remove(&id);
        self.retired.retain(|&x| x != id);
    }
}

struct Shared {
    cfg: ServerConfig,
    queue: Mutex<VecDeque<u64>>,
    work_cv: Condvar,
    jobs: Mutex<JobTable>,
    done_cv: Condvar,
    next_id: AtomicU64,
    running: AtomicUsize,
    /// The observability plane: metrics registry (the *single* source of
    /// truth for every counter — `health`, `metrics`, and the final stats
    /// envelope all project these atomics), logger, trace budget, and the
    /// health time-series ring.
    tel: Telemetry,
    cache: Mutex<CellsCache>,
    pool: Arc<WorkerPool>,
    started: Instant,
    /// Set by the `shutdown` verb or a signal: refuse admissions, drain.
    draining: AtomicBool,
    /// Set at the end of drain: connection handlers and executors exit.
    stopping: AtomicBool,
    /// The write-ahead journal (`--journal`); lock ordering: the journal
    /// lock is always innermost (taken while holding `queue` on submit or
    /// `jobs` on finish, never the other way around).
    journal: Option<Mutex<Journal>>,
    /// Live connection-handler count, for the `--max-conns` accept gate.
    conns: AtomicUsize,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Point-in-time gauges for the exposition (sampled at scrape time).
    fn gauges(&self) -> Gauges {
        Gauges {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue_depth() as u64,
            running: self.running.load(Ordering::SeqCst) as u64,
            draining: self.draining.load(Ordering::SeqCst),
            workers: self.cfg.workers as u64,
            job_threads: self.cfg.job_threads as u64,
            max_queue: self.cfg.max_queue as u64,
            cache: self.cache.lock().unwrap().stats(),
        }
    }

    /// Takes one health snapshot and folds it into the time-series ring.
    fn sample_health(&self) {
        let m = &self.tel.metrics;
        let cache = self.cache.lock().unwrap().stats();
        let sample = HealthSample {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue_depth() as u64,
            running: self.running.load(Ordering::SeqCst) as u64,
            avg_job_ms: m.avg_job_ms.load(Ordering::SeqCst),
            submitted: m.get(MCounter::Submitted),
            completed: m.get(MCounter::Completed),
            failed: m.get(MCounter::Failed),
            cancelled: m.get(MCounter::Cancelled),
            shed: m.get(MCounter::ShedJobs),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_bytes: cache.bytes,
            completed_in_window: 0,
            throughput_per_s: 0.0,
            cache_hit_rate: 0.0,
        };
        self.tel.ring.lock().unwrap().push(sample);
    }

    fn stats_value(&self) -> Value {
        let m = &self.tel.metrics;
        let cache = self.cache.lock().unwrap().stats();
        obj(vec![
            ("schema", Value::Str("dbscan-server-stats/v1".to_string())),
            (
                "uptime_ms",
                Value::Num(self.started.elapsed().as_millis() as f64),
            ),
            ("queue_depth", Value::Num(self.queue_depth() as f64)),
            (
                "running",
                Value::Num(self.running.load(Ordering::SeqCst) as f64),
            ),
            ("workers", Value::Num(self.cfg.workers as f64)),
            ("job_threads", Value::Num(self.cfg.job_threads as f64)),
            ("max_queue", Value::Num(self.cfg.max_queue as f64)),
            ("submitted", Value::Num(m.get(MCounter::Submitted) as f64)),
            ("completed", Value::Num(m.get(MCounter::Completed) as f64)),
            ("failed", Value::Num(m.get(MCounter::Failed) as f64)),
            ("cancelled", Value::Num(m.get(MCounter::Cancelled) as f64)),
            ("shed_jobs", Value::Num(m.get(MCounter::ShedJobs) as f64)),
            (
                "degraded_jobs",
                Value::Num(m.get(MCounter::DegradedJobs) as f64),
            ),
            (
                "worker_panics",
                Value::Num(m.get(MCounter::WorkerPanics) as f64),
            ),
            (
                "sequential_fallbacks",
                Value::Num(m.get(MCounter::SequentialFallbacks) as f64),
            ),
            (
                "recovered_jobs",
                Value::Num(m.get(MCounter::RecoveredJobs) as f64),
            ),
            (
                "evicted_conns",
                Value::Num(m.get(MCounter::EvictedConns) as f64),
            ),
            (
                "malformed_frames",
                Value::Num(m.get(MCounter::MalformedFrames) as f64),
            ),
            (
                "rejected_conns",
                Value::Num(m.get(MCounter::RejectedConns) as f64),
            ),
            ("draining", Value::Bool(self.draining.load(Ordering::SeqCst))),
            (
                "cache",
                obj(vec![
                    ("hits", Value::Num(cache.hits as f64)),
                    ("misses", Value::Num(cache.misses as f64)),
                    ("evictions", Value::Num(cache.evictions as f64)),
                    ("collisions", Value::Num(cache.collisions as f64)),
                    ("entries", Value::Num(cache.entries as f64)),
                    ("bytes", Value::Num(cache.bytes as f64)),
                    ("budget_bytes", Value::Num(cache.budget_bytes as f64)),
                ]),
            ),
            (
                "journal",
                match &self.journal {
                    Some(j) => {
                        let j = j.lock().unwrap();
                        obj(vec![
                            ("bytes", Value::Num(j.len_bytes() as f64)),
                            ("live_jobs", Value::Num(j.live_jobs() as f64)),
                            ("compactions", Value::Num(j.compactions() as f64)),
                        ])
                    }
                    None => Value::Null,
                },
            ),
        ])
    }
}

enum Listener {
    Unix(std::os::unix::net::UnixListener),
    Tcp(std::net::TcpListener),
}

enum Stream {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A started daemon. Dropping the handle without calling [`ServerHandle::wait`]
/// leaks the threads; the CLI and tests always wait.
pub struct ServerHandle {
    shared: Arc<Shared>,
    orchestrator: JoinHandle<()>,
    /// The bound TCP address (for `Bind::Tcp(":0")` tests); `None` for unix.
    pub tcp_addr: Option<std::net::SocketAddr>,
    /// The bound Prometheus scrape address (`metrics_listen`); `None` when
    /// the HTTP endpoint is disabled.
    pub metrics_addr: Option<std::net::SocketAddr>,
}

impl ServerHandle {
    /// Asks the daemon to drain (same as the `shutdown` verb or SIGTERM).
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
    }

    /// Blocks until the daemon has fully drained and every thread it spawned
    /// has been joined; returns the final stats envelope.
    pub fn wait(self) -> Value {
        let _ = self.orchestrator.join();
        let stats = self.shared.stats_value();
        drop(self.shared);
        stats
    }
}

/// Binds the listener and spawns the daemon threads.
pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = match &cfg.bind {
        Bind::Unix(path) => {
            // A stale socket file from a crashed predecessor would make bind
            // fail; only remove it if nothing is listening there.
            if path.exists() && std::os::unix::net::UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            Listener::Unix(std::os::unix::net::UnixListener::bind(path)?)
        }
        Bind::Tcp(addr) => Listener::Tcp(std::net::TcpListener::bind(addr)?),
    };
    let tcp_addr = match &listener {
        Listener::Tcp(l) => Some(l.local_addr()?),
        Listener::Unix(_) => None,
    };
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true)?,
        Listener::Tcp(l) => l.set_nonblocking(true)?,
    }
    let metrics_listener = match &cfg.metrics_listen {
        Some(addr) => {
            let l = std::net::TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };

    let log = match &cfg.log_file {
        Some(path) => Logger::to_file(cfg.log_level, path.clone(), cfg.log_max_bytes)?,
        None => Logger::stderr(cfg.log_level),
    };
    let tel = Telemetry::new(log, cfg.timeseries_cap, cfg.sample_interval, cfg.trace_max_bytes);

    // Open and replay the journal before any thread starts: recovered jobs
    // must be queued before the executors can race them.
    let (journal, replay) = match &cfg.journal {
        Some(jc) => {
            let (j, replay) = Journal::open(jc)?;
            (Some(Mutex::new(j)), Some(replay))
        }
        None => (None, None),
    };

    let shared = Arc::new(Shared {
        pool: Arc::new(WorkerPool::new(cfg.job_threads)),
        cache: Mutex::new(CellsCache::new(cfg.cache_bytes)),
        cfg,
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        jobs: Mutex::new(JobTable::default()),
        done_cv: Condvar::new(),
        next_id: AtomicU64::new(1),
        running: AtomicUsize::new(0),
        tel,
        started: Instant::now(),
        draining: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
        journal,
        conns: AtomicUsize::new(0),
    });

    if let Some(replay) = replay {
        if let Some(t) = &replay.truncation {
            shared.tel.log.warn(
                "journal_truncated",
                vec![
                    ("valid_bytes", Value::Num(t.valid_bytes as f64)),
                    ("dropped_bytes", Value::Num(t.dropped_bytes as f64)),
                    ("reason", Value::Str(t.reason.clone())),
                ],
            );
        }
        if replay.max_id > 0 {
            shared.next_id.store(replay.max_id + 1, Ordering::SeqCst);
        }
        if !replay.recovered.is_empty() {
            let n = replay.recovered.len();
            let mut queue = shared.queue.lock().unwrap();
            let mut jobs = shared.jobs.lock().unwrap();
            for (id, mut spec) in replay.recovered {
                spec.recovered = true;
                let ctl = Arc::new(RunCtl::cancellable(&spec.deadline));
                jobs.map.insert(
                    id,
                    JobRecord {
                        spec,
                        state: JobState::Queued,
                        ctl,
                        submitted: Instant::now(),
                    },
                );
                queue.push_back(id);
                // Recovered jobs count as submitted too, keeping the
                // accounting invariant submitted == completed+failed+cancelled
                // intact within one process lifetime.
                shared.tel.metrics.bump(MCounter::Submitted);
                shared.tel.metrics.bump(MCounter::RecoveredJobs);
            }
            drop(jobs);
            drop(queue);
            shared.tel.log.info(
                "journal_recovered",
                vec![("jobs", Value::Num(n as f64))],
            );
        }
    }

    let bind_desc = match (&shared.cfg.bind, tcp_addr) {
        (Bind::Unix(path), _) => format!("unix:{}", path.display()),
        (Bind::Tcp(_), Some(addr)) => format!("tcp:{addr}"),
        (Bind::Tcp(a), None) => format!("tcp:{a}"),
    };
    shared.tel.log.info(
        "server_start",
        vec![
            ("bind", Value::Str(bind_desc)),
            ("workers", Value::Num(shared.cfg.workers as f64)),
            ("job_threads", Value::Num(shared.cfg.job_threads as f64)),
            ("max_queue", Value::Num(shared.cfg.max_queue as f64)),
            ("cache_bytes", Value::Num(shared.cfg.cache_bytes as f64)),
            (
                "drain_deadline_ms",
                Value::Num(shared.cfg.drain_deadline.as_millis() as f64),
            ),
            (
                "metrics_listen",
                match metrics_addr {
                    Some(a) => Value::Str(a.to_string()),
                    None => Value::Null,
                },
            ),
        ],
    );

    let executors: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dbscan-exec-{i}"))
                .spawn(move || executor_loop(&shared))
                .expect("spawn executor")
        })
        .collect();

    let mut aux: Vec<JoinHandle<()>> = Vec::new();
    {
        let shared = Arc::clone(&shared);
        aux.push(
            std::thread::Builder::new()
                .name("dbscan-sample".to_string())
                .spawn(move || sampler_loop(&shared))
                .expect("spawn sampler"),
        );
    }
    if let Some(l) = metrics_listener {
        let shared = Arc::clone(&shared);
        aux.push(
            std::thread::Builder::new()
                .name("dbscan-metrics".to_string())
                .spawn(move || metrics_http_loop(&shared, l))
                .expect("spawn metrics listener"),
        );
    }

    let orch_shared = Arc::clone(&shared);
    let orchestrator = std::thread::Builder::new()
        .name("dbscan-accept".to_string())
        .spawn(move || orchestrate(&orch_shared, listener, executors, aux))
        .expect("spawn orchestrator");

    Ok(ServerHandle {
        shared,
        orchestrator,
        tcp_addr,
        metrics_addr,
    })
}

/// Periodic health sampler: one [`HealthSample`] per `sample_interval` into
/// the bounded ring, sleeping in short slices so shutdown is prompt.
fn sampler_loop(shared: &Arc<Shared>) {
    let mut next = Instant::now() + shared.tel.sample_interval;
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next {
            shared.sample_health();
            next = Instant::now() + shared.tel.sample_interval;
        }
        std::thread::sleep(Duration::from_millis(20).min(shared.tel.sample_interval));
    }
}

/// Scrape-only HTTP listener: any request gets the current Prometheus text
/// exposition back. Deliberately minimal — no routing, no keep-alive — so
/// it cannot become an unauthenticated control surface.
fn metrics_http_loop(shared: &Arc<Shared>, listener: std::net::TcpListener) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let mut buf = [0u8; 1024];
                let _ = std::io::Read::read(&mut stream, &mut buf);
                let body = render_prometheus(&shared.tel.metrics, &shared.gauges());
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Accept loop + drain state machine; joins every thread before returning.
fn orchestrate(
    shared: &Arc<Shared>,
    listener: Listener,
    executors: Vec<JoinHandle<()>>,
    aux: Vec<JoinHandle<()>>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    let mut interrupted = false;
    let mut sync_err_logged = false;
    loop {
        if signals::shutdown_requested() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if let Some(journal) = &shared.journal {
            // Interval-mode flush; with sync=always this is a no-op.
            match journal.lock().unwrap().sync_if_due() {
                Ok(()) => sync_err_logged = false,
                Err(e) => {
                    if !sync_err_logged {
                        sync_err_logged = true;
                        shared.tel.log.warn(
                            "journal_error",
                            vec![("message", Value::Str(format!("interval sync: {e}")))],
                        );
                    }
                }
            }
        }
        if shared.draining.load(Ordering::SeqCst) && drain_started.is_none() {
            drain_started = Some(Instant::now());
            shared.tel.log.info(
                "server_drain",
                vec![
                    ("queue_depth", Value::Num(shared.queue_depth() as f64)),
                    (
                        "running",
                        Value::Num(shared.running.load(Ordering::SeqCst) as f64),
                    ),
                ],
            );
            shared.work_cv.notify_all();
        }
        if let Some(t0) = drain_started {
            let idle =
                shared.queue_depth() == 0 && shared.running.load(Ordering::SeqCst) == 0;
            if idle {
                break;
            }
            if t0.elapsed() > shared.cfg.drain_deadline && !interrupted {
                interrupted = true;
                // Past the drain deadline: cancel everything still queued and
                // interrupt everything running; the cooperative checkpoints
                // bring jobs back within one slice.
                let drained: Vec<u64> = shared.queue.lock().unwrap().drain(..).collect();
                let mut jobs = shared.jobs.lock().unwrap();
                let mut drain_cancelled = 0u64;
                for id in drained {
                    if jobs.map.get(&id).is_some_and(|rec| !rec.state.terminal()) {
                        finish_job(shared, &mut jobs, id, JobState::Cancelled);
                        shared.tel.metrics.bump(MCounter::Cancelled);
                        drain_cancelled += 1;
                    }
                }
                if drain_cancelled > 0 {
                    shared.tel.log.warn(
                        "drain_deadline_exceeded",
                        vec![("cancelled_queued", Value::Num(drain_cancelled as f64))],
                    );
                }
                for rec in jobs.map.values() {
                    if matches!(rec.state, JobState::Running) {
                        rec.ctl.interrupt();
                    }
                }
                drop(jobs);
                shared.done_cv.notify_all();
                shared.work_cv.notify_all();
            }
        }

        let accepted = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Some(Stream::Unix(s)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Stream::Tcp(s)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
        };
        match accepted {
            Some(mut stream) => {
                if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
                    // At the cap: answer with a typed error and hang up
                    // rather than spawning an unbounded handler thread.
                    shared.tel.metrics.bump(MCounter::RejectedConns);
                    shared.tel.log.warn(
                        "conn_rejected",
                        vec![("max_conns", Value::Num(shared.cfg.max_conns as f64))],
                    );
                    let mut line =
                        err_value("too_many_conns", "connection limit reached; retry later")
                            .to_line();
                    line.push('\n');
                    let _ = stream.write_all(line.as_bytes());
                } else {
                    shared.conns.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = Arc::clone(shared);
                    match std::thread::Builder::new()
                        .name("dbscan-conn".to_string())
                        .spawn(move || handle_connection(&conn_shared, stream))
                    {
                        Ok(h) => conns.push(h),
                        Err(_) => {
                            shared.conns.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
        conns.retain(|h| !h.is_finished());
    }

    // Drained: tell everyone to exit and join them all.
    shared.stopping.store(true, Ordering::SeqCst);
    shared.work_cv.notify_all();
    shared.done_cv.notify_all();
    for h in executors {
        let _ = h.join();
    }
    for h in aux {
        let _ = h.join();
    }
    for h in conns {
        let _ = h.join();
    }
    drop(listener);
    if let Bind::Unix(path) = &shared.cfg.bind {
        let _ = std::fs::remove_file(path);
    }
    let m = &shared.tel.metrics;
    shared.tel.log.info(
        "server_exit",
        vec![
            (
                "uptime_ms",
                Value::Num(shared.started.elapsed().as_millis() as f64),
            ),
            ("submitted", Value::Num(m.get(MCounter::Submitted) as f64)),
            ("completed", Value::Num(m.get(MCounter::Completed) as f64)),
            ("failed", Value::Num(m.get(MCounter::Failed) as f64)),
            ("cancelled", Value::Num(m.get(MCounter::Cancelled) as f64)),
            ("shed_jobs", Value::Num(m.get(MCounter::ShedJobs) as f64)),
            (
                "degraded_jobs",
                Value::Num(m.get(MCounter::DegradedJobs) as f64),
            ),
            (
                "worker_panics",
                Value::Num(m.get(MCounter::WorkerPanics) as f64),
            ),
        ],
    );
}

fn handle_connection(shared: &Arc<Shared>, stream: Stream) {
    struct ConnGuard<'a>(&'a Shared);
    impl Drop for ConnGuard<'_> {
        fn drop(&mut self) {
            self.0.conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _guard = ConnGuard(shared);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    // Byte-level framing with a hard cap, replacing the old unbounded
    // `read_line`: a client streaming newline-free bytes can pin at most
    // `max_frame_bytes` (+ one read chunk) of memory per connection.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut last_activity = Instant::now();
    loop {
        // Serve every complete frame already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=pos).collect();
            if !serve_frame(shared, &frame[..frame.len() - 1], &mut writer) {
                return;
            }
            // A long blocking verb (`result` with wait) is activity too.
            last_activity = Instant::now();
        }
        // A partial frame past the cap can never complete: answer with a
        // typed error and hang up — the buffer itself is the attack surface.
        if buf.len() > shared.cfg.max_frame_bytes {
            shared.tel.metrics.bump(MCounter::MalformedFrames);
            shared.tel.log.warn(
                "frame_too_large",
                vec![
                    ("bytes", Value::Num(buf.len() as f64)),
                    (
                        "max_frame_bytes",
                        Value::Num(shared.cfg.max_frame_bytes as f64),
                    ),
                ],
            );
            let _ = write_line(
                &mut writer,
                &err_value(
                    "frame_too_large",
                    &format!(
                        "frame exceeds --max-frame-bytes ({})",
                        shared.cfg.max_frame_bytes
                    ),
                ),
            );
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                // EOF with a dangling unterminated frame: serve it, matching
                // the pre-hardening `read_line` behavior for lazy clients.
                if !buf.is_empty() {
                    let frame = std::mem::take(&mut buf);
                    serve_frame(shared, &frame, &mut writer);
                }
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(limit) = shared.cfg.conn_timeout {
                    if last_activity.elapsed() > limit {
                        shared.tel.metrics.bump(MCounter::EvictedConns);
                        shared.tel.log.warn(
                            "conn_evicted",
                            vec![
                                (
                                    "idle_ms",
                                    Value::Num(last_activity.elapsed().as_millis() as f64),
                                ),
                                ("buffered_bytes", Value::Num(buf.len() as f64)),
                            ],
                        );
                        let _ = write_line(
                            &mut writer,
                            &err_value("conn_timeout", "connection idle past --conn-timeout"),
                        );
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(writer: &mut Stream, v: &Value) -> bool {
    let mut out = v.to_line();
    out.push('\n');
    writer.write_all(out.as_bytes()).is_ok() && writer.flush().is_ok()
}

/// Serves one frame (without its newline); returns `false` when the
/// connection should close (write failure).
fn serve_frame(shared: &Arc<Shared>, frame: &[u8], writer: &mut Stream) -> bool {
    let text = match std::str::from_utf8(frame) {
        Ok(t) => t.trim(),
        Err(_) => {
            shared.tel.metrics.bump(MCounter::MalformedFrames);
            return write_line(
                writer,
                &err_value("bad_request", "frame is not valid UTF-8"),
            );
        }
    };
    if text.is_empty() {
        return true;
    }
    write_line(writer, &dispatch(shared, text))
}

/// Moves a job to a terminal state, appending the journal tombstone *first*:
/// by the time any client can observe (or consume) the terminal state, the
/// tombstone is durable, so a crash-restart never re-executes the job.
/// A tombstone write failure is logged but not fatal — the worst case is
/// one redundant (at-least-once) re-execution after a crash.
fn finish_job(shared: &Shared, jobs: &mut JobTable, id: u64, state: JobState) {
    if let Some(journal) = &shared.journal {
        if let Err(e) = journal.lock().unwrap().record_terminal(id, state.name()) {
            shared.tel.log.warn(
                "journal_error",
                vec![
                    ("job", Value::Num(id as f64)),
                    ("message", Value::Str(format!("tombstone: {e}"))),
                ],
            );
        }
    }
    jobs.finish(id, state);
}

fn err_value(code: &str, message: &str) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![
                ("code", Value::Str(code.to_string())),
                ("message", Value::Str(message.to_string())),
            ]),
        ),
    ])
}

fn dispatch(shared: &Arc<Shared>, text: &str) -> Value {
    let req = match parse(text) {
        Ok(v) => v,
        Err(e) => {
            shared.tel.metrics.bump(MCounter::MalformedFrames);
            return err_value("bad_request", &format!("unparseable request: {e}"));
        }
    };
    let verb = match req.get("verb").and_then(Value::as_str) {
        Some(v) => v,
        None => return err_value("bad_request", "missing \"verb\""),
    };
    match verb {
        "submit" => submit(shared, &req),
        "status" => with_job(shared, &req, |rec, id| status_value(rec, id, false)),
        "result" => result_verb(shared, &req),
        "cancel" => cancel_verb(shared, &req),
        "health" => obj(vec![
            ("ok", Value::Bool(true)),
            ("stats", shared.stats_value()),
        ]),
        "metrics" => obj(vec![
            ("ok", Value::Bool(true)),
            (
                "schema",
                Value::Str("dbscan-server-metrics/v1".to_string()),
            ),
            (
                "exposition",
                Value::Str(render_prometheus(&shared.tel.metrics, &shared.gauges())),
            ),
        ]),
        "timeseries" => {
            let ring = shared.tel.ring.lock().unwrap();
            obj(vec![
                ("ok", Value::Bool(true)),
                (
                    "schema",
                    Value::Str("dbscan-server-timeseries/v1".to_string()),
                ),
                (
                    "interval_ms",
                    Value::Num(shared.tel.sample_interval.as_millis() as f64),
                ),
                ("capacity", Value::Num(ring.capacity() as f64)),
                ("total_samples", Value::Num(ring.total_pushed() as f64)),
                ("samples", ring.to_value()),
            ])
        }
        "shutdown" => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.work_cv.notify_all();
            obj(vec![("ok", Value::Bool(true)), ("draining", Value::Bool(true))])
        }
        other => err_value("bad_request", &format!("unknown verb {other:?}")),
    }
}

fn with_job(
    shared: &Arc<Shared>,
    req: &Value,
    f: impl FnOnce(&JobRecord, u64) -> Value,
) -> Value {
    let id = match req.get("job").and_then(Value::as_u64) {
        Some(id) => id,
        None => return err_value("bad_request", "missing numeric \"job\""),
    };
    let jobs = shared.jobs.lock().unwrap();
    match jobs.map.get(&id) {
        Some(rec) => f(rec, id),
        None => err_value("unknown_job", &format!("no job {id}")),
    }
}

fn status_value(rec: &JobRecord, id: u64, include_result: bool) -> Value {
    let mut members = vec![
        ("ok", Value::Bool(!matches!(rec.state, JobState::Failed { .. }))),
        ("job", Value::Num(id as f64)),
        ("state", Value::Str(rec.state.name().to_string())),
    ];
    if let Some(tag) = &rec.spec.tag {
        members.push(("tag", Value::Str(tag.clone())));
    }
    if rec.spec.recovered {
        members.push(("recovered", Value::Bool(true)));
    }
    match &rec.state {
        JobState::Done(out) => {
            members.push(("outcome", Value::Str(out.outcome.to_string())));
            members.push(("complete", Value::Bool(out.complete)));
            members.push(("from_cache", Value::Bool(out.from_cache)));
            members.push(("degraded_by_server", Value::Bool(out.degraded_by_server)));
            members.push((
                "rho_used",
                match out.rho_used {
                    Some(r) => Value::Num(r),
                    None => Value::Null,
                },
            ));
            members.push((
                "elapsed_ms",
                Value::Num(out.elapsed.as_secs_f64() * 1e3),
            ));
            if include_result {
                let labels = out.clustering.flat_labels();
                members.push((
                    "num_clusters",
                    Value::Num(out.clustering.num_clusters as f64),
                ));
                members.push((
                    "label_hash",
                    Value::Str(format!("{:016x}", label_hash(&labels))),
                ));
                if let Some(trace) = &out.trace {
                    members.push(("trace_format", Value::Str(trace.format.name().to_string())));
                    members.push(("trace_truncated", Value::Bool(trace.truncated)));
                    members.push((
                        "events_dropped",
                        Value::Num(trace.events_dropped as f64),
                    ));
                    members.push(("trace", Value::Str(trace.rendered.clone())));
                }
                if rec.spec.return_labels {
                    members.push((
                        "labels",
                        Value::Arr(
                            labels
                                .iter()
                                .map(|l| match l {
                                    Some(c) => Value::Num(*c as f64),
                                    None => Value::Null,
                                })
                                .collect(),
                        ),
                    ));
                }
            }
        }
        JobState::Failed { code, message } => {
            members.push((
                "error",
                obj(vec![
                    ("code", Value::Str(code.to_string())),
                    ("message", Value::Str(message.clone())),
                ]),
            ));
        }
        _ => {}
    }
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// FNV fingerprint of flat labels (None → sentinel), matching the bench
/// harness's convention so standalone and served runs can be compared.
pub fn label_hash(labels: &[Option<u32>]) -> u64 {
    fnv1a_u64(
        labels
            .iter()
            .map(|l| l.map(|c| c as u64).unwrap_or(u64::MAX)),
    )
}

fn result_verb(shared: &Arc<Shared>, req: &Value) -> Value {
    let id = match req.get("job").and_then(Value::as_u64) {
        Some(id) => id,
        None => return err_value("bad_request", "missing numeric \"job\""),
    };
    let wait = req.get("wait").and_then(Value::as_bool).unwrap_or(true);
    let timeout = req
        .get("timeout_ms")
        .and_then(Value::as_u64)
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(600));
    let deadline = Instant::now() + timeout;
    let mut jobs = shared.jobs.lock().unwrap();
    loop {
        match jobs.map.get(&id) {
            None => return err_value("unknown_job", &format!("no job {id}")),
            Some(rec) if rec.state.terminal() => {
                // Consume-once delivery: the terminal record (its labels and
                // clustering) is released as soon as the result goes out.
                let resp = status_value(rec, id, true);
                jobs.remove_delivered(id);
                return resp;
            }
            Some(rec) if !wait => return status_value(rec, id, false),
            Some(_) => {
                let now = Instant::now();
                if now >= deadline {
                    return err_value("timeout", &format!("job {id} still running"));
                }
                let (guard, _) = shared
                    .done_cv
                    .wait_timeout(jobs, (deadline - now).min(Duration::from_millis(100)))
                    .unwrap();
                jobs = guard;
            }
        }
    }
}

fn cancel_verb(shared: &Arc<Shared>, req: &Value) -> Value {
    let id = match req.get("job").and_then(Value::as_u64) {
        Some(id) => id,
        None => return err_value("bad_request", "missing numeric \"job\""),
    };
    let mut jobs = shared.jobs.lock().unwrap();
    let Some(rec) = jobs.map.get(&id) else {
        return err_value("unknown_job", &format!("no job {id}"));
    };
    match rec.state {
        JobState::Queued => {
            finish_job(shared, &mut jobs, id, JobState::Cancelled);
            shared.tel.metrics.bump(MCounter::Cancelled);
            shared.tel.log.info(
                "job_cancelled",
                vec![
                    ("job", Value::Num(id as f64)),
                    ("verb", Value::Str("cancel".to_string())),
                    ("while", Value::Str("queued".to_string())),
                ],
            );
            shared.done_cv.notify_all();
        }
        JobState::Running => rec.ctl.cancel(),
        _ => {}
    }
    let state = jobs.map[&id].state.name().to_string();
    obj(vec![
        ("ok", Value::Bool(true)),
        ("job", Value::Num(id as f64)),
        ("state", Value::Str(state)),
    ])
}

fn submit(shared: &Arc<Shared>, req: &Value) -> Value {
    if shared.draining.load(Ordering::SeqCst) {
        return err_value("draining", "server is draining; submissions refused");
    }
    let spec = match JobSpec::from_request(req) {
        Ok(s) => s,
        Err((code, msg)) => return err_value(code, &msg),
    };
    // Admission control: depth check under the queue lock so concurrent
    // submitters cannot both squeeze past the bound.
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.cfg.max_queue {
        shared.tel.metrics.bump(MCounter::ShedJobs);
        let avg = shared.tel.metrics.avg_job_ms.load(Ordering::SeqCst).max(10);
        let retry_after = avg.saturating_mul(queue.len() as u64) / shared.cfg.workers.max(1) as u64;
        let depth = queue.len();
        drop(queue);
        shared.tel.log.warn(
            "job_shed",
            vec![
                ("verb", Value::Str("submit".to_string())),
                (
                    "tag",
                    match &spec.tag {
                        Some(t) => Value::Str(t.clone()),
                        None => Value::Null,
                    },
                ),
                ("queue_depth", Value::Num(depth as f64)),
                ("retry_after_ms", Value::Num(retry_after.max(10) as f64)),
            ],
        );
        let mut v = err_value("overloaded", "queue full; retry later");
        if let Value::Obj(members) = &mut v {
            members.push((
                "retry_after_ms".to_string(),
                Value::Num(retry_after.max(10) as f64),
            ));
        }
        return v;
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    // Journal the admission before inserting or acking: with sync=always the
    // ack implies the record is on disk. The queue lock is held across the
    // fsync, serializing admissions — the durability point has to be ordered
    // with admission anyway, and journaled deployments opt into the cost.
    if let Some(journal) = &shared.journal {
        if let Err(e) = journal.lock().unwrap().record_submit(id, &spec) {
            drop(queue);
            shared.tel.log.error(
                "journal_error",
                vec![
                    ("job", Value::Num(id as f64)),
                    ("message", Value::Str(format!("submit: {e}"))),
                ],
            );
            return err_value("journal_error", &format!("could not journal submission: {e}"));
        }
    }
    let n = spec.points.len() / spec.dim.max(1);
    let tag = spec.tag.clone();
    let ctl = Arc::new(RunCtl::cancellable(&spec.deadline));
    shared.jobs.lock().unwrap().map.insert(
        id,
        JobRecord {
            spec,
            state: JobState::Queued,
            ctl,
            submitted: Instant::now(),
        },
    );
    queue.push_back(id);
    let depth = queue.len();
    drop(queue);
    shared.tel.metrics.bump(MCounter::Submitted);
    shared.tel.log.debug(
        "job_submitted",
        vec![
            ("job", Value::Num(id as f64)),
            ("verb", Value::Str("submit".to_string())),
            (
                "tag",
                match tag {
                    Some(t) => Value::Str(t),
                    None => Value::Null,
                },
            ),
            ("n", Value::Num(n as f64)),
            ("queue_depth", Value::Num(depth as f64)),
        ],
    );
    shared.work_cv.notify_one();
    obj(vec![
        ("ok", Value::Bool(true)),
        ("job", Value::Num(id as f64)),
        ("queue_depth", Value::Num(depth as f64)),
    ])
}

impl JobSpec {
    fn from_request(req: &Value) -> Result<JobSpec, (&'static str, String)> {
        let bad = |msg: String| ("bad_request", msg);
        let points_val = req
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("missing \"points\" array".to_string()))?;
        if points_val.is_empty() {
            return Err(bad("\"points\" must be non-empty".to_string()));
        }
        let dim = points_val[0].as_arr().map(<[Value]>::len).unwrap_or(0);
        if !(1..=8).contains(&dim) {
            return Err(bad(format!("unsupported dimensionality {dim} (1-8)")));
        }
        let mut points = Vec::with_capacity(points_val.len() * dim);
        for (i, p) in points_val.iter().enumerate() {
            let coords = p
                .as_arr()
                .filter(|c| c.len() == dim)
                .ok_or_else(|| bad(format!("point {i} is not a length-{dim} array")))?;
            for c in coords {
                points.push(
                    c.as_f64()
                        .ok_or_else(|| bad(format!("point {i} has a non-numeric coordinate")))?,
                );
            }
        }
        let eps = req
            .get("eps")
            .and_then(Value::as_f64)
            .ok_or_else(|| bad("missing numeric \"eps\"".to_string()))?;
        let min_pts = req
            .get("min_pts")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("missing integer \"min_pts\"".to_string()))?;
        let params = DbscanParams::new(eps, min_pts as usize)
            .map_err(|e| ("invalid_params", e.to_string()))?;
        let algorithm = match req.get("algorithm").and_then(Value::as_str).unwrap_or("exact") {
            "exact" => Algorithm::Exact,
            "approx" => {
                let rho = req.get("rho").and_then(Value::as_f64).unwrap_or(1e-3);
                validate_rho(eps, rho).map_err(|e| ("invalid_rho", e.to_string()))?;
                Algorithm::Approx { rho }
            }
            other => return Err(bad(format!("unknown algorithm {other:?}"))),
        };
        let recovery = match req.get("recovery").and_then(Value::as_str).unwrap_or("fail") {
            "fail" => RecoveryPolicy::Fail,
            "fallback-sequential" => RecoveryPolicy::FallbackSequential,
            other => return Err(bad(format!("unknown recovery policy {other:?}"))),
        };
        let mut deadline = DeadlineConfig::default();
        if let Some(d) = req.get("deadline").and_then(Value::as_str) {
            deadline.budget = Some(parse_duration(d).map_err(|e| bad(format!("deadline: {e}")))?);
        }
        if let Some(p) = req.get("deadline_policy").and_then(Value::as_str) {
            deadline.policy = p
                .parse::<DeadlinePolicy>()
                .map_err(|e| bad(format!("deadline_policy: {e}")))?;
        }
        if let Some(r) = req.get("degrade_rho").and_then(Value::as_f64) {
            deadline.degrade_rho = r;
        }
        let faults = match req.get("faults").and_then(Value::as_str) {
            Some(spec) if cfg!(feature = "fault-injection") => Some(
                spec.parse::<FaultPlan>()
                    .map_err(|e| bad(format!("faults: {e}")))?,
            ),
            Some(_) => {
                return Err((
                    "unsupported",
                    "fault injection not compiled in (feature \"fault-injection\")".to_string(),
                ))
            }
            None => None,
        };
        let boom = req.get("boom").and_then(Value::as_bool).unwrap_or(false);
        if boom && !cfg!(feature = "fault-injection") {
            return Err((
                "unsupported",
                "\"boom\" requires the fault-injection feature".to_string(),
            ));
        }
        let trace = match req.get("trace") {
            None => None,
            Some(v) => match v.as_str() {
                Some("chrome") => Some(TraceFmt::Chrome),
                Some("folded") => Some(TraceFmt::Folded),
                _ => {
                    return Err(bad(
                        "\"trace\" must be \"chrome\" or \"folded\"".to_string(),
                    ))
                }
            },
        };
        Ok(JobSpec {
            points: Arc::new(points),
            dim,
            params,
            algorithm,
            parallel: req.get("threads").and_then(Value::as_u64).is_some()
                || faults.is_some(),
            recovery,
            deadline,
            faults,
            pause_ms: req.get("pause_ms").and_then(Value::as_u64).unwrap_or(0),
            boom,
            return_labels: req.get("labels").and_then(Value::as_bool).unwrap_or(true),
            tag: req.get("tag").and_then(Value::as_str).map(str::to_string),
            trace,
            recovered: false,
        })
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                if shared.draining.load(Ordering::SeqCst)
                    || shared.stopping.load(Ordering::SeqCst)
                {
                    return;
                }
                queue = shared
                    .work_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap()
                    .0;
            }
        };
        execute_job(shared, id);
    }
}

fn execute_job(shared: &Arc<Shared>, id: u64) {
    // Snapshot the spec and flip the record to Running; a job cancelled while
    // queued is skipped entirely.
    let (mut spec, ctl, waited) = {
        let mut jobs = shared.jobs.lock().unwrap();
        let rec = match jobs.map.get_mut(&id) {
            Some(rec) => rec,
            None => return,
        };
        if rec.state.terminal() {
            return;
        }
        rec.state = JobState::Running;
        (rec.spec.clone(), Arc::clone(&rec.ctl), rec.submitted.elapsed())
    };
    shared.running.fetch_add(1, Ordering::SeqCst);

    // Overload valve: a queued exact job that has aged past the pressure
    // threshold runs ρ-approximate instead. The Sandwich Theorem (Theorem 3)
    // bounds the result between the exact clusterings at ε and ε(1+ρ), so
    // shedding work this way never invents arbitrary answers.
    let mut degraded_by_server = false;
    if let Some(threshold) = shared.cfg.pressure_threshold {
        if waited > threshold && spec.algorithm == Algorithm::Exact {
            spec.algorithm = Algorithm::Approx {
                rho: shared.cfg.overload_rho,
            };
            degraded_by_server = true;
            shared.tel.metrics.bump(MCounter::DegradedJobs);
        }
    }

    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &spec, &ctl)));
    let elapsed = t0.elapsed();

    // Every terminal outcome lands in all three latency histograms; the
    // records are two relaxed fetch_adds each, off the clustering hot path.
    let m = &shared.tel.metrics;
    let waited_us = waited.as_micros() as u64;
    let service_us = elapsed.as_micros() as u64;
    m.record(MHist::QueueWaitUs, waited_us);
    m.record(MHist::ServiceUs, service_us);
    m.record(MHist::EndToEndUs, waited_us.saturating_add(service_us));
    let base_fields = |outcome: &str| {
        vec![
            ("job", Value::Num(id as f64)),
            ("verb", Value::Str("submit".to_string())),
            (
                "tag",
                match &spec.tag {
                    Some(t) => Value::Str(t.clone()),
                    None => Value::Null,
                },
            ),
            ("outcome", Value::Str(outcome.to_string())),
            ("duration_ms", Value::Num(elapsed.as_secs_f64() * 1e3)),
            ("queue_wait_ms", Value::Num(waited.as_secs_f64() * 1e3)),
        ]
    };

    let state = match outcome {
        Ok(Ok(success)) => {
            let report = ctl.report();
            let degraded = degraded_by_server || report.outcome == DeadlineOutcome::Degraded;
            m.observe_job_ms(elapsed.as_millis() as u64);
            m.bump(MCounter::Completed);
            let outcome_name = if degraded {
                "degraded"
            } else if report.outcome == DeadlineOutcome::Partial {
                "partial"
            } else {
                "exact"
            };
            let mut fields = base_fields(outcome_name);
            fields.push(("from_cache", Value::Bool(success.from_cache)));
            if success.trace.is_some() {
                fields.push(("traced", Value::Bool(true)));
            }
            shared.tel.log.info("job_done", fields);
            JobState::Done(Box::new(JobOutput {
                clustering: success.clustering,
                outcome: outcome_name,
                complete: report.outcome != DeadlineOutcome::Partial,
                from_cache: success.from_cache,
                degraded_by_server,
                rho_used: success.rho_used,
                elapsed,
                trace: success.trace,
            }))
        }
        Ok(Err(e)) => {
            if matches!(e, DbscanError::Cancelled { .. }) {
                m.bump(MCounter::Cancelled);
                shared.tel.log.info("job_cancelled", base_fields("cancelled"));
                JobState::Cancelled
            } else {
                m.bump(MCounter::Failed);
                let code = error_code(&e);
                let mut fields = base_fields("failed");
                fields.push(("code", Value::Str(code.to_string())));
                fields.push(("message", Value::Str(e.to_string())));
                shared.tel.log.warn("job_failed", fields);
                JobState::Failed {
                    code,
                    message: e.to_string(),
                }
            }
        }
        Err(payload) => {
            m.bump(MCounter::Failed);
            // In-pipeline panics are harvested from the run's `Stats` report
            // (fault specs imply the parallel path, which always carries an
            // enabled sink); only the job-boundary `catch_unwind` trips seen
            // here would otherwise go uncounted.
            m.bump(MCounter::WorkerPanics);
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            let mut fields = base_fields("panic");
            fields.push(("message", Value::Str(message.clone())));
            shared.tel.log.error("job_panicked", fields);
            JobState::Failed {
                code: "panic",
                message,
            }
        }
    };

    {
        let mut jobs = shared.jobs.lock().unwrap();
        finish_job(shared, &mut jobs, id, state);
    }
    shared.running.fetch_sub(1, Ordering::SeqCst);
    shared.done_cv.notify_all();
}

fn error_code(e: &DbscanError) -> &'static str {
    match e {
        DbscanError::InvalidParams(_) => "invalid_params",
        DbscanError::NonFinitePoint { .. } => "invalid_points",
        DbscanError::InvalidRho { .. } => "invalid_rho",
        DbscanError::CoordinateOverflow { .. } => "coordinate_overflow",
        DbscanError::ResourceLimit { .. } => "resource_limit",
        DbscanError::WorkerPanicked { .. } => "worker_panicked",
        DbscanError::Cancelled { .. } => "cancelled",
        DbscanError::DeadlineExceeded { .. } => "deadline_exceeded",
        DbscanError::IndexSizeMismatch { .. } => "index_mismatch",
        _ => "internal",
    }
}

/// A finished run plus its observability byproducts.
struct RunSuccess {
    clustering: Clustering,
    from_cache: bool,
    rho_used: Option<f64>,
    trace: Option<TraceCapture>,
}

type RunResult = Result<RunSuccess, DbscanError>;

/// What the sink-generic core returns before the trace is rendered.
type CoreResult = Result<(Clustering, bool, Option<f64>), DbscanError>;

fn run_job(shared: &Arc<Shared>, spec: &JobSpec, ctl: &RunCtl) -> RunResult {
    // The documented load-testing aid: hold the executor in cancellable
    // slices so tests can saturate the queue deterministically.
    let mut remaining = spec.pause_ms;
    while remaining > 0 {
        if ctl.should_stop() {
            return Err(ctl.deadline_error(StageId::Labeling));
        }
        let slice = remaining.min(10);
        std::thread::sleep(Duration::from_millis(slice));
        remaining -= slice;
    }
    #[cfg(feature = "fault-injection")]
    if spec.boom {
        panic!("injected job-boundary panic");
    }
    macro_rules! dispatch_dim {
        ($($d:literal),*) => {
            match spec.dim {
                $($d => run_typed::<$d>(shared, spec, ctl),)*
                other => unreachable!("dim {other} was bounded to 1-8 at parse time"),
            }
        };
    }
    dispatch_dim!(1, 2, 3, 4, 5, 6, 7, 8)
}

/// Folds the resilience counters a run's enabled sink observed into the
/// server-wide registry, so in-pipeline worker panics and sequential
/// fallbacks surface in the `metrics` exposition.
fn harvest_core_counters(shared: &Arc<Shared>, report: &StatsReport) {
    let m = &shared.tel.metrics;
    m.add(MCounter::WorkerPanics, report.counter(Counter::WorkerPanics));
    m.add(
        MCounter::SequentialFallbacks,
        report.counter(Counter::SequentialFallbacks),
    );
}

/// Picks the cheapest sink that satisfies the request, then runs the
/// sink-generic body:
///
/// * untraced sequential → [`NoStats`] (`ENABLED = false`): the compiler
///   erases every stats call, keeping the cached hot path observability-free;
/// * untraced parallel → [`Stats`]: phase/counter recording so worker panics
///   and fallbacks can be harvested (the pipeline already pays for
///   synchronization; the atomics are noise);
/// * traced (either path) → [`TracedStats`]: full per-request capture,
///   rendered and size-capped before the job record is finished.
fn run_typed<const D: usize>(shared: &Arc<Shared>, spec: &JobSpec, ctl: &RunCtl) -> RunResult {
    let plain = |(clustering, from_cache, rho_used): (Clustering, bool, Option<f64>)| RunSuccess {
        clustering,
        from_cache,
        rho_used,
        trace: None,
    };
    match spec.trace {
        None if !spec.parallel => {
            run_typed_sink::<D, _>(shared, spec, ctl, &NoStats).map(plain)
        }
        None => {
            let stats = Stats::new();
            let res = run_typed_sink::<D, _>(shared, spec, ctl, &stats);
            harvest_core_counters(shared, &stats.report());
            res.map(plain)
        }
        Some(fmt) => {
            let lanes = if spec.parallel {
                shared.cfg.job_threads + 1
            } else {
                1
            };
            // Bounded per-lane rings (vs the batch default of 64K events):
            // a hostile traced submit can cost at most lanes × 16K events of
            // memory; overflow surfaces as `events_dropped`, not OOM.
            let stats = TracedStats::with_capacity(lanes, 1 << 14);
            let res = run_typed_sink::<D, _>(shared, spec, ctl, &stats);
            harvest_core_counters(shared, &stats.stats.report());
            let snap = stats.tracer.snapshot();
            let budget = shared.tel.trace_max_bytes;
            let (rendered, omitted) = match fmt {
                TraceFmt::Chrome => chrome_trace_json_capped(&snap, budget),
                TraceFmt::Folded => {
                    let full = folded_stacks(&snap);
                    cap_folded(&full, budget)
                }
            };
            let capture = TraceCapture {
                rendered,
                format: fmt,
                truncated: omitted > 0,
                events_dropped: snap.events_dropped,
            };
            res.map(|(clustering, from_cache, rho_used)| RunSuccess {
                clustering,
                from_cache,
                rho_used,
                trace: Some(capture),
            })
        }
    }
}

fn run_typed_sink<const D: usize, S: StatsSink>(
    shared: &Arc<Shared>,
    spec: &JobSpec,
    ctl: &RunCtl,
    stats: &S,
) -> CoreResult {
    let points: Vec<Point<D>> = spec
        .points
        .chunks_exact(D)
        .map(|c| Point(std::array::from_fn(|i| c[i])))
        .collect();
    let limits = match shared.cfg.max_index_bytes {
        Some(b) => ResourceLimits::with_max_index_bytes(b),
        None => ResourceLimits::UNLIMITED,
    };

    if spec.parallel {
        // The parallel pipeline owns fault injection and the shared pool;
        // it builds its own structures (no cache interplay).
        let config = ParConfig {
            threads: None,
            recovery: spec.recovery,
            limits,
            faults: spec.faults.clone().unwrap_or_default(),
            deadline: spec.deadline,
            pool: Some(Arc::clone(&shared.pool)),
        };
        return match spec.algorithm {
            Algorithm::Exact => {
                try_grid_exact_par_ctl(&points, spec.params, &config, stats, ctl)
                    .map(|c| (c, false, None))
            }
            Algorithm::Approx { rho } => {
                try_rho_approx_par_ctl(&points, spec.params, rho, &config, stats, ctl)
                    .map(|c| (c, false, Some(rho)))
            }
        };
    }

    // Sequential path: reuse (or build + cache) the CoreCells structure.
    let key = CacheKey {
        data_hash: fnv1a_u64(spec.points.iter().map(|c| c.to_bits())),
        n: points.len(),
        dim: D,
        eps_bits: spec.params.eps().to_bits(),
        min_pts: spec.params.min_pts(),
    };
    let cached = shared.cache.lock().unwrap().get(&key, &spec.points);
    let (cells, from_cache): (Arc<CoreCells<D>>, bool) = match cached
        .and_then(|a| a.downcast::<CoreCells<D>>().ok())
    {
        Some(cells) => (cells, true),
        None => {
            let built = Arc::new(CoreCells::try_build_ctl(
                &points,
                spec.params,
                &limits,
                stats,
                ctl,
            )?);
            if ctl.aborted() {
                return Err(ctl.deadline_error(StageId::Labeling));
            }
            // A build truncated under the `partial` deadline policy is an
            // incomplete structure (remaining cells marked non-core); caching
            // it would serve wrong answers — reported as exact — to
            // full-budget requests for the same (data, eps, min_pts).
            if !ctl.truncated() {
                let bytes = built.approx_bytes();
                shared.cache.lock().unwrap().insert(
                    key,
                    Arc::clone(&spec.points),
                    Arc::clone(&built) as Arc<dyn std::any::Any + Send + Sync>,
                    bytes,
                );
            }
            (built, false)
        }
    };

    match spec.algorithm {
        Algorithm::Exact => try_grid_exact_from_cells_ctl(
            &points,
            &cells,
            BcpStrategy::default(),
            stats,
            ctl,
        )
        .map(|c| (c, from_cache, None)),
        Algorithm::Approx { rho } => {
            try_rho_approx_from_cells_ctl(&points, &cells, rho, &limits, stats, ctl)
                .map(|c| (c, from_cache, Some(rho)))
        }
    }
}
