//! Clustering-as-a-service daemon over `dbscan-core`.
//!
//! A long-lived, std-only server speaking a newline-delimited JSON line
//! protocol over a unix socket or TCP, with the robustness layers ROADMAP
//! item 2 calls for:
//!
//! * **admission control** — a bounded job queue; submissions past
//!   `max_queue` are shed with an explicit `retry_after_ms` instead of
//!   queuing unboundedly, and every request is validated through the typed
//!   `try_*`/[`DbscanError`](dbscan_core::DbscanError) surface with
//!   [`ResourceLimits`](dbscan_core::ResourceLimits) enforced per request;
//! * **tenant fault isolation** — each job runs under `catch_unwind` plus
//!   its own [`RunCtl`](dbscan_core::RunCtl); a panicking or fault-injected
//!   request becomes a typed error line while concurrent requests complete
//!   bit-identically to standalone runs;
//! * **deadlines and load-shed degradation** — per-request deadline
//!   policies, plus a server-level overload valve that re-runs queued exact
//!   jobs ρ-approximately once their queue age passes the pressure
//!   threshold (Sandwich-Theorem valid, Gan & Tao Theorem 3);
//! * **graceful shutdown** — SIGTERM or the `shutdown` verb drains in-flight
//!   work under a drain deadline and joins every thread it spawned;
//! * a bounded, LRU-evicted **structure cache** so repeat queries skip the
//!   grid/core-label rebuild;
//! * a **telemetry plane** — a Prometheus-style `metrics` verb (plus an
//!   optional scrape-only HTTP listener), per-request trace capture
//!   (`submit {"trace":"chrome"|"folded"}` returns an inline, size-capped
//!   trace), structured JSON-lines logging with rotation, and a rolling
//!   health time-series behind a `timeseries` verb;
//! * **crash durability** — an opt-in write-ahead job journal
//!   (`--journal DIR`): admitted submissions are checksummed, appended, and
//!   fsync'd before the ack, terminal transitions append tombstones before
//!   they become visible, and startup replays the log (truncating torn
//!   tails) so a `kill -9` loses no acked work;
//! * **wire hardening** — byte-level framing with a hard `--max-frame-bytes`
//!   cap (no unbounded `read_line`), `--conn-timeout` slow-loris eviction,
//!   a `--max-conns` accept gate, a parser nesting bound, and malformed
//!   frame accounting, so hostile clients degrade into typed error lines
//!   and counters instead of memory or thread exhaustion.
//!
//! See the README's "Running as a service" and "Monitoring the daemon"
//! sections for the protocol grammar and EXPERIMENTS.md for the
//! `dbscan-server-stats/v1` and `dbscan-server-metrics/v1` envelopes.

pub mod cache;
pub mod client;
pub mod journal;
pub mod json;
pub mod logging;
pub mod metrics;
pub mod server;
pub mod signals;
pub mod telemetry;

pub use client::{Backoff, Client};
pub use journal::{JournalConfig, JournalSync};
pub use logging::{Level, Logger};
pub use metrics::{parse_exposition, MCounter, MHist, Metrics};
pub use server::{label_hash, start, Bind, ServerConfig, ServerHandle};
pub use telemetry::{HealthRing, HealthSample, Telemetry};
