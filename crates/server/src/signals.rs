//! SIGINT/SIGTERM handling without a libc crate: a raw `signal(2)` binding
//! (std already links libc) whose handler does only async-signal-safe work —
//! two atomic stores plus re-arming the default disposition.
//!
//! The contract, shared by the daemon and the batch CLI:
//!
//! * the first signal sets the process-wide shutdown flag and trips the
//!   currently registered [`RunCtl`] (if any) with
//!   [`CancelReason::Interrupted`](dbscan_core::CancelReason::Interrupted),
//!   which is a *hard* cancel — it stops runs already softened by a
//!   degrade/partial deadline policy;
//! * the handler then restores `SIG_DFL`, so a second signal kills the
//!   process outright (the standard escape hatch from a wedged drain).
//!
//! [`Budget::interrupt`](dbscan_core::Budget::interrupt) is designed for this
//! call site: it reads no clock and takes no lock.

use dbscan_core::RunCtl;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

pub const SIGINT: i32 = 2;
pub const SIGTERM: i32 = 15;
const SIG_DFL: usize = 0;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Leaked strong reference to the run the handler should interrupt; null when
/// no run is registered. Swapped, never mutated in place, and swapped-out
/// pointers are never reclaimed (see [`retire`]), so the handler only ever
/// sees null or a permanently live `RunCtl`.
static CTL: AtomicPtr<RunCtl> = AtomicPtr::new(std::ptr::null_mut());

extern "C" fn on_signal(signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
    let ctl = CTL.load(Ordering::SeqCst);
    if !ctl.is_null() {
        // Safety: the pointer came from `Arc::into_raw` and its strong count
        // is never released — retired pointers are leaked, not dropped (see
        // `retire`) — so it stays valid even if another thread swaps CTL
        // between this load and the dereference.
        unsafe { (*ctl).interrupt() };
    }
    unsafe {
        signal(signum, SIG_DFL);
    }
}

/// Installs the graceful handler for SIGINT and SIGTERM. Idempotent.
pub fn install() {
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Whether a SIGINT/SIGTERM has been received since [`install`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test hook: pretend a signal arrived (the real handler is hard to exercise
/// portably in-process without racing the default disposition).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers `ctl` as the run the next signal should interrupt, replacing
/// (and permanently leaking) any previous registration.
pub fn register_ctl(ctl: &Arc<RunCtl>) {
    let raw = Arc::into_raw(Arc::clone(ctl)).cast_mut();
    retire(CTL.swap(raw, Ordering::SeqCst));
}

/// Clears the registration (the owning run finished).
pub fn clear_ctl() {
    retire(CTL.swap(std::ptr::null_mut(), Ordering::SeqCst));
}

/// Deliberately leaks a pointer swapped out of CTL. Reclaiming it here would
/// race the handler: `on_signal` may have loaded the old pointer an instant
/// before the swap, and dropping the last `Arc` would turn its
/// `(*ctl).interrupt()` into a use-after-free. Leaking keeps the strong count
/// alive for the process lifetime, making the handler's dereference
/// unconditionally safe. The leak is bounded and tiny: one retirement per
/// register/clear pair, and the CLI registers once per batch run.
fn retire(old: *mut RunCtl) {
    let _ = old;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_core::{DbscanError, DeadlineConfig, StageId};

    #[test]
    fn registered_ctl_is_interrupted_by_the_handler_body() {
        let ctl = Arc::new(RunCtl::cancellable(&DeadlineConfig::default()));
        register_ctl(&ctl);
        // Drive the handler's non-signal work directly (installing a real
        // handler and raising here would restore SIG_DFL process-wide).
        let raw = CTL.load(Ordering::SeqCst);
        assert!(!raw.is_null());
        unsafe { (*raw).interrupt() };
        assert!(ctl.should_stop());
        assert!(matches!(
            ctl.deadline_error(StageId::EdgeTests),
            DbscanError::Cancelled { .. }
        ));
        clear_ctl();
        assert!(CTL.load(Ordering::SeqCst).is_null());
        // The original Arc is still alive and usable after clearing.
        assert!(ctl.aborted());
    }
}
