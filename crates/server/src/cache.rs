//! Bounded LRU cache of built [`CoreCells`](dbscan_core::CoreCells)
//! structures, keyed by `(dataset hash, n, dim, eps, min_pts)`.
//!
//! The grid + core-label structure is the expensive, parameter-dependent part
//! of every request; repeat queries over the same dataset and `(ε, MinPts)` —
//! including an exact query re-asked at some ρ, or a ρ sweep — skip the
//! rebuild entirely. Entries are type-erased (`Arc<dyn Any>`) because the
//! dimensionality is a const generic; the monomorphized job runner downcasts.
//! Memory is bounded by evicting least-recently-used entries until the new
//! entry fits; a single entry larger than the whole budget is simply not
//! cached (a hot tenant cannot blow the budget).
//!
//! The `data_hash` key component is a *non-cryptographic* FNV-1a, so an
//! adversarial tenant could engineer a colliding key and try to have its
//! structure served for another tenant's dataset. Every entry therefore
//! retains the full flattened coordinates it was built from, and a hit
//! requires the stored data to match the request's data exactly — a key
//! collision with different data is counted in `collisions` and treated as a
//! miss (and an insert under a colliding key replaces the stale entry), never
//! served cross-tenant.

use std::any::Any;
use std::sync::Arc;

/// Cache key. `eps` is keyed by bit pattern: params are compared exactly, not
/// by epsilon-tolerance — a different `eps` is a different structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheKey {
    pub data_hash: u64,
    pub n: usize,
    pub dim: usize,
    pub eps_bits: u64,
    pub min_pts: usize,
}

struct Entry {
    key: CacheKey,
    /// The exact flattened coordinates the structure was built from; compared
    /// on every hit so a hash collision can never serve cross-tenant data.
    points: Arc<Vec<f64>>,
    cells: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    last_used: u64,
}

/// Snapshot of the cache counters for the stats envelope.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Key matches whose stored data differed from the request's (engineered
    /// or accidental hash collisions); served as misses, never cross-tenant.
    pub collisions: u64,
    pub entries: usize,
    pub bytes: u64,
    pub budget_bytes: u64,
}

pub struct CellsCache {
    budget: u64,
    bytes: u64,
    clock: u64,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

impl CellsCache {
    pub fn new(budget_bytes: u64) -> Self {
        CellsCache {
            budget: budget_bytes,
            bytes: 0,
            clock: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a verified hit. A hit
    /// requires both the key *and* the stored coordinates to match `points`
    /// exactly; a colliding key with different data is a miss. The linear
    /// scan is deliberate: entry counts are small (each entry is a whole
    /// built index).
    pub fn get(
        &mut self,
        key: &CacheKey,
        points: &[f64],
    ) -> Option<Arc<dyn Any + Send + Sync>> {
        self.clock += 1;
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(e) if e.points.as_slice() == points => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&e.cells))
            }
            Some(_) => {
                self.collisions += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a built structure (`cells_bytes` is its footprint; the
    /// retained verification copy of `points` is charged on top), evicting
    /// LRU entries until it fits. Re-inserting a key that already holds the
    /// same data is a no-op (two racing builders: first insert wins, both
    /// results are identical); a colliding key holding *different* data is
    /// replaced, so an engineered collision cannot pin the slot.
    pub fn insert(
        &mut self,
        key: CacheKey,
        points: Arc<Vec<f64>>,
        cells: Arc<dyn Any + Send + Sync>,
        cells_bytes: u64,
    ) {
        let bytes = cells_bytes + (points.len() * std::mem::size_of::<f64>()) as u64;
        if bytes > self.budget {
            return;
        }
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            if self.entries[i].points == points {
                return;
            }
            let stale = self.entries.swap_remove(i);
            self.bytes -= stale.bytes;
            self.evictions += 1;
        }
        while self.bytes + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("bytes > 0 implies entries is non-empty");
            let evicted = self.entries.swap_remove(lru);
            self.bytes -= evicted.bytes;
            self.evictions += 1;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.push(Entry {
            key,
            points,
            cells,
            bytes,
            last_used: self.clock,
        });
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            collisions: self.collisions,
            entries: self.entries.len(),
            bytes: self.bytes,
            budget_bytes: self.budget,
        }
    }
}

/// FNV-1a over the raw coordinate bits — the dataset component of the cache
/// key, and also the label fingerprint hash in result envelopes (same
/// function as the bench harness's label fingerprints).
pub fn fnv1a_u64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            data_hash: tag,
            n: 10,
            dim: 2,
            eps_bits: 1.0f64.to_bits(),
            min_pts: 4,
        }
    }

    fn entry() -> Arc<dyn Any + Send + Sync> {
        Arc::new(42u32)
    }

    fn pts(tag: u64) -> Arc<Vec<f64>> {
        Arc::new(vec![tag as f64])
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let mut c = CellsCache::new(100);
        // Each entry charges 32 for the cells + 8 for its one retained f64.
        c.insert(key(1), pts(1), entry(), 32);
        c.insert(key(2), pts(2), entry(), 32);
        assert!(c.get(&key(1), &[1.0]).is_some()); // refresh 1: now 2 is LRU
        c.insert(key(3), pts(3), entry(), 32); // evicts 2
        assert!(c.get(&key(1), &[1.0]).is_some());
        assert!(c.get(&key(2), &[2.0]).is_none());
        assert!(c.get(&key(3), &[3.0]).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 80);
        assert!(s.bytes <= s.budget_bytes);
    }

    #[test]
    fn oversized_entries_are_never_cached() {
        let mut c = CellsCache::new(100);
        c.insert(key(1), pts(1), entry(), 101);
        assert_eq!(c.stats().entries, 0);
        assert!(c.get(&key(1), &[1.0]).is_none());
    }

    #[test]
    fn downcast_roundtrip() {
        let mut c = CellsCache::new(100);
        c.insert(key(1), pts(1), Arc::new(7u32) as Arc<dyn Any + Send + Sync>, 4);
        let got = c.get(&key(1), &[1.0]).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 7);
    }

    #[test]
    fn colliding_key_with_different_data_is_never_served() {
        let mut c = CellsCache::new(100);
        // Tenant A's structure, stored under key(1) with A's data.
        c.insert(key(1), pts(1), Arc::new(7u32) as Arc<dyn Any + Send + Sync>, 4);
        // Tenant B's request hashes to the same key but carries other data:
        // a verified miss, not A's structure.
        assert!(c.get(&key(1), &[2.0]).is_none());
        assert_eq!(c.stats().collisions, 1);
        // B's insert under the colliding key replaces A's stale entry ...
        c.insert(key(1), pts(2), Arc::new(9u32) as Arc<dyn Any + Send + Sync>, 4);
        assert_eq!(c.stats().entries, 1);
        let got = c.get(&key(1), &[2.0]).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 9);
        // ... while a same-data re-insert stays first-wins.
        c.insert(key(1), pts(2), Arc::new(11u32) as Arc<dyn Any + Send + Sync>, 4);
        let again = c.get(&key(1), &[2.0]).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*again, 9);
    }
}
