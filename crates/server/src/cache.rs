//! Bounded LRU cache of built [`CoreCells`](dbscan_core::CoreCells)
//! structures, keyed by `(dataset hash, n, dim, eps, min_pts)`.
//!
//! The grid + core-label structure is the expensive, parameter-dependent part
//! of every request; repeat queries over the same dataset and `(ε, MinPts)` —
//! including an exact query re-asked at some ρ, or a ρ sweep — skip the
//! rebuild entirely. Entries are type-erased (`Arc<dyn Any>`) because the
//! dimensionality is a const generic; the monomorphized job runner downcasts.
//! Memory is bounded by evicting least-recently-used entries until the new
//! entry fits; a single entry larger than the whole budget is simply not
//! cached (a hot tenant cannot blow the budget).

use std::any::Any;
use std::sync::Arc;

/// Cache key. `eps` is keyed by bit pattern: params are compared exactly, not
/// by epsilon-tolerance — a different `eps` is a different structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheKey {
    pub data_hash: u64,
    pub n: usize,
    pub dim: usize,
    pub eps_bits: u64,
    pub min_pts: usize,
}

struct Entry {
    key: CacheKey,
    cells: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    last_used: u64,
}

/// Snapshot of the cache counters for the stats envelope.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub bytes: u64,
    pub budget_bytes: u64,
}

pub struct CellsCache {
    budget: u64,
    bytes: u64,
    clock: u64,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CellsCache {
    pub fn new(budget_bytes: u64) -> Self {
        CellsCache {
            budget: budget_bytes,
            bytes: 0,
            clock: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. The linear scan is
    /// deliberate: entry counts are small (each entry is a whole built index).
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<dyn Any + Send + Sync>> {
        self.clock += 1;
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&e.cells))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a built structure, evicting LRU entries until it fits. No-op
    /// when `bytes` alone exceeds the budget or the key is already present
    /// (two racing builders: first insert wins, both results are identical).
    pub fn insert(&mut self, key: CacheKey, cells: Arc<dyn Any + Send + Sync>, bytes: u64) {
        if bytes > self.budget || self.entries.iter().any(|e| e.key == key) {
            return;
        }
        while self.bytes + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("bytes > 0 implies entries is non-empty");
            let evicted = self.entries.swap_remove(lru);
            self.bytes -= evicted.bytes;
            self.evictions += 1;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.push(Entry {
            key,
            cells,
            bytes,
            last_used: self.clock,
        });
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
            budget_bytes: self.budget,
        }
    }
}

/// FNV-1a over the raw coordinate bits — the dataset component of the cache
/// key, and also the label fingerprint hash in result envelopes (same
/// function as the bench harness's label fingerprints).
pub fn fnv1a_u64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            data_hash: tag,
            n: 10,
            dim: 2,
            eps_bits: 1.0f64.to_bits(),
            min_pts: 4,
        }
    }

    fn entry() -> Arc<dyn Any + Send + Sync> {
        Arc::new(42u32)
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let mut c = CellsCache::new(100);
        c.insert(key(1), entry(), 40);
        c.insert(key(2), entry(), 40);
        assert!(c.get(&key(1)).is_some()); // refresh 1: now 2 is LRU
        c.insert(key(3), entry(), 40); // evicts 2
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(3)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 80);
        assert!(s.bytes <= s.budget_bytes);
    }

    #[test]
    fn oversized_entries_are_never_cached() {
        let mut c = CellsCache::new(100);
        c.insert(key(1), entry(), 101);
        assert_eq!(c.stats().entries, 0);
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn downcast_roundtrip() {
        let mut c = CellsCache::new(100);
        c.insert(key(1), Arc::new(7u32) as Arc<dyn Any + Send + Sync>, 4);
        let got = c.get(&key(1)).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 7);
    }
}
