//! Crash-durable write-ahead job journal.
//!
//! With `dbscan serve --journal DIR` every admitted `submit` is appended to
//! `DIR/journal.log` before the acknowledgement goes out, and every terminal
//! transition (`done` / `failed` / `cancelled`) appends a tombstone before
//! the terminal state becomes visible to clients. On startup the daemon
//! replays the log: non-terminal jobs are re-enqueued (`recovered:true`),
//! a torn or corrupt tail is truncated — never fatal — and a size-triggered
//! compaction rewrites the log keeping only non-terminal jobs.
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! [u32 body_len][u64 fnv1a(body)][body]
//! ```
//!
//! The body's first byte is the record type: `b'S'` (submit), `b'T'`
//! (tombstone), or `b'M'` (id high-water marker, written by compaction so
//! job ids stay monotonic across restarts even after terminal history is
//! dropped). A submit body is the type byte, one JSON metadata line
//! (id, tag, params, algorithm, policies, and an FNV-1a fingerprint of the
//! point payload), a `\n`, then the raw point coordinates as `f64` bit
//! patterns — the dominant payload stays binary instead of ballooning 3-4×
//! through decimal JSON. A tombstone body is the type byte plus
//! `{"id":N,"state":"done"}`. See EXPERIMENTS.md ("Journal record format")
//! for the full field list and the durability contract.
//!
//! Deliberately *not* journaled: fault-injection specs and `boom` (test-only
//! knobs — replaying an injected panic after a crash would be chaos squared)
//! and inline trace requests are kept, since they only affect the response.

use crate::json::{obj, parse, Value};
use crate::server::{Algorithm, JobSpec, TraceFmt};
use dbscan_core::{parse_duration, DbscanParams, DeadlineConfig, DeadlinePolicy, RecoveryPolicy};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The journal file inside `--journal DIR`.
pub const JOURNAL_FILE: &str = "journal.log";

/// Scratch file used by compaction before the atomic rename.
pub const JOURNAL_TMP: &str = "journal.tmp";

/// Frame header: u32 length + u64 checksum.
const HEADER_BYTES: usize = 12;

/// A frame length above this is treated as a torn/corrupt header during
/// replay (the admission path caps request frames far below it).
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// FNV-1a over raw bytes (the cache's `fnv1a_u64` folds whole `u64`s; the
/// journal checksums byte streams).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When appended records hit the disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JournalSync {
    /// `fsync` after every append, before the submit ack goes out: an acked
    /// job survives `kill -9` of both the daemon and the OS page cache.
    Always,
    /// Batch appends and `fsync` at most once per interval: bounded data
    /// loss (jobs acked in the last interval may vanish), much cheaper.
    Interval(Duration),
}

impl JournalSync {
    /// Parses the `--journal-sync` flag: `always`, `interval`, or
    /// `interval=DURATION` (default interval 100ms).
    pub fn parse_flag(s: &str) -> Result<JournalSync, String> {
        match s {
            "always" => Ok(JournalSync::Always),
            "interval" => Ok(JournalSync::Interval(Duration::from_millis(100))),
            other => match other.strip_prefix("interval=") {
                Some(d) => Ok(JournalSync::Interval(
                    parse_duration(d).map_err(|e| format!("--journal-sync: {e}"))?,
                )),
                None => Err(format!(
                    "--journal-sync must be \"always\", \"interval\", or \"interval=DUR\", got {s:?}"
                )),
            },
        }
    }

    pub fn name(&self) -> String {
        match self {
            JournalSync::Always => "always".to_string(),
            JournalSync::Interval(d) => format!("interval={}ms", d.as_millis()),
        }
    }
}

/// Journal configuration; maps to the `--journal*` serve flags.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding `journal.log` (created if absent).
    pub dir: PathBuf,
    pub sync: JournalSync,
    /// Once the log grows past this, the next tombstone triggers a
    /// compaction that rewrites it keeping only non-terminal jobs.
    pub compact_bytes: u64,
}

impl JournalConfig {
    pub fn new(dir: PathBuf) -> JournalConfig {
        JournalConfig {
            dir,
            sync: JournalSync::Always,
            compact_bytes: 8 << 20,
        }
    }
}

/// Why and where replay stopped accepting records.
pub struct Truncation {
    /// Bytes of valid prefix kept.
    pub valid_bytes: u64,
    /// Bytes dropped from the tail.
    pub dropped_bytes: u64,
    pub reason: String,
}

/// What replay found: the non-terminal jobs to re-enqueue (sorted by id),
/// the highest id ever journaled (the id counter resumes above it, keeping
/// ids stable across restarts), and the tail truncation, if any.
pub(crate) struct Replay {
    pub recovered: Vec<(u64, JobSpec)>,
    pub max_id: u64,
    pub truncation: Option<Truncation>,
}

/// The open journal: an append handle plus the in-memory set of live
/// (non-terminal) record bodies that compaction rewrites from.
pub struct Journal {
    cfg: JournalConfig,
    path: PathBuf,
    file: File,
    len: u64,
    /// Encoded submit bodies of jobs with no tombstone yet. Bounded by the
    /// admission queue bound plus in-flight jobs, not by journal size.
    live: HashMap<u64, Vec<u8>>,
    /// Highest job id ever journaled; compaction persists it as a marker
    /// record so restarts never reuse an id whose history was compacted away.
    max_seen: u64,
    dirty: bool,
    last_sync: Instant,
    compactions: u64,
}

impl Journal {
    /// Opens (creating if needed) and replays the journal. A torn or corrupt
    /// tail is truncated on disk and reported in the [`Replay`] — corruption
    /// is never fatal; the valid prefix is always recovered.
    pub(crate) fn open(cfg: &JournalConfig) -> std::io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(&cfg.dir)?;
        // A crash between compaction's tmp write and its rename leaves a
        // stale tmp behind; the real log is still authoritative.
        let _ = std::fs::remove_file(cfg.dir.join(JOURNAL_TMP));
        let path = cfg.dir.join(JOURNAL_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let mut live: HashMap<u64, (Vec<u8>, JobSpec)> = HashMap::new();
        let mut max_id = 0u64;
        let mut off = 0usize;
        let mut truncation = None;
        while off < bytes.len() {
            let fail = |reason: &str| Truncation {
                valid_bytes: off as u64,
                dropped_bytes: (bytes.len() - off) as u64,
                reason: reason.to_string(),
            };
            if bytes.len() - off < HEADER_BYTES {
                truncation = Some(fail("torn header"));
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if len == 0 || len > MAX_RECORD_BYTES {
                truncation = Some(fail("implausible record length"));
                break;
            }
            let body_end = off + HEADER_BYTES + len as usize;
            if body_end > bytes.len() {
                truncation = Some(fail("torn record body"));
                break;
            }
            let sum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
            let body = &bytes[off + HEADER_BYTES..body_end];
            if fnv1a_bytes(body) != sum {
                truncation = Some(fail("checksum mismatch"));
                break;
            }
            match body[0] {
                b'S' => match decode_submit_body(body) {
                    Ok((id, spec)) => {
                        max_id = max_id.max(id);
                        live.insert(id, (body.to_vec(), spec));
                    }
                    Err(reason) => {
                        truncation = Some(fail(&format!("undecodable submit: {reason}")));
                        break;
                    }
                },
                b'T' => match decode_tombstone_body(body) {
                    Ok(id) => {
                        max_id = max_id.max(id);
                        live.remove(&id);
                    }
                    Err(reason) => {
                        truncation = Some(fail(&format!("undecodable tombstone: {reason}")));
                        break;
                    }
                },
                b'M' => match decode_marker_body(body) {
                    Ok(id) => max_id = max_id.max(id),
                    Err(reason) => {
                        truncation = Some(fail(&format!("undecodable marker: {reason}")));
                        break;
                    }
                },
                other => {
                    truncation = Some(fail(&format!("unknown record type {other:#04x}")));
                    break;
                }
            }
            off = body_end;
        }

        let valid = off as u64;
        if truncation.is_some() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid)?;
            f.sync_data()?;
        }

        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut recovered: Vec<(u64, JobSpec)> =
            live.iter().map(|(&id, (_, spec))| (id, spec.clone())).collect();
        recovered.sort_by_key(|(id, _)| *id);
        let journal = Journal {
            cfg: cfg.clone(),
            path,
            file,
            len: valid,
            live: live.into_iter().map(|(id, (body, _))| (id, body)).collect(),
            max_seen: max_id,
            dirty: false,
            last_sync: Instant::now(),
            compactions: 0,
        };
        Ok((
            journal,
            Replay {
                recovered,
                max_id,
                truncation,
            },
        ))
    }

    fn append_body(&mut self, body: &[u8]) -> std::io::Result<()> {
        let frame = frame_body(body);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        match self.cfg.sync {
            JournalSync::Always => self.file.sync_data(),
            JournalSync::Interval(_) => {
                self.dirty = true;
                Ok(())
            }
        }
    }

    /// Journals an admitted submission. The caller must not ack the client
    /// until this returns: with `sync=always` the record is on disk.
    pub(crate) fn record_submit(&mut self, id: u64, spec: &JobSpec) -> std::io::Result<()> {
        let body = encode_submit_body(id, spec);
        self.append_body(&body)?;
        self.live.insert(id, body);
        self.max_seen = self.max_seen.max(id);
        Ok(())
    }

    /// Journals a terminal transition. Called *before* the terminal state
    /// becomes visible to clients, so an observed (or consumed) result
    /// implies a durable tombstone — after a crash the job is never run
    /// again. May trigger compaction once the log passes `compact_bytes`.
    pub(crate) fn record_terminal(&mut self, id: u64, state: &str) -> std::io::Result<()> {
        if self.live.remove(&id).is_none() {
            // Not journaled (pre-journal job or duplicate finish): nothing
            // to tombstone.
            return Ok(());
        }
        self.append_body(&encode_tombstone_body(id, state))?;
        if self.len > self.cfg.compact_bytes {
            self.compact()?;
        }
        Ok(())
    }

    /// Interval-mode flush, driven by the orchestrator's idle loop.
    pub(crate) fn sync_if_due(&mut self) -> std::io::Result<()> {
        if let JournalSync::Interval(iv) = self.cfg.sync {
            if self.dirty && self.last_sync.elapsed() >= iv {
                self.file.sync_data()?;
                self.dirty = false;
                self.last_sync = Instant::now();
            }
        }
        Ok(())
    }

    /// Rewrites the log keeping only live (non-terminal) jobs: write a tmp
    /// file, fsync it, atomically rename over the log, fsync the directory.
    fn compact(&mut self) -> std::io::Result<()> {
        let tmp = self.cfg.dir.join(JOURNAL_TMP);
        {
            let mut f = File::create(&tmp)?;
            if self.max_seen > 0 {
                f.write_all(&frame_body(&encode_marker_body(self.max_seen)))?;
            }
            let mut ids: Vec<u64> = self.live.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                f.write_all(&frame_body(&self.live[&id]))?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Ok(d) = File::open(&self.cfg.dir) {
            let _ = d.sync_all();
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.len = self.file.metadata()?.len();
        self.dirty = false;
        self.compactions += 1;
        Ok(())
    }

    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    pub fn live_jobs(&self) -> usize {
        self.live.len()
    }

    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

/// Frames a record body with its length and checksum header.
pub fn frame_body(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Builds a complete framed submit record for an exact, sequential job with
/// default policies — the shape `record_submit` writes for the simplest
/// `submit`. Public so tests and tooling can fabricate journals to corrupt.
pub fn submit_record(
    id: u64,
    tag: Option<&str>,
    eps: f64,
    min_pts: usize,
    dim: usize,
    points: &[f64],
) -> Vec<u8> {
    let spec = JobSpec {
        points: Arc::new(points.to_vec()),
        dim,
        params: DbscanParams::new(eps, min_pts).expect("valid journal fixture params"),
        algorithm: Algorithm::Exact,
        parallel: false,
        recovery: RecoveryPolicy::Fail,
        deadline: DeadlineConfig::default(),
        faults: None,
        pause_ms: 0,
        boom: false,
        return_labels: true,
        tag: tag.map(str::to_string),
        trace: None,
        recovered: false,
    };
    frame_body(&encode_submit_body(id, &spec))
}

/// Builds a complete framed tombstone record.
pub fn tombstone_record(id: u64, state: &str) -> Vec<u8> {
    frame_body(&encode_tombstone_body(id, state))
}

pub(crate) fn encode_submit_body(id: u64, spec: &JobSpec) -> Vec<u8> {
    let mut point_bytes = Vec::with_capacity(spec.points.len() * 8);
    for v in spec.points.iter() {
        point_bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let (algorithm, rho) = match spec.algorithm {
        Algorithm::Exact => ("exact", Value::Null),
        Algorithm::Approx { rho } => ("approx", Value::Num(rho)),
    };
    let meta = obj(vec![
        ("id", Value::Num(id as f64)),
        (
            "tag",
            match &spec.tag {
                Some(t) => Value::Str(t.clone()),
                None => Value::Null,
            },
        ),
        ("eps", Value::Num(spec.params.eps())),
        ("min_pts", Value::Num(spec.params.min_pts() as f64)),
        ("algorithm", Value::Str(algorithm.to_string())),
        ("rho", rho),
        ("dim", Value::Num(spec.dim as f64)),
        ("vals", Value::Num(spec.points.len() as f64)),
        ("parallel", Value::Bool(spec.parallel)),
        (
            "recovery",
            Value::Str(
                match spec.recovery {
                    RecoveryPolicy::Fail => "fail",
                    RecoveryPolicy::FallbackSequential => "fallback-sequential",
                }
                .to_string(),
            ),
        ),
        (
            "deadline_us",
            match spec.deadline.budget {
                Some(d) => Value::Num(d.as_micros() as f64),
                None => Value::Null,
            },
        ),
        (
            "deadline_policy",
            Value::Str(spec.deadline.policy.name().to_string()),
        ),
        ("degrade_rho", Value::Num(spec.deadline.degrade_rho)),
        (
            "stall_us",
            match spec.deadline.stall_timeout {
                Some(d) => Value::Num(d.as_micros() as f64),
                None => Value::Null,
            },
        ),
        ("pause_ms", Value::Num(spec.pause_ms as f64)),
        ("labels", Value::Bool(spec.return_labels)),
        (
            "trace",
            match spec.trace {
                Some(fmt) => Value::Str(fmt.name().to_string()),
                None => Value::Null,
            },
        ),
        (
            "points_fnv",
            Value::Str(format!("{:016x}", fnv1a_bytes(&point_bytes))),
        ),
    ]);
    let mut body = Vec::with_capacity(64 + point_bytes.len());
    body.push(b'S');
    body.extend_from_slice(meta.to_line().as_bytes());
    body.push(b'\n');
    body.extend_from_slice(&point_bytes);
    body
}

fn encode_tombstone_body(id: u64, state: &str) -> Vec<u8> {
    let meta = obj(vec![
        ("id", Value::Num(id as f64)),
        ("state", Value::Str(state.to_string())),
    ]);
    let mut body = vec![b'T'];
    body.extend_from_slice(meta.to_line().as_bytes());
    body
}

fn decode_submit_body(body: &[u8]) -> Result<(u64, JobSpec), String> {
    let payload = &body[1..];
    let nl = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing metadata line terminator")?;
    let meta_text =
        std::str::from_utf8(&payload[..nl]).map_err(|_| "metadata is not UTF-8".to_string())?;
    let meta = parse(meta_text).map_err(|e| format!("metadata: {e}"))?;
    let point_bytes = &payload[nl + 1..];

    let id = meta
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("missing id")?;
    let vals = meta
        .get("vals")
        .and_then(Value::as_u64)
        .ok_or("missing vals")? as usize;
    if point_bytes.len() != vals * 8 {
        return Err(format!(
            "point payload is {} bytes, expected {}",
            point_bytes.len(),
            vals * 8
        ));
    }
    let points: Vec<f64> = point_bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    if let Some(expect) = meta.get("points_fnv").and_then(Value::as_str) {
        let actual = format!("{:016x}", fnv1a_bytes(point_bytes));
        if actual != expect {
            return Err("point payload fingerprint mismatch".to_string());
        }
    }
    let dim = meta
        .get("dim")
        .and_then(Value::as_u64)
        .ok_or("missing dim")? as usize;
    if !(1..=8).contains(&dim) || !vals.is_multiple_of(dim) {
        return Err(format!("bad dim {dim} for {vals} values"));
    }
    let eps = meta
        .get("eps")
        .and_then(Value::as_f64)
        .ok_or("missing eps")?;
    let min_pts = meta
        .get("min_pts")
        .and_then(Value::as_u64)
        .ok_or("missing min_pts")? as usize;
    let params = DbscanParams::new(eps, min_pts).map_err(|e| e.to_string())?;
    let algorithm = match meta.get("algorithm").and_then(Value::as_str) {
        Some("exact") => Algorithm::Exact,
        Some("approx") => Algorithm::Approx {
            rho: meta
                .get("rho")
                .and_then(Value::as_f64)
                .ok_or("approx record missing rho")?,
        },
        other => return Err(format!("bad algorithm {other:?}")),
    };
    let recovery = match meta.get("recovery").and_then(Value::as_str) {
        Some("fail") | None => RecoveryPolicy::Fail,
        Some("fallback-sequential") => RecoveryPolicy::FallbackSequential,
        Some(other) => return Err(format!("bad recovery {other:?}")),
    };
    let mut deadline = DeadlineConfig {
        budget: meta
            .get("deadline_us")
            .and_then(Value::as_u64)
            .map(Duration::from_micros),
        stall_timeout: meta
            .get("stall_us")
            .and_then(Value::as_u64)
            .map(Duration::from_micros),
        ..DeadlineConfig::default()
    };
    if let Some(p) = meta.get("deadline_policy").and_then(Value::as_str) {
        deadline.policy = p
            .parse::<DeadlinePolicy>()
            .map_err(|e| format!("deadline_policy: {e}"))?;
    }
    if let Some(r) = meta.get("degrade_rho").and_then(Value::as_f64) {
        deadline.degrade_rho = r;
    }
    let trace = match meta.get("trace").and_then(Value::as_str) {
        Some("chrome") => Some(TraceFmt::Chrome),
        Some("folded") => Some(TraceFmt::Folded),
        _ => None,
    };
    Ok((
        id,
        JobSpec {
            points: Arc::new(points),
            dim,
            params,
            algorithm,
            parallel: meta
                .get("parallel")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            recovery,
            deadline,
            faults: None,
            pause_ms: meta.get("pause_ms").and_then(Value::as_u64).unwrap_or(0),
            boom: false,
            return_labels: meta.get("labels").and_then(Value::as_bool).unwrap_or(true),
            tag: meta.get("tag").and_then(Value::as_str).map(str::to_string),
            trace,
            recovered: false,
        },
    ))
}

fn encode_marker_body(max_id: u64) -> Vec<u8> {
    let meta = obj(vec![("max_id", Value::Num(max_id as f64))]);
    let mut body = vec![b'M'];
    body.extend_from_slice(meta.to_line().as_bytes());
    body
}

fn decode_marker_body(body: &[u8]) -> Result<u64, String> {
    let meta_text =
        std::str::from_utf8(&body[1..]).map_err(|_| "marker is not UTF-8".to_string())?;
    let meta = parse(meta_text).map_err(|e| format!("marker: {e}"))?;
    meta.get("max_id")
        .and_then(Value::as_u64)
        .ok_or_else(|| "marker missing max_id".to_string())
}

fn decode_tombstone_body(body: &[u8]) -> Result<u64, String> {
    let meta_text =
        std::str::from_utf8(&body[1..]).map_err(|_| "tombstone is not UTF-8".to_string())?;
    let meta = parse(meta_text).map_err(|e| format!("tombstone: {e}"))?;
    meta.get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| "tombstone missing id".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbscan-journal-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec_fixture(rho: Option<f64>) -> JobSpec {
        JobSpec {
            points: Arc::new(vec![0.0, 1.5, -2.25, 1e9, f64::MIN_POSITIVE, 42.0]),
            dim: 2,
            params: DbscanParams::new(1.5, 4).unwrap(),
            algorithm: match rho {
                Some(rho) => Algorithm::Approx { rho },
                None => Algorithm::Exact,
            },
            parallel: true,
            recovery: RecoveryPolicy::FallbackSequential,
            deadline: DeadlineConfig {
                budget: Some(Duration::from_millis(250)),
                degrade_rho: 5e-3,
                ..DeadlineConfig::default()
            },
            faults: None,
            pause_ms: 7,
            boom: false,
            return_labels: false,
            tag: Some("tenant-a".to_string()),
            trace: Some(TraceFmt::Folded),
            recovered: false,
        }
    }

    #[test]
    fn submit_record_roundtrips_bit_exactly() {
        for spec in [spec_fixture(None), spec_fixture(Some(1e-3))] {
            let body = encode_submit_body(99, &spec);
            let (id, back) = decode_submit_body(&body).expect("decode");
            assert_eq!(id, 99);
            assert_eq!(back.points, spec.points, "f64 bit patterns must survive");
            assert_eq!(back.dim, spec.dim);
            assert_eq!(back.params.eps(), spec.params.eps());
            assert_eq!(back.params.min_pts(), spec.params.min_pts());
            assert_eq!(back.algorithm, spec.algorithm);
            assert_eq!(back.parallel, spec.parallel);
            assert_eq!(back.recovery, spec.recovery);
            assert_eq!(back.deadline.budget, spec.deadline.budget);
            assert_eq!(back.deadline.policy, spec.deadline.policy);
            assert_eq!(back.deadline.degrade_rho, spec.deadline.degrade_rho);
            assert_eq!(back.pause_ms, spec.pause_ms);
            assert_eq!(back.return_labels, spec.return_labels);
            assert_eq!(back.tag, spec.tag);
            assert_eq!(back.trace, spec.trace);
            assert!(!back.recovered, "recovered is set at re-enqueue, not decode");
        }
    }

    #[test]
    fn replay_keeps_live_jobs_and_drops_tombstoned_ones() {
        let dir = tmp_dir("replay");
        let cfg = JournalConfig::new(dir.clone());
        {
            let (mut j, replay) = Journal::open(&cfg).unwrap();
            assert!(replay.recovered.is_empty());
            j.record_submit(1, &spec_fixture(None)).unwrap();
            j.record_submit(2, &spec_fixture(Some(1e-3))).unwrap();
            j.record_submit(3, &spec_fixture(None)).unwrap();
            j.record_terminal(2, "done").unwrap();
        }
        let (j, replay) = Journal::open(&cfg).unwrap();
        assert!(replay.truncation.is_none());
        assert_eq!(replay.max_id, 3);
        let ids: Vec<u64> = replay.recovered.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(j.live_jobs(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let cfg = JournalConfig::new(dir.clone());
        {
            let (mut j, _) = Journal::open(&cfg).unwrap();
            j.record_submit(1, &spec_fixture(None)).unwrap();
            j.record_submit(2, &spec_fixture(None)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Cut the second record short mid-body.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, replay) = Journal::open(&cfg).unwrap();
        let t = replay.truncation.expect("tail must be reported");
        assert_eq!(t.reason, "torn record body");
        assert_eq!(replay.recovered.len(), 1);
        assert_eq!(replay.recovered[0].0, 1);
        // The file was physically truncated to the valid prefix.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            t.valid_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_fails_checksum_and_truncates_from_there() {
        let dir = tmp_dir("flip");
        let cfg = JournalConfig::new(dir.clone());
        {
            let (mut j, _) = Journal::open(&cfg).unwrap();
            j.record_submit(1, &spec_fixture(None)).unwrap();
            j.record_submit(2, &spec_fixture(None)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = HEADER_BYTES + u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        bytes[first_len + HEADER_BYTES + 20] ^= 0xff; // inside record 2's body
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&cfg).unwrap();
        assert_eq!(replay.truncation.unwrap().reason, "checksum mismatch");
        assert_eq!(replay.recovered.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_dropped() {
        let dir = tmp_dir("garbage");
        let cfg = JournalConfig::new(dir.clone());
        {
            let (mut j, _) = Journal::open(&cfg).unwrap();
            j.record_submit(1, &spec_fixture(None)).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"\xde\xad\xbe\xef not a record");
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&cfg).unwrap();
        assert!(replay.truncation.is_some());
        assert_eq!(replay.recovered.len(), 1);
        // Re-opening after the repair is clean.
        let (_, replay2) = Journal::open(&cfg).unwrap();
        assert!(replay2.truncation.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_only_live_jobs_and_shrinks_the_log() {
        let dir = tmp_dir("compact");
        let mut cfg = JournalConfig::new(dir.clone());
        cfg.compact_bytes = 512; // force frequent compaction
        let (mut j, _) = Journal::open(&cfg).unwrap();
        for id in 1..=40u64 {
            j.record_submit(id, &spec_fixture(None)).unwrap();
            if id % 2 == 0 {
                j.record_terminal(id, "done").unwrap();
            }
        }
        assert!(j.compactions() > 0, "512-byte trigger must have fired");
        // Close every odd job; the log must shrink below the trigger.
        for id in (1..=40u64).step_by(2) {
            j.record_terminal(id, "cancelled").unwrap();
        }
        assert_eq!(j.live_jobs(), 0);
        assert!(
            j.len_bytes() <= 512,
            "empty live set must compact below the trigger, got {}",
            j.len_bytes()
        );
        drop(j);
        let (_, replay) = Journal::open(&cfg).unwrap();
        assert!(replay.recovered.is_empty());
        assert_eq!(
            replay.max_id, 40,
            "the compaction marker must keep ids monotonic across restarts"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_sync_marks_dirty_and_flushes_on_due() {
        let dir = tmp_dir("interval");
        let mut cfg = JournalConfig::new(dir.clone());
        cfg.sync = JournalSync::Interval(Duration::from_millis(0));
        let (mut j, _) = Journal::open(&cfg).unwrap();
        j.record_submit(1, &spec_fixture(None)).unwrap();
        assert!(j.dirty);
        j.sync_if_due().unwrap();
        assert!(!j.dirty);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_flag_parses() {
        assert_eq!(JournalSync::parse_flag("always"), Ok(JournalSync::Always));
        assert_eq!(
            JournalSync::parse_flag("interval"),
            Ok(JournalSync::Interval(Duration::from_millis(100)))
        );
        assert_eq!(
            JournalSync::parse_flag("interval=250ms"),
            Ok(JournalSync::Interval(Duration::from_millis(250)))
        );
        assert!(JournalSync::parse_flag("sometimes").is_err());
    }
}
