//! Lock-free metrics registry + Prometheus-style text exposition.
//!
//! The single source of truth for every daemon counter: the `health` verb,
//! the `metrics` verb, the `--metrics-listen` HTTP endpoint, and the final
//! shutdown envelope all project the same `AtomicU64` cells, so they can
//! never disagree. Counters and histogram buckets are plain relaxed
//! `fetch_add`s — the job hot path never takes a lock to be observable.
//! Gauges (queue depth, in-flight, cache occupancy, drain state) are
//! sampled from the live server at scrape time and passed in as a
//! [`Gauges`] snapshot.
//!
//! Latency histograms use the same fixed log2 bucketing as
//! `dbscan_core::trace::hist`: bucket `k` holds values in
//! `[2^k, 2^(k+1))` (value 0 shares bucket 0 with 1), 64 buckets cover the
//! full `u64` range, and the exposition renders them cumulatively with
//! exact inclusive `le` bounds (`2^(k+1) - 1`) plus the conventional
//! `+Inf` terminal bucket.

use crate::cache::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every monotonic counter the daemon maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MCounter {
    /// Jobs admitted past the queue bound check.
    Submitted,
    /// Jobs that reached `done`.
    Completed,
    /// Jobs that reached `failed` (typed errors and caught panics).
    Failed,
    /// Jobs cancelled (verb, drain, or cooperative deadline-cancel).
    Cancelled,
    /// Submissions shed by admission control (`overloaded`).
    ShedJobs,
    /// Jobs the pressure valve switched to ρ-approximate.
    DegradedJobs,
    /// Worker panics observed (in-pipeline poison latches and job-boundary
    /// `catch_unwind` trips).
    WorkerPanics,
    /// Parallel runs that recovered by re-running sequentially.
    SequentialFallbacks,
    /// Non-terminal jobs re-enqueued from the journal at startup.
    RecoveredJobs,
    /// Connections closed by the `--conn-timeout` idle deadline
    /// (slow-loris defense).
    EvictedConns,
    /// Frames that were not valid UTF-8 JSON, or grew past
    /// `--max-frame-bytes` without a newline.
    MalformedFrames,
    /// Connections refused at accept because `--max-conns` was reached.
    RejectedConns,
}

impl MCounter {
    pub const COUNT: usize = 12;
    pub const ALL: [MCounter; MCounter::COUNT] = [
        MCounter::Submitted,
        MCounter::Completed,
        MCounter::Failed,
        MCounter::Cancelled,
        MCounter::ShedJobs,
        MCounter::DegradedJobs,
        MCounter::WorkerPanics,
        MCounter::SequentialFallbacks,
        MCounter::RecoveredJobs,
        MCounter::EvictedConns,
        MCounter::MalformedFrames,
        MCounter::RejectedConns,
    ];

    /// Metric name without the `dbscan_server_` prefix.
    pub fn name(self) -> &'static str {
        match self {
            MCounter::Submitted => "jobs_submitted_total",
            MCounter::Completed => "jobs_completed_total",
            MCounter::Failed => "jobs_failed_total",
            MCounter::Cancelled => "jobs_cancelled_total",
            MCounter::ShedJobs => "jobs_shed_total",
            MCounter::DegradedJobs => "jobs_degraded_total",
            MCounter::WorkerPanics => "worker_panics_total",
            MCounter::SequentialFallbacks => "sequential_fallbacks_total",
            MCounter::RecoveredJobs => "recovered_jobs_total",
            MCounter::EvictedConns => "evicted_conns_total",
            MCounter::MalformedFrames => "malformed_frames_total",
            MCounter::RejectedConns => "rejected_conns_total",
        }
    }
}

/// The three request-latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MHist {
    /// Microseconds a job spent queued before an executor picked it up.
    QueueWaitUs,
    /// Microseconds of executor wall time (the clustering itself).
    ServiceUs,
    /// Submission-to-terminal-state microseconds (queue wait + service).
    EndToEndUs,
}

impl MHist {
    pub const COUNT: usize = 3;
    pub const ALL: [MHist; MHist::COUNT] =
        [MHist::QueueWaitUs, MHist::ServiceUs, MHist::EndToEndUs];

    pub fn name(self) -> &'static str {
        match self {
            MHist::QueueWaitUs => "queue_wait_us",
            MHist::ServiceUs => "service_time_us",
            MHist::EndToEndUs => "end_to_end_us",
        }
    }
}

/// Log2 bucket index of `value`: `floor(log2(value))`, with 0 sharing
/// bucket 0 with 1 (there is no separate underflow bucket; every `u64`
/// lands in one of the 64 buckets).
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `k` (the exposition's `le` label):
/// `2^(k+1) - 1`, saturating to `u64::MAX` for the top bucket.
pub fn bucket_le(k: usize) -> u64 {
    if k >= 63 {
        u64::MAX
    } else {
        (1u64 << (k + 1)) - 1
    }
}

/// One fixed-shape log2 histogram: 64 lock-free buckets plus the running
/// sum. ~0.5 KiB of atomics; recording is two relaxed `fetch_add`s.
pub struct Hist {
    buckets: [AtomicU64; 64],
    sum: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Hist {
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k].load(Ordering::Relaxed)
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Highest bucket index holding at least one observation.
    fn highest(&self) -> Option<usize> {
        (0..64).rev().find(|&k| self.bucket(k) > 0)
    }
}

/// The registry: one atomic cell per [`MCounter`], one [`Hist`] per
/// [`MHist`], and the EWMA job-time gauge the backpressure hint uses.
#[derive(Default)]
pub struct Metrics {
    counters: [AtomicU64; MCounter::COUNT],
    hists: [Hist; MHist::COUNT],
    /// EWMA of completed-job wall time in ms, for `retry_after_ms` estimates
    /// (a gauge, not a counter — updated via `fetch_update`).
    pub avg_job_ms: AtomicU64,
}

impl Metrics {
    pub fn add(&self, c: MCounter, n: u64) {
        if n > 0 {
            self.counters[c as usize].fetch_add(n, Ordering::SeqCst);
        }
    }

    pub fn bump(&self, c: MCounter) {
        self.add(c, 1);
    }

    pub fn get(&self, c: MCounter) -> u64 {
        self.counters[c as usize].load(Ordering::SeqCst)
    }

    pub fn record(&self, h: MHist, value: u64) {
        self.hists[h as usize].record(value);
    }

    pub fn hist(&self, h: MHist) -> &Hist {
        &self.hists[h as usize]
    }

    /// Folds one completed-job wall time into the EWMA gauge
    /// (compare-exchange loop: concurrent executors must not interleave the
    /// load/compute/store and lose each other's samples).
    pub fn observe_job_ms(&self, ms: u64) {
        let _ = self.avg_job_ms.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |prev| {
            Some(if prev == 0 { ms } else { (3 * prev + ms) / 4 })
        });
    }
}

/// Point-in-time gauges sampled by the caller at scrape time.
pub struct Gauges {
    pub uptime_ms: u64,
    pub queue_depth: u64,
    pub running: u64,
    pub draining: bool,
    pub workers: u64,
    pub job_threads: u64,
    pub max_queue: u64,
    pub cache: CacheStats,
}

fn counter_line(out: &mut String, name: &str, v: u64) {
    let _ = writeln!(out, "# TYPE dbscan_server_{name} counter");
    let _ = writeln!(out, "dbscan_server_{name} {v}");
}

fn gauge_line(out: &mut String, name: &str, v: u64) {
    let _ = writeln!(out, "# TYPE dbscan_server_{name} gauge");
    let _ = writeln!(out, "dbscan_server_{name} {v}");
}

/// Renders the full Prometheus text exposition (`dbscan-server-metrics/v1`):
/// every counter, the sampled gauges, and the three latency histograms in
/// cumulative-bucket form. Empty tail buckets are elided (only buckets up to
/// the highest non-empty one are printed, plus `+Inf`).
pub fn render_prometheus(m: &Metrics, g: &Gauges) -> String {
    let mut out = String::with_capacity(4096);
    for c in MCounter::ALL {
        counter_line(&mut out, c.name(), m.get(c));
    }
    counter_line(&mut out, "cache_hits_total", g.cache.hits);
    counter_line(&mut out, "cache_misses_total", g.cache.misses);
    counter_line(&mut out, "cache_evictions_total", g.cache.evictions);
    counter_line(&mut out, "cache_collisions_total", g.cache.collisions);
    gauge_line(&mut out, "uptime_ms", g.uptime_ms);
    gauge_line(&mut out, "queue_depth", g.queue_depth);
    gauge_line(&mut out, "jobs_running", g.running);
    gauge_line(&mut out, "draining", u64::from(g.draining));
    gauge_line(&mut out, "workers", g.workers);
    gauge_line(&mut out, "job_threads", g.job_threads);
    gauge_line(&mut out, "max_queue", g.max_queue);
    gauge_line(&mut out, "avg_job_ms", m.avg_job_ms.load(Ordering::SeqCst));
    gauge_line(&mut out, "cache_entries", g.cache.entries as u64);
    gauge_line(&mut out, "cache_bytes", g.cache.bytes);
    gauge_line(&mut out, "cache_budget_bytes", g.cache.budget_bytes);
    for h in MHist::ALL {
        let hist = m.hist(h);
        let name = h.name();
        let _ = writeln!(out, "# TYPE dbscan_server_{name} histogram");
        let mut cumulative = 0u64;
        if let Some(top) = hist.highest() {
            for k in 0..=top {
                cumulative += hist.bucket(k);
                let _ = writeln!(
                    out,
                    "dbscan_server_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_le(k)
                );
            }
        }
        let _ = writeln!(out, "dbscan_server_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "dbscan_server_{name}_sum {}", hist.sum());
        let _ = writeln!(out, "dbscan_server_{name}_count {cumulative}");
    }
    out
}

/// Parses a text exposition back into `(name, value)` pairs — the shared
/// helper for loadgen's poller and the integration tests. Histogram bucket
/// lines keep their `{le="..."}` selector as part of the name.
pub fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| {
            let (name, val) = l.rsplit_once(' ')?;
            Some((name.to_string(), val.trim().parse::<f64>().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_edges() {
        // Satellite requirement: 0, 1, and the u64::MAX-adjacent edges.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of((1 << 63) - 1), 62);
        assert_eq!(bucket_of(1 << 63), 63);
        assert_eq!(bucket_of(u64::MAX - 1), 63);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_le(0), 1);
        assert_eq!(bucket_le(1), 3);
        assert_eq!(bucket_le(62), (1 << 63) - 1);
        assert_eq!(bucket_le(63), u64::MAX);
    }

    #[test]
    fn histogram_records_and_accumulates() {
        let h = Hist::default();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(9), 1); // 1000 in [512, 1024)
        assert_eq!(h.bucket(63), 1); // u64::MAX
        // fetch_add wraps, so the sum is (0+1+2+3+1000+u64::MAX) mod 2^64.
        assert_eq!(h.sum(), 1006u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn exposition_is_cumulative_and_self_consistent() {
        let m = Metrics::default();
        m.bump(MCounter::Submitted);
        m.bump(MCounter::Submitted);
        m.bump(MCounter::Completed);
        for v in [0u64, 5, 5, 300] {
            m.record(MHist::ServiceUs, v);
        }
        let g = Gauges {
            uptime_ms: 1234,
            queue_depth: 3,
            running: 1,
            draining: false,
            workers: 2,
            job_threads: 1,
            max_queue: 64,
            cache: CacheStats::default(),
        };
        let text = render_prometheus(&m, &g);
        let parsed = parse_exposition(&text);
        let get = |name: &str| {
            parsed
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
        };
        assert_eq!(get("dbscan_server_jobs_submitted_total"), 2.0);
        assert_eq!(get("dbscan_server_jobs_completed_total"), 1.0);
        assert_eq!(get("dbscan_server_queue_depth"), 3.0);
        assert_eq!(get("dbscan_server_service_time_us_count"), 4.0);
        assert_eq!(get("dbscan_server_service_time_us_sum"), 310.0);
        // Cumulative buckets: le=1 holds the 0 observation, le=7 adds the
        // two 5s, le=511 adds the 300, +Inf equals the count.
        assert_eq!(get("dbscan_server_service_time_us_bucket{le=\"1\"}"), 1.0);
        assert_eq!(get("dbscan_server_service_time_us_bucket{le=\"7\"}"), 3.0);
        assert_eq!(get("dbscan_server_service_time_us_bucket{le=\"511\"}"), 4.0);
        assert_eq!(get("dbscan_server_service_time_us_bucket{le=\"+Inf\"}"), 4.0);
        // Buckets are monotonically non-decreasing in exposition order.
        let mut last = 0.0;
        for (n, v) in &parsed {
            if n.starts_with("dbscan_server_service_time_us_bucket") {
                assert!(*v >= last, "bucket regression at {n}");
                last = *v;
            }
        }
    }

    #[test]
    fn empty_histogram_still_renders_inf_sum_count() {
        let m = Metrics::default();
        let g = Gauges {
            uptime_ms: 0,
            queue_depth: 0,
            running: 0,
            draining: true,
            workers: 1,
            job_threads: 1,
            max_queue: 1,
            cache: CacheStats::default(),
        };
        let text = render_prometheus(&m, &g);
        assert!(text.contains("dbscan_server_queue_wait_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("dbscan_server_queue_wait_us_count 0"));
        assert!(text.contains("dbscan_server_draining 1"));
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let m = std::sync::Arc::new(Metrics::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.bump(MCounter::Submitted);
                        m.record(MHist::EndToEndUs, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.get(MCounter::Submitted), 8000);
        assert_eq!(m.hist(MHist::EndToEndUs).count(), 8000);
        assert_eq!(m.hist(MHist::EndToEndUs).sum(), 8 * (999 * 1000 / 2));
    }
}
