//! Blocking line-protocol client, shared by `repro loadgen` and the
//! integration tests. One request line out, one response line back.

use crate::json::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Client {
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let s = std::os::unix::net::UnixStream::connect(path)?;
        let w = s.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Conn::Unix(s)),
            writer: Conn::Unix(w),
        })
    }

    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let s = std::net::TcpStream::connect(addr)?;
        let w = s.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Conn::Tcp(s)),
            writer: Conn::Tcp(w),
        })
    }

    /// Retries the connect until the daemon is listening (it binds before it
    /// serves, so a short window suffices).
    pub fn connect_unix_retry(path: &Path, timeout: Duration) -> std::io::Result<Client> {
        let t0 = std::time::Instant::now();
        loop {
            match Client::connect_unix(path) {
                Ok(c) => return Ok(c),
                Err(e) if t0.elapsed() > timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request line and reads the matching response line.
    pub fn call(&mut self, req: &Value) -> std::io::Result<Value> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut resp = String::new();
        loop {
            match self.reader.read_line(&mut resp) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) if resp.ends_with('\n') => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        parse(resp.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Calls the `metrics` verb and returns the Prometheus text exposition
    /// (see [`crate::metrics::parse_exposition`] for the inverse).
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.call(&crate::json::obj(vec![(
            "verb",
            Value::Str("metrics".to_string()),
        )]))?;
        resp.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "metrics response missing \"exposition\"",
                )
            })
    }
}
