//! Blocking line-protocol client, shared by `repro loadgen` and the
//! integration tests. One request line out, one response line back.

use crate::json::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Client {
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let s = std::os::unix::net::UnixStream::connect(path)?;
        let w = s.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Conn::Unix(s)),
            writer: Conn::Unix(w),
        })
    }

    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let s = std::net::TcpStream::connect(addr)?;
        let w = s.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Conn::Tcp(s)),
            writer: Conn::Tcp(w),
        })
    }

    /// Retries the connect until the daemon is listening (it binds before it
    /// serves, so a short window suffices).
    pub fn connect_unix_retry(path: &Path, timeout: Duration) -> std::io::Result<Client> {
        let t0 = std::time::Instant::now();
        loop {
            match Client::connect_unix(path) {
                Ok(c) => return Ok(c),
                Err(e) if t0.elapsed() > timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request line and reads the matching response line.
    pub fn call(&mut self, req: &Value) -> std::io::Result<Value> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut resp = String::new();
        loop {
            match self.reader.read_line(&mut resp) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) if resp.ends_with('\n') => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        parse(resp.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Like [`Client::call`], but retries `overloaded` responses through the
    /// given [`Backoff`] until it succeeds or the retry budget is spent (the
    /// last `overloaded` response is then returned for the caller to
    /// account). Honours the server's `retry_after_ms` hint when present.
    pub fn call_retrying(&mut self, req: &Value, backoff: &mut Backoff) -> std::io::Result<Value> {
        loop {
            let resp = self.call(req)?;
            let overloaded = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                == Some("overloaded");
            if !overloaded {
                return Ok(resp);
            }
            let hint = resp.get("retry_after_ms").and_then(Value::as_u64);
            match backoff.next_delay_ms(hint) {
                Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
                None => return Ok(resp),
            }
        }
    }

    /// Calls the `metrics` verb and returns the Prometheus text exposition
    /// (see [`crate::metrics::parse_exposition`] for the inverse).
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.call(&crate::json::obj(vec![(
            "verb",
            Value::Str("metrics".to_string()),
        )]))?;
        resp.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "metrics response missing \"exposition\"",
                )
            })
    }
}

/// Seeded, jittered exponential backoff for `overloaded` retries.
///
/// Delays double from `base_ms` up to `cap_ms`; when the server supplies a
/// `retry_after_ms` hint, the hint replaces the exponential term. Either way
/// the actual sleep is jittered uniformly in `[d/2, 3d/2)` so a burst of
/// shed clients does not retry in lockstep. The jitter source is a SplitMix64
/// stream from the caller's seed — fully deterministic, no wall clock.
pub struct Backoff {
    state: u64,
    base_ms: u64,
    cap_ms: u64,
    budget: u32,
    /// Retries taken so far (callers surface this in their summaries).
    pub retries: u64,
}

impl Backoff {
    pub fn new(seed: u64, budget: u32) -> Backoff {
        Backoff {
            state: seed,
            base_ms: 10,
            cap_ms: 2000,
            budget,
            retries: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: tiny, seedable, and plenty for jitter.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next jittered delay in ms, or `None` once the budget is spent.
    pub fn next_delay_ms(&mut self, hint_ms: Option<u64>) -> Option<u64> {
        if self.retries >= u64::from(self.budget) {
            return None;
        }
        let attempt = self.retries.min(16) as u32;
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt)
            .min(self.cap_ms);
        let base = hint_ms
            .map(|h| h.clamp(1, self.cap_ms))
            .unwrap_or(exp)
            .max(1);
        self.retries += 1;
        Some(base / 2 + self.next_u64() % base)
    }
}

#[cfg(test)]
mod tests {
    use super::Backoff;

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mut a = Backoff::new(0x5eed, 100);
        let mut b = Backoff::new(0x5eed, 100);
        let da: Vec<_> = (0..20).map(|_| a.next_delay_ms(None)).collect();
        let db: Vec<_> = (0..20).map(|_| b.next_delay_ms(None)).collect();
        assert_eq!(da, db);
        let mut c = Backoff::new(0xfeed, 100);
        let dc: Vec<_> = (0..20).map(|_| c.next_delay_ms(None)).collect();
        assert_ne!(da, dc, "different seeds must jitter differently");
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let mut b = Backoff::new(7, 1000);
        // Attempt k has base min(10 * 2^k, 2000); jitter keeps it in
        // [base/2, 3*base/2).
        for k in 0..20u32 {
            let base = 10u64.saturating_mul(1 << k.min(16)).min(2000);
            let d = b.next_delay_ms(None).unwrap();
            assert!(
                d >= base / 2 && d < base + base / 2 + 1,
                "attempt {k}: delay {d} outside [{}, {})",
                base / 2,
                base + base / 2
            );
        }
    }

    #[test]
    fn backoff_honours_the_server_hint() {
        let mut b = Backoff::new(42, 1000);
        for _ in 0..50 {
            let d = b.next_delay_ms(Some(600)).unwrap();
            assert!((300..900).contains(&d), "hinted delay {d} outside [300, 900)");
        }
    }

    #[test]
    fn backoff_budget_exhausts() {
        let mut b = Backoff::new(1, 3);
        assert!(b.next_delay_ms(None).is_some());
        assert!(b.next_delay_ms(None).is_some());
        assert!(b.next_delay_ms(None).is_some());
        assert!(b.next_delay_ms(None).is_none(), "budget of 3 spent");
        assert_eq!(b.retries, 3);
    }
}
