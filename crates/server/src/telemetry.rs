//! The daemon's unified observability plane: the lock-free metrics
//! registry, the structured logger, the per-request trace-capture budget,
//! and the rolling health time-series, bundled so `server.rs` threads one
//! handle instead of four.
//!
//! The time-series is a fixed-capacity ring of periodic [`HealthSample`]s
//! taken by the `dbscan-sample` thread. Each sample stores both the raw
//! cumulative counters and the *derived window rates* (throughput per
//! second, cache hit rate over the window) computed against the previous
//! sample, so a consumer can read rates without re-deriving deltas — and
//! the `timeseries` verb stays a pure projection.

use crate::json::{obj, Value};
use crate::logging::Logger;
use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One periodic health snapshot: point-in-time gauges plus cumulative
/// counters plus the rates derived over the window since the prior sample.
#[derive(Clone, Copy, Debug)]
pub struct HealthSample {
    pub uptime_ms: u64,
    pub queue_depth: u64,
    pub running: u64,
    pub avg_job_ms: u64,
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub shed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_bytes: u64,
    /// Jobs that reached `done` during this window.
    pub completed_in_window: u64,
    /// `completed_in_window` scaled to per-second over the actual window.
    pub throughput_per_s: f64,
    /// Cache hit fraction over the window's lookups (0 when none happened).
    pub cache_hit_rate: f64,
}

impl HealthSample {
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("uptime_ms", Value::Num(self.uptime_ms as f64)),
            ("queue_depth", Value::Num(self.queue_depth as f64)),
            ("running", Value::Num(self.running as f64)),
            ("avg_job_ms", Value::Num(self.avg_job_ms as f64)),
            ("submitted", Value::Num(self.submitted as f64)),
            ("completed", Value::Num(self.completed as f64)),
            ("failed", Value::Num(self.failed as f64)),
            ("cancelled", Value::Num(self.cancelled as f64)),
            ("shed", Value::Num(self.shed as f64)),
            ("cache_hits", Value::Num(self.cache_hits as f64)),
            ("cache_misses", Value::Num(self.cache_misses as f64)),
            ("cache_bytes", Value::Num(self.cache_bytes as f64)),
            ("completed_in_window", Value::Num(self.completed_in_window as f64)),
            ("throughput_per_s", Value::Num(self.throughput_per_s)),
            ("cache_hit_rate", Value::Num(self.cache_hit_rate)),
        ])
    }
}

/// Fixed-capacity ring of [`HealthSample`]s: pushing past capacity evicts
/// the oldest, so memory stays bounded no matter how long the daemon runs.
pub struct HealthRing {
    cap: usize,
    samples: VecDeque<HealthSample>,
    /// Total samples ever pushed (so consumers can detect eviction).
    pushed: u64,
}

impl HealthRing {
    pub fn new(cap: usize) -> HealthRing {
        HealthRing {
            cap: cap.max(1),
            samples: VecDeque::new(),
            pushed: 0,
        }
    }

    /// Derives window rates against the most recent sample (using the
    /// uptime delta as the window length) and appends, evicting the oldest
    /// entry once past capacity.
    pub fn push(&mut self, mut sample: HealthSample) {
        if let Some(prev) = self.samples.back() {
            let window_ms = sample.uptime_ms.saturating_sub(prev.uptime_ms);
            sample.completed_in_window = sample.completed.saturating_sub(prev.completed);
            sample.throughput_per_s = if window_ms > 0 {
                sample.completed_in_window as f64 * 1000.0 / window_ms as f64
            } else {
                0.0
            };
            let lookups = sample.cache_hits.saturating_sub(prev.cache_hits)
                + sample.cache_misses.saturating_sub(prev.cache_misses);
            sample.cache_hit_rate = if lookups > 0 {
                sample.cache_hits.saturating_sub(prev.cache_hits) as f64 / lookups as f64
            } else {
                0.0
            };
        } else {
            // First sample: the whole uptime is the window.
            sample.completed_in_window = sample.completed;
            sample.throughput_per_s = if sample.uptime_ms > 0 {
                sample.completed as f64 * 1000.0 / sample.uptime_ms as f64
            } else {
                0.0
            };
            let lookups = sample.cache_hits + sample.cache_misses;
            sample.cache_hit_rate = if lookups > 0 {
                sample.cache_hits as f64 / lookups as f64
            } else {
                0.0
            };
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        self.pushed += 1;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    pub fn samples(&self) -> impl Iterator<Item = &HealthSample> {
        self.samples.iter()
    }

    pub fn to_value(&self) -> Value {
        Value::Arr(self.samples.iter().map(|s| s.to_value()).collect())
    }
}

/// Everything `server.rs` needs to be observable, in one handle.
pub struct Telemetry {
    pub metrics: Metrics,
    pub log: Logger,
    pub ring: Mutex<HealthRing>,
    pub sample_interval: Duration,
    /// Byte budget for an inline per-request trace (`submit {"trace":...}`).
    pub trace_max_bytes: usize,
}

impl Telemetry {
    pub fn new(
        log: Logger,
        timeseries_cap: usize,
        sample_interval: Duration,
        trace_max_bytes: usize,
    ) -> Telemetry {
        Telemetry {
            metrics: Metrics::default(),
            log,
            ring: Mutex::new(HealthRing::new(timeseries_cap)),
            sample_interval,
            trace_max_bytes,
        }
    }
}

/// Caps folded-stack text at a byte budget, cutting only whole lines so
/// the remainder still feeds `flamegraph.pl`. Returns the capped text and
/// the number of lines omitted.
pub fn cap_folded(text: &str, max_bytes: usize) -> (String, u64) {
    if text.len() <= max_bytes {
        return (text.to_string(), 0);
    }
    let mut out = String::new();
    let mut omitted = 0u64;
    for line in text.lines() {
        if omitted == 0 && out.len() + line.len() < max_bytes {
            out.push_str(line);
            out.push('\n');
        } else {
            omitted += 1;
        }
    }
    (out, omitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(uptime_ms: u64, completed: u64, hits: u64, misses: u64) -> HealthSample {
        HealthSample {
            uptime_ms,
            queue_depth: 0,
            running: 0,
            avg_job_ms: 0,
            submitted: completed,
            completed,
            failed: 0,
            cancelled: 0,
            shed: 0,
            cache_hits: hits,
            cache_misses: misses,
            cache_bytes: 0,
            completed_in_window: 0,
            throughput_per_s: 0.0,
            cache_hit_rate: 0.0,
        }
    }

    #[test]
    fn ring_rotates_past_capacity() {
        let mut ring = HealthRing::new(3);
        for i in 0..10u64 {
            ring.push(sample(i * 1000, i, 0, 0));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 10);
        // Oldest surviving sample is #7 (uptime 7000); eviction kept order.
        let uptimes: Vec<u64> = ring.samples().map(|s| s.uptime_ms).collect();
        assert_eq!(uptimes, vec![7000, 8000, 9000]);
    }

    #[test]
    fn window_rates_derive_from_previous_sample() {
        let mut ring = HealthRing::new(8);
        ring.push(sample(1000, 4, 2, 2));
        ring.push(sample(3000, 10, 8, 2)); // +6 done over 2s, +6 hits +0 misses
        let last = *ring.samples().last().unwrap();
        assert_eq!(last.completed_in_window, 6);
        assert!((last.throughput_per_s - 3.0).abs() < 1e-9);
        assert!((last.cache_hit_rate - 1.0).abs() < 1e-9);
        // First sample treats full uptime as the window.
        let first = *ring.samples().next().unwrap();
        assert_eq!(first.completed_in_window, 4);
        assert!((first.throughput_per_s - 4.0).abs() < 1e-9);
        assert!((first.cache_hit_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = HealthRing::new(0);
        ring.push(sample(1, 1, 0, 0));
        ring.push(sample(2, 2, 0, 0));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn cap_folded_cuts_whole_lines() {
        let text = "a;b 100\nc;d 200\ne;f 300\n";
        let (full, omitted) = cap_folded(text, text.len());
        assert_eq!(full, text);
        assert_eq!(omitted, 0);
        let (capped, omitted) = cap_folded(text, 10);
        assert_eq!(capped, "a;b 100\n");
        assert_eq!(omitted, 2);
        // Once one line is cut, later shorter lines are not cherry-picked.
        let text2 = "long;line;here 123456\nx 1\n";
        let (capped2, omitted2) = cap_folded(text2, 5);
        assert_eq!(capped2, "");
        assert_eq!(omitted2, 2);
    }
}
