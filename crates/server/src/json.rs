//! Minimal JSON value, parser, and writer for the line protocol.
//!
//! The build environment is offline (no serde), so the protocol layer carries
//! its own implementation of exactly the subset it needs: UTF-8 text, the six
//! JSON value kinds, `\uXXXX` escapes (BMP only — surrogate pairs are decoded
//! pairwise), and `f64` numbers. Object member order is preserved, which keeps
//! response envelopes stable for golden-line tests.

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order (`Vec` of pairs, not a
/// map): protocol envelopes are small and order-stable output matters more
/// than lookup speed.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numbers that are exact non-negative integers, for ids and counts.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single line (no trailing newline, no pretty-printing).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Convenience builder for object values.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; the protocol never emits them, but fail soft.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error (the line
/// protocol carries exactly one value per line).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Hostile inputs like `[[[[…` would otherwise recurse once per byte and
/// overflow the parser's stack; every protocol shape nests ≤ 3 deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn nested(
        &mut self,
        f: fn(&mut Parser<'a>) -> Result<Value, String>,
    ) -> Result<Value, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or("bad unicode escape")?,
                            );
                        }
                        b => {
                            return Err(format!("bad escape {:?}", b as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str, so the
                    // bytes are valid — find the char boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let line = r#"{"verb":"submit","eps":1.5,"min_pts":4,"points":[[0,0],[1.25,-3e2]],"tag":"a\"b\\c","flag":true,"none":null}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("verb").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("eps").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("min_pts").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a\"b\\c"));
        let pts = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts[1].as_arr().unwrap()[1].as_f64(), Some(-300.0));
        // Writer output reparses to the same value.
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""Aé 😀 \n\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀 \n\t"));
        let back = parse(&v.to_line()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
            "{\"a\":1} extra", "{'single':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowing() {
        // Well past any protocol shape, far under the thread stack.
        let hostile = "[".repeat(100_000);
        let err = parse(&hostile).unwrap_err();
        assert!(err.contains("nesting deeper"), "got {err:?}");
        let mixed = "{\"a\":".repeat(50_000) + "1" + &"}".repeat(50_000);
        assert!(parse(&mixed).is_err());
        // Legitimate nesting (points arrays are 2 deep) still parses.
        let mut ok = String::new();
        for _ in 0..100 {
            ok.push('[');
        }
        ok.push('1');
        for _ in 0..100 {
            ok.push(']');
        }
        assert!(parse(&ok).is_ok(), "depth 100 must stay legal");
    }

    #[test]
    fn integers_render_without_exponents() {
        assert_eq!(Value::Num(12345.0).to_line(), "12345");
        assert_eq!(Value::Num(-2.0).to_line(), "-2");
        assert_eq!(Value::Num(0.5).to_line(), "0.5");
    }
}
