//! Helpers shared by the daemon integration tests.
//!
//! Tests in this suite each start a real daemon with real sockets, and the
//! thread-hygiene assertions count `dbscan-*` threads process-wide, so the
//! whole suite serializes on [`lock`] — two concurrent servers would see each
//! other's executor threads.

use dbscan_geom::Point;
use dbscan_server::json::{obj, Value};
use std::sync::{Mutex, MutexGuard, OnceLock};

pub fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Deterministic 2D dataset: three dense blobs plus sparse background noise
/// (xorshift; no rand dependency in this crate).
pub fn blob_points(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut s = seed | 1;
    let mut unit = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    const CENTERS: [(f64, f64); 3] = [(20.0, 20.0), (120.0, 30.0), (40.0, 140.0)];
    (0..n)
        .map(|i| {
            if i % 10 == 9 {
                // background noise over the whole window
                Point([unit() * 200.0, unit() * 200.0])
            } else {
                let (cx, cy) = CENTERS[i % 3];
                Point([cx + (unit() - 0.5) * 12.0, cy + (unit() - 0.5) * 12.0])
            }
        })
        .collect()
}

pub fn points_value(pts: &[Point<2>]) -> Value {
    Value::Arr(
        pts.iter()
            .map(|p| Value::Arr(vec![Value::Num(p.0[0]), Value::Num(p.0[1])]))
            .collect(),
    )
}

/// A `submit` request for `pts` with extra members appended.
pub fn submit_req(pts: &[Point<2>], eps: f64, min_pts: usize, extra: Vec<(&str, Value)>) -> Value {
    let mut members = vec![
        ("verb", Value::Str("submit".to_string())),
        ("points", points_value(pts)),
        ("eps", Value::Num(eps)),
        ("min_pts", Value::Num(min_pts as f64)),
    ];
    members.extend(extra);
    obj(members)
}

/// Submits and asserts admission, returning the job id.
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn submit_ok(client: &mut dbscan_server::Client, req: &Value) -> u64 {
    let resp = client.call(req).expect("submit call");
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "submit should be admitted: {resp:?}"
    );
    resp.get("job").and_then(Value::as_u64).expect("job id")
}

pub fn result_req(job: u64) -> Value {
    obj(vec![
        ("verb", Value::Str("result".to_string())),
        ("job", Value::Num(job as f64)),
    ])
}

pub fn verb(name: &str) -> Value {
    obj(vec![("verb", Value::Str(name.to_string()))])
}

/// Labels from a `result` response (`null` = noise).
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn labels_of(resp: &Value) -> Vec<Option<u32>> {
    resp.get("labels")
        .and_then(Value::as_arr)
        .expect("result should carry labels")
        .iter()
        .map(|v| v.as_u64().map(|c| c as u32))
        .collect()
}

/// Names of live `dbscan-*` threads in this process (executors, the accept
/// loop, connection handlers). Empty once a daemon has fully shut down.
pub fn dbscan_threads() -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(dir) = std::fs::read_dir("/proc/self/task") {
        for entry in dir.flatten() {
            if let Ok(comm) = std::fs::read_to_string(entry.path().join("comm")) {
                let name = comm.trim().to_string();
                if name.starts_with("dbscan-") {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// Polls `status` until the job reports `state`, panicking after ~5s.
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn wait_for_state(client: &mut dbscan_server::Client, job: u64, state: &str) {
    let t0 = std::time::Instant::now();
    loop {
        let resp = client
            .call(&obj(vec![
                ("verb", Value::Str("status".to_string())),
                ("job", Value::Num(job as f64)),
            ]))
            .expect("status call");
        if resp.get("state").and_then(Value::as_str) == Some(state) {
            return;
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "job {job} never reached state {state:?}: {resp:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
