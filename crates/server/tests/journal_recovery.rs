//! Crash-durability integration tests: fabricated journals fed to a real
//! daemon. Covers replay of unfinished jobs (bit-identical re-execution),
//! tombstone semantics (delivered work never re-runs), valid-prefix recovery
//! from corrupt tails, and size-triggered compaction across a restart.

mod common;

use common::*;
use dbscan_core::algorithms::grid_exact;
use dbscan_core::DbscanParams;
use dbscan_server::journal::{submit_record, tombstone_record, JOURNAL_FILE};
use dbscan_server::json::Value;
use dbscan_server::{label_hash, start, Bind, Client, JournalConfig, ServerConfig};
use std::path::{Path, PathBuf};

const EPS: f64 = 6.0;
const MIN_PTS: usize = 4;

/// Fresh scratch directory for one test's journal + log.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbscan-jrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Starts a TCP daemon journaling into `dir`, logging to `dir/server.log`.
fn journaled_server(
    dir: &Path,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (dbscan_server::ServerHandle, Client) {
    let mut cfg = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        journal: Some(JournalConfig::new(dir.to_path_buf())),
        log_file: Some(dir.join("server.log")),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let handle = start(cfg).expect("start journaled server");
    let addr = handle.tcp_addr.expect("tcp bind reports its address");
    let client = Client::connect_tcp(&addr.to_string()).expect("connect");
    (handle, client)
}

fn flat(pts: &[dbscan_geom::Point<2>]) -> Vec<f64> {
    pts.iter().flat_map(|p| p.0).collect()
}

fn stat_of(client: &mut Client, key: &str) -> u64 {
    let health = client.call(&verb("health")).expect("health");
    health
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn replay_reexecutes_unfinished_jobs_and_honours_tombstones() {
    let _g = lock();
    let dir = scratch("replay");
    let pts = blob_points(500, 0x5eed);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let expected = format!("{:016x}", label_hash(&grid_exact(&pts, params).flat_labels()));

    // Journal as a crashed daemon would have left it: job 7 acked but never
    // finished, job 9 acked and terminal (tombstoned, result delivered).
    let mut log = Vec::new();
    log.extend_from_slice(&submit_record(7, Some("alpha"), EPS, MIN_PTS, 2, &flat(&pts)));
    log.extend_from_slice(&submit_record(9, None, EPS, MIN_PTS, 2, &flat(&pts)));
    log.extend_from_slice(&tombstone_record(9, "done"));
    std::fs::write(dir.join(JOURNAL_FILE), &log).expect("write journal");

    let (handle, mut client) = journaled_server(&dir, |_| {});

    // The unfinished job replays to a bit-identical result, flagged as
    // recovered; the tombstoned one is gone for good.
    let r7 = client.call(&result_req(7)).expect("result 7");
    assert_eq!(r7.get("state").and_then(Value::as_str), Some("done"), "{r7:?}");
    assert_eq!(
        r7.get("label_hash").and_then(Value::as_str),
        Some(expected.as_str()),
        "replayed job must reproduce the standalone clustering"
    );
    assert_eq!(r7.get("recovered").and_then(Value::as_bool), Some(true));
    assert_eq!(r7.get("tag").and_then(Value::as_str), Some("alpha"));
    assert_eq!(
        labels_of(&r7),
        grid_exact(&pts, params).flat_labels(),
        "replayed labels must match the standalone run bit-for-bit"
    );
    let r9 = client.call(&result_req(9)).expect("result 9");
    assert_eq!(
        r9.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("unknown_job"),
        "tombstoned job must never re-run: {r9:?}"
    );
    assert_eq!(stat_of(&mut client, "recovered_jobs"), 1);

    // The id counter resumed above everything ever journaled, so fresh ids
    // cannot collide with delivered (tombstoned) ones.
    let fresh = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    assert!(fresh > 9, "fresh id {fresh} must exceed the journaled high-water mark");

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_tails_truncate_to_the_valid_prefix_without_aborting() {
    let _g = lock();
    let pts = blob_points(300, 0xc0de);
    let rec1 = submit_record(1, None, EPS, MIN_PTS, 2, &flat(&pts));
    let rec2 = submit_record(2, None, EPS, MIN_PTS, 2, &flat(&pts));

    // Three corruption shapes, same expectation: the valid prefix survives,
    // the daemon starts, and a `journal_truncated` event is logged.
    let cases: Vec<(&str, Vec<u8>, u64)> = vec![
        (
            "bitflip",
            {
                // Flip a byte inside the second record's body.
                let mut log = [rec1.clone(), rec2.clone()].concat();
                let off = rec1.len() + rec2.len() / 2;
                log[off] ^= 0x40;
                log
            },
            1,
        ),
        (
            "torn",
            // The second record stops halfway through: a mid-write crash.
            [rec1.clone(), rec2[..rec2.len() / 2].to_vec()].concat(),
            1,
        ),
        (
            "garbage",
            // Both records intact, then non-record bytes to the end.
            [rec1.clone(), rec2.clone(), b"!!not a journal record!!".to_vec()].concat(),
            2,
        ),
    ];

    for (tag, log, want_recovered) in cases {
        let dir = scratch(tag);
        std::fs::write(dir.join(JOURNAL_FILE), &log).expect("write journal");
        let (handle, mut client) = journaled_server(&dir, |_| {});
        assert_eq!(
            stat_of(&mut client, "recovered_jobs"),
            want_recovered,
            "case {tag}: wrong number of jobs survived the corrupt tail"
        );
        // Drain the replays so shutdown is quick.
        for id in 1..=want_recovered {
            let r = client.call(&result_req(id)).expect("replayed result");
            assert_eq!(
                r.get("state").and_then(Value::as_str),
                Some("done"),
                "case {tag}: replayed job {id} failed: {r:?}"
            );
        }
        handle.shutdown();
        handle.wait();
        let server_log = std::fs::read_to_string(dir.join("server.log")).unwrap_or_default();
        assert!(
            server_log.contains("journal_truncated"),
            "case {tag}: expected a journal_truncated event in the log"
        );
        // The truncation was physical and the deliveries minted durable
        // tombstones: a second restart has nothing left to replay.
        let (handle, mut client) = journaled_server(&dir, |_| {});
        assert_eq!(stat_of(&mut client, "recovered_jobs"), 0, "case {tag}");
        for id in 1..=want_recovered {
            let r = client.call(&result_req(id)).expect("post-delivery lookup");
            assert_eq!(
                r.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
                Some("unknown_job"),
                "case {tag}: delivered job {id} must not re-run: {r:?}"
            );
        }
        handle.shutdown();
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn compaction_bounds_the_log_and_leaves_nothing_to_recover() {
    let _g = lock();
    let dir = scratch("compact");
    let pts = blob_points(400, 0xfeed);

    // Tiny trigger: every tombstone past ~8 KiB compacts the log.
    let (handle, mut client) = journaled_server(&dir, |cfg| {
        cfg.journal.as_mut().unwrap().compact_bytes = 8 << 10;
    });
    for _ in 0..6 {
        let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
        let r = client.call(&result_req(job)).expect("result");
        assert_eq!(r.get("state").and_then(Value::as_str), Some("done"), "{r:?}");
    }
    let health = client.call(&verb("health")).expect("health");
    let jstat = |k: &str| {
        health
            .get("stats")
            .and_then(|s| s.get("journal"))
            .and_then(|j| j.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    assert!(jstat("compactions") >= 1, "the tiny trigger must have compacted");
    assert_eq!(jstat("live_jobs"), 0, "everything was delivered");
    assert!(
        jstat("bytes") <= 8 << 10,
        "log stayed above the compaction trigger at quiescence: {} bytes",
        jstat("bytes")
    );
    handle.shutdown();
    handle.wait();

    let disk = std::fs::metadata(dir.join(JOURNAL_FILE)).expect("journal exists").len();
    assert!(disk <= 8 << 10, "on-disk journal is {disk} bytes, above the trigger");

    // A restart on the compacted journal has nothing to replay.
    let (handle, mut client) = journaled_server(&dir, |_| {});
    assert_eq!(stat_of(&mut client, "recovered_jobs"), 0);
    handle.shutdown();
    handle.wait();
    assert!(
        dbscan_threads().is_empty(),
        "daemon threads leaked: {:?}",
        dbscan_threads()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
