//! Telemetry-plane integration tests over a real daemon: the `metrics`
//! verb's Prometheus exposition cross-checked against `health`, inline
//! per-request trace capture in both formats (phase parity against a
//! standalone traced run, budget truncation), the rolling health
//! time-series, and the structured log file's lifecycle events.

mod common;

use common::*;
use dbscan_core::algorithms::{grid_exact_instrumented, BcpStrategy};
use dbscan_core::{DbscanParams, TracedStats};
use dbscan_server::json::{parse, Value};
use dbscan_server::{parse_exposition, start, Bind, Client, Level, ServerConfig};
use std::collections::BTreeSet;
use std::time::Duration;

const EPS: f64 = 6.0;
const MIN_PTS: usize = 4;

fn tcp_server(tweak: impl FnOnce(&mut ServerConfig)) -> (dbscan_server::ServerHandle, Client) {
    let mut cfg = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let handle = start(cfg).expect("start server");
    let addr = handle.tcp_addr.expect("tcp bind reports its address");
    let client = Client::connect_tcp(&addr.to_string()).expect("connect");
    (handle, client)
}

fn submit_ok(client: &mut Client, req: &Value) -> u64 {
    let resp = client.call(req).expect("submit call");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{resp:?}");
    resp.get("job").and_then(Value::as_u64).expect("job id")
}

fn metric(pairs: &[(String, f64)], name: &str) -> f64 {
    let key = format!("dbscan_server_{name}");
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("metric {key} missing from exposition"))
        .1
}

/// Distinct phase-span names (`cat == "phase"`) in a parsed Chrome trace.
fn chrome_phase_names(trace: &Value) -> BTreeSet<String> {
    trace
        .as_arr()
        .expect("chrome trace is a JSON array")
        .iter()
        .filter(|ev| ev.get("cat").and_then(Value::as_str) == Some("phase"))
        .filter_map(|ev| ev.get("name").and_then(Value::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn metrics_exposition_matches_health_counters() {
    let _g = lock();
    let pts = blob_points(600, 0x7e1e);
    let (handle, mut client) = tcp_server(|_| {});

    // Two fresh jobs plus one cache hit so the cache counters move too.
    for _ in 0..2 {
        let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
        let resp = client.call(&result_req(job)).expect("result");
        assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    }
    let other = blob_points(500, 0xfade);
    let job = submit_ok(&mut client, &submit_req(&other, EPS, MIN_PTS, vec![]));
    client.call(&result_req(job)).expect("result");

    let resp = client.call(&verb("metrics")).expect("metrics verb");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        resp.get("schema").and_then(Value::as_str),
        Some("dbscan-server-metrics/v1")
    );
    let text = resp
        .get("exposition")
        .and_then(Value::as_str)
        .expect("exposition text");
    assert!(text.contains("# TYPE dbscan_server_jobs_submitted_total counter"));
    assert!(text.contains("# TYPE dbscan_server_service_time_us histogram"));
    let pairs = parse_exposition(text);

    // The scrape and the health envelope must read the same registry.
    let health = client.call(&verb("health")).expect("health verb");
    let stats = health.get("stats").expect("health stats");
    let of = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap() as f64;
    assert_eq!(metric(&pairs, "jobs_submitted_total"), of("submitted"));
    assert_eq!(metric(&pairs, "jobs_completed_total"), of("completed"));
    assert_eq!(metric(&pairs, "jobs_failed_total"), of("failed"));
    assert_eq!(metric(&pairs, "jobs_cancelled_total"), of("cancelled"));
    assert_eq!(metric(&pairs, "jobs_shed_total"), of("shed_jobs"));
    assert_eq!(metric(&pairs, "worker_panics_total"), of("worker_panics"));
    assert_eq!(metric(&pairs, "jobs_submitted_total"), 3.0);
    assert_eq!(
        metric(&pairs, "jobs_submitted_total"),
        metric(&pairs, "jobs_completed_total")
            + metric(&pairs, "jobs_failed_total")
            + metric(&pairs, "jobs_cancelled_total"),
        "accounting invariant must hold at quiescence"
    );
    // Every terminal job records one observation in each latency histogram.
    assert_eq!(metric(&pairs, "service_time_us_count"), 3.0);
    assert_eq!(metric(&pairs, "queue_wait_us_count"), 3.0);
    assert_eq!(metric(&pairs, "end_to_end_us_count"), 3.0);
    assert!(metric(&pairs, "cache_hits_total") >= 1.0);
    assert!(metric(&pairs, "cache_misses_total") >= 2.0);

    // The client helper returns the same exposition as the raw verb.
    let via_helper = client.metrics_text().expect("metrics_text");
    assert!(via_helper.contains("dbscan_server_jobs_submitted_total"));

    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "daemon threads leaked");
}

#[test]
fn traced_chrome_submit_matches_standalone_phase_spans() {
    let _g = lock();
    // Fresh (uncached) data: a cache hit would skip the build phases and the
    // parity assertion below would be vacuous for grid_build/labeling.
    let pts = blob_points(800, 0x7ace);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();

    let (handle, mut client) = tcp_server(|_| {});
    let job = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("trace", Value::Str("chrome".into()))]),
    );
    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(resp.get("trace_format").and_then(Value::as_str), Some("chrome"));
    assert_eq!(resp.get("trace_truncated").and_then(Value::as_bool), Some(false));
    assert_eq!(resp.get("events_dropped").and_then(Value::as_u64), Some(0));
    assert_eq!(labels_of(&resp).len(), pts.len());

    let raw = resp.get("trace").and_then(Value::as_str).expect("inline trace");
    let trace = parse(raw).expect("served trace must be valid JSON");
    let served = chrome_phase_names(&trace);

    // The same computation traced standalone must cover the same phases.
    let ts = TracedStats::new(1);
    grid_exact_instrumented(&pts, params, BcpStrategy::TreeAssisted, &ts);
    let standalone: BTreeSet<String> = ts
        .tracer
        .snapshot()
        .events
        .iter()
        .filter(|ev| ev.name.as_phase().is_some())
        .map(|ev| ev.name.label().to_string())
        .collect();
    assert_eq!(served, standalone, "served trace phases diverge from standalone run");
    assert!(served.contains("grid_build") && served.contains("edge_tests"));

    handle.shutdown();
    handle.wait();
}

#[test]
fn tiny_trace_budget_truncates_but_stays_valid_json() {
    let _g = lock();
    let pts = blob_points(800, 0xbeef);
    let (handle, mut client) = tcp_server(|cfg| cfg.trace_max_bytes = 700);
    let job = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("trace", Value::Str("chrome".into()))]),
    );
    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(resp.get("trace_truncated").and_then(Value::as_bool), Some(true));
    let raw = resp.get("trace").and_then(Value::as_str).expect("trace");
    assert!(raw.len() <= 700, "capped trace overran its budget: {} bytes", raw.len());
    let trace = parse(raw).expect("capped trace must still be valid JSON");
    // The truncation is surfaced inside the trace itself too.
    let omitted = trace
        .as_arr()
        .unwrap()
        .iter()
        .any(|ev| ev.get("name").and_then(Value::as_str) == Some("events_omitted"));
    assert!(omitted, "capped trace should carry an events_omitted marker");

    handle.shutdown();
    handle.wait();
}

#[test]
fn folded_trace_capture_returns_flamegraph_lines() {
    let _g = lock();
    let pts = blob_points(700, 0xf01d);
    let (handle, mut client) = tcp_server(|_| {});
    let job = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("trace", Value::Str("folded".into()))]),
    );
    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(resp.get("trace_format").and_then(Value::as_str), Some("folded"));
    let raw = resp.get("trace").and_then(Value::as_str).expect("trace");
    assert!(!raw.trim().is_empty(), "folded trace should not be empty");
    for line in raw.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line is `stack count`");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("folded count is integral");
    }

    handle.shutdown();
    handle.wait();
}

#[test]
fn bad_trace_format_is_rejected_at_submit() {
    let _g = lock();
    let pts = blob_points(50, 0xbad);
    let (handle, mut client) = tcp_server(|_| {});
    let resp = client
        .call(&submit_req(&pts, EPS, MIN_PTS, vec![("trace", Value::Str("svg".into()))]))
        .expect("call");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    handle.shutdown();
    handle.wait();
}

#[test]
fn timeseries_ring_fills_and_rolls() {
    let _g = lock();
    let pts = blob_points(400, 0x1155);
    let (handle, mut client) = tcp_server(|cfg| {
        cfg.sample_interval = Duration::from_millis(20);
        cfg.timeseries_cap = 5;
    });
    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    client.call(&result_req(job)).expect("result");

    // Poll until the sampler has pushed past capacity, then check rotation.
    let t0 = std::time::Instant::now();
    let resp = loop {
        let resp = client.call(&verb("timeseries")).expect("timeseries verb");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        if resp.get("total_samples").and_then(Value::as_u64).unwrap_or(0) > 5 {
            break resp;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "sampler never filled the ring");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        resp.get("schema").and_then(Value::as_str),
        Some("dbscan-server-timeseries/v1")
    );
    assert_eq!(resp.get("interval_ms").and_then(Value::as_u64), Some(20));
    assert_eq!(resp.get("capacity").and_then(Value::as_u64), Some(5));
    let samples = resp.get("samples").and_then(Value::as_arr).expect("samples");
    assert_eq!(samples.len(), 5, "ring past capacity holds exactly `capacity` samples");
    // Rotation keeps chronological order, and the counters are cumulative.
    let uptimes: Vec<u64> = samples
        .iter()
        .map(|s| s.get("uptime_ms").and_then(Value::as_u64).unwrap())
        .collect();
    assert!(uptimes.windows(2).all(|w| w[0] <= w[1]), "samples out of order: {uptimes:?}");
    let last = samples.last().unwrap();
    assert_eq!(last.get("completed").and_then(Value::as_u64), Some(1));
    assert!(last.get("throughput_per_s").and_then(Value::as_f64).is_some());

    handle.shutdown();
    handle.wait();
}

#[test]
fn log_file_records_lifecycle_events() {
    let _g = lock();
    let log_path = std::env::temp_dir().join(format!(
        "dbscan-telemetry-log-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&log_path);

    let pts = blob_points(300, 0x106);
    let (handle, mut client) = tcp_server(|cfg| {
        cfg.log_file = Some(log_path.clone());
        cfg.log_level = Level::Debug;
    });
    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    handle.shutdown();
    handle.wait();

    let text = std::fs::read_to_string(&log_path).expect("log file exists");
    let mut events = Vec::new();
    for line in text.lines() {
        let rec = parse(line).expect("every log line is one JSON object");
        assert!(rec.get("ts_ms").and_then(Value::as_u64).is_some());
        assert!(rec.get("level").and_then(Value::as_str).is_some());
        events.push(rec.get("event").and_then(Value::as_str).unwrap().to_string());
    }
    for expected in ["server_start", "job_submitted", "job_done", "server_drain", "server_exit"] {
        assert!(
            events.iter().any(|e| e == expected),
            "log should carry a {expected} event; got {events:?}"
        );
    }
    // The exit record snapshots the final counters.
    let exit = text
        .lines()
        .map(|l| parse(l).unwrap())
        .find(|r| r.get("event").and_then(Value::as_str) == Some("server_exit"))
        .unwrap();
    assert_eq!(exit.get("completed").and_then(Value::as_u64), Some(1));
    let _ = std::fs::remove_file(&log_path);
}
