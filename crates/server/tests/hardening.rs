//! Wire-protocol abuse tests: hostile and broken clients must degrade into
//! typed error lines and counters — never a panic, a wedged daemon, or a
//! leaked thread. Each scenario checks the daemon still serves a well-formed
//! request afterwards.

mod common;

use common::*;
use dbscan_server::json::Value;
use dbscan_server::{start, Bind, Client, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const EPS: f64 = 6.0;
const MIN_PTS: usize = 4;

fn tcp_server(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (dbscan_server::ServerHandle, std::net::SocketAddr) {
    let mut cfg = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let handle = start(cfg).expect("start server");
    let addr = handle.tcp_addr.expect("tcp bind reports its address");
    (handle, addr)
}

/// Sends raw bytes, then reads one response line (with a read timeout so a
/// silent server fails the test instead of hanging it).
fn raw_exchange(addr: &std::net::SocketAddr, bytes: &[u8]) -> Option<String> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(bytes).expect("write");
    let mut line = String::new();
    match BufReader::new(s).read_line(&mut line) {
        Ok(0) => None, // server closed without a response
        Ok(_) => Some(line),
        Err(_) => None,
    }
}

fn error_code(line: &str) -> String {
    dbscan_server::json::parse(line.trim())
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .map(str::to_string)
        })
        .unwrap_or_default()
}

/// The daemon must answer a well-formed request — the abuse didn't wedge it.
fn assert_still_serving(addr: &std::net::SocketAddr) {
    let mut client = Client::connect_tcp(&addr.to_string()).expect("fresh connect");
    let pts = blob_points(60, 0xabad);
    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r = client.call(&result_req(job)).expect("result");
    assert_eq!(r.get("state").and_then(Value::as_str), Some("done"), "{r:?}");
}

#[test]
fn garbage_frames_draw_typed_errors_not_panics() {
    let _g = lock();
    let (handle, addr) = tcp_server(|_| {});

    // Non-JSON text, binary garbage, invalid UTF-8, deep nesting, truncated
    // JSON: every one must come back as a typed bad_request line.
    let abuses: Vec<Vec<u8>> = vec![
        b"this is not json\n".to_vec(),
        b"{\"verb\": \"submit\", \"points\": [[1,\n".to_vec(),
        vec![0xff, 0xfe, 0x80, 0x81, b'\n'],
        {
            // Seeded random bytes (xorshift, newline-terminated).
            let mut s = 0x5eedu64 | 1;
            let mut buf: Vec<u8> = (0..512)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 24) as u8
                })
                .filter(|&b| b != b'\n')
                .collect();
            buf.push(b'\n');
            buf
        },
        {
            let mut nested = vec![b'['; 5_000];
            nested.push(b'\n');
            nested
        },
    ];
    for abuse in &abuses {
        let resp = raw_exchange(&addr, abuse).expect("typed error line");
        assert_eq!(error_code(&resp), "bad_request", "abuse {abuse:?} -> {resp}");
    }

    // A half-written frame followed by a clean disconnect must also be fine.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"{\"verb\": \"he").expect("write");
        drop(s);
    }

    assert_still_serving(&addr);
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let health = client.call(&verb("health")).expect("health");
    let malformed = health
        .get("stats")
        .and_then(|s| s.get("malformed_frames"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(
        malformed >= abuses.len() as u64,
        "expected at least {} malformed frames accounted, saw {malformed}",
        abuses.len()
    );
    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "leaked: {:?}", dbscan_threads());
}

#[test]
fn oversized_frames_are_cut_off_at_the_cap() {
    let _g = lock();
    let (handle, addr) = tcp_server(|cfg| cfg.max_frame_bytes = 4 << 10);

    // 64 KiB of newline-free payload against a 4 KiB cap: the daemon must
    // answer frame_too_large (and hang up) without ever buffering the rest.
    let flood = vec![b'x'; 64 << 10];
    let resp = raw_exchange(&addr, &flood).expect("typed error before EOF");
    assert_eq!(error_code(&resp), "frame_too_large", "{resp}");

    assert_still_serving(&addr);
    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "leaked: {:?}", dbscan_threads());
}

#[test]
fn slow_loris_connections_are_evicted_on_the_idle_deadline() {
    let _g = lock();
    let (handle, addr) = tcp_server(|cfg| cfg.conn_timeout = Some(Duration::from_millis(150)));

    // Connect, trickle half a frame, then stall past the idle deadline.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"{\"verb\":").expect("write");
    let mut resp = String::new();
    let n = BufReader::new(&s).read_line(&mut resp).unwrap_or(0);
    if n > 0 {
        assert_eq!(error_code(&resp), "conn_timeout", "{resp}");
    }
    // Whether or not the goodbye line won the race with the close, the
    // eviction must be accounted and the daemon must still serve.
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let t0 = std::time::Instant::now();
    loop {
        let health = client.call(&verb("health")).expect("health");
        let evicted = health
            .get("stats")
            .and_then(|st| st.get("evicted_conns"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if evicted >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "stalled connection was never evicted: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(s);
    assert_still_serving(&addr);
    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "leaked: {:?}", dbscan_threads());
}

#[test]
fn the_connection_cap_sheds_excess_connections_with_a_typed_error() {
    let _g = lock();
    let (handle, addr) = tcp_server(|cfg| cfg.max_conns = 2);

    // Fill both slots with idle-but-live connections.
    let held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).expect("connect")).collect();
    // Give the accept loop a moment to register both.
    std::thread::sleep(Duration::from_millis(50));

    // The third connection is turned away with too_many_conns.
    let mut turned_away = String::new();
    let s3 = TcpStream::connect(addr).expect("connect");
    s3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let got = BufReader::new(s3).read_line(&mut turned_away).unwrap_or(0);
    assert!(got > 0, "capped connection should get a goodbye line");
    assert_eq!(error_code(&turned_away), "too_many_conns", "{turned_away}");

    // Releasing a slot restores service.
    drop(held);
    let t0 = std::time::Instant::now();
    loop {
        if let Ok(mut client) = Client::connect_tcp(&addr.to_string()) {
            if client.call(&verb("health")).is_ok() {
                break;
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "slot never freed after the held connections closed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let health = client.call(&verb("health")).expect("health");
    let rejected = health
        .get("stats")
        .and_then(|st| st.get("rejected_conns"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(rejected >= 1, "rejected connection not accounted: {health:?}");
    drop(client);
    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "leaked: {:?}", dbscan_threads());
}

#[test]
fn a_dangling_unterminated_frame_is_served_at_eof() {
    let _g = lock();
    let (handle, addr) = tcp_server(|_| {});

    // A well-formed request missing its trailing newline, then shutdown of
    // the write half: the daemon serves it at EOF instead of dropping it.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"{\"verb\": \"health\"}").expect("write");
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut line = String::new();
    let n = BufReader::new(&mut s).read_line(&mut line).expect("read response");
    assert!(n > 0, "EOF-terminated frame got no response");
    let v = dbscan_server::json::parse(line.trim()).expect("json response");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
    drop(s);

    assert_still_serving(&addr);
    handle.shutdown();
    handle.wait();
    assert!(dbscan_threads().is_empty(), "leaked: {:?}", dbscan_threads());
}
