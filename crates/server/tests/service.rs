//! End-to-end daemon tests over real sockets: bit-identity with standalone
//! runs, the structure cache, admission control, pressure degradation (with
//! the Sandwich guarantee), cancellation, drain semantics, and thread
//! hygiene.

mod common;

use common::*;
use dbscan_core::algorithms::{grid_exact, rho_approx};
use dbscan_core::DbscanParams;
use dbscan_eval::sandwich::{check_sandwich, SandwichOutcome};
use dbscan_server::json::{obj, Value};
use dbscan_server::{label_hash, start, Bind, Client, ServerConfig};
use std::time::Duration;

const EPS: f64 = 6.0;
const MIN_PTS: usize = 4;

fn tcp_server(tweak: impl FnOnce(&mut ServerConfig)) -> (dbscan_server::ServerHandle, Client) {
    let mut cfg = ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let handle = start(cfg).expect("start server");
    let addr = handle.tcp_addr.expect("tcp bind reports its address");
    let client = Client::connect_tcp(&addr.to_string()).expect("connect");
    (handle, client)
}

fn submit_ok(client: &mut Client, req: &Value) -> u64 {
    let resp = client.call(req).expect("submit call");
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "submit should be admitted: {resp:?}"
    );
    resp.get("job").and_then(Value::as_u64).expect("job id")
}

#[test]
fn served_exact_run_is_bit_identical_to_standalone() {
    let _g = lock();
    let pts = blob_points(900, 0x5eed);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let standalone = grid_exact(&pts, params);

    let (handle, mut client) = tcp_server(|_| {});
    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let resp = client.call(&result_req(job)).expect("result call");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(resp.get("outcome").and_then(Value::as_str), Some("exact"));
    assert_eq!(
        resp.get("num_clusters").and_then(Value::as_u64),
        Some(standalone.num_clusters as u64)
    );
    let served = labels_of(&resp);
    assert_eq!(served, standalone.flat_labels(), "labels must match bit-for-bit");
    assert_eq!(
        resp.get("label_hash").and_then(Value::as_str),
        Some(format!("{:016x}", label_hash(&standalone.flat_labels())).as_str())
    );

    handle.shutdown();
    handle.wait();
}

#[test]
fn repeat_queries_hit_the_structure_cache_with_identical_output() {
    let _g = lock();
    let pts = blob_points(700, 0xcafe);
    let (handle, mut client) = tcp_server(|_| {});

    let first = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r1 = client.call(&result_req(first)).expect("result 1");
    assert_eq!(r1.get("from_cache").and_then(Value::as_bool), Some(false));

    // Same dataset + params again: the grid/core structure is reused.
    let second = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r2 = client.call(&result_req(second)).expect("result 2");
    assert_eq!(r2.get("from_cache").and_then(Value::as_bool), Some(true));
    assert_eq!(
        r1.get("label_hash").and_then(Value::as_str),
        r2.get("label_hash").and_then(Value::as_str),
        "cached structure must produce the identical clustering"
    );

    // A rho-approximate query over the same (dataset, eps, MinPts) reuses the
    // same cached cells — the approximate counters are built lazily per rho.
    let approx = submit_ok(
        &mut client,
        &submit_req(
            &pts,
            EPS,
            MIN_PTS,
            vec![
                ("algorithm", Value::Str("approx".to_string())),
                ("rho", Value::Num(0.01)),
            ],
        ),
    );
    let r3 = client.call(&result_req(approx)).expect("result 3");
    assert_eq!(r3.get("from_cache").and_then(Value::as_bool), Some(true));
    assert_eq!(r3.get("rho_used").and_then(Value::as_f64), Some(0.01));

    let health = client.call(&verb("health")).expect("health");
    let cache = health.get("stats").and_then(|s| s.get("cache")).expect("cache stats");
    assert!(cache.get("hits").and_then(Value::as_u64).unwrap() >= 2);
    assert_eq!(cache.get("entries").and_then(Value::as_u64), Some(1));

    handle.shutdown();
    handle.wait();
}

#[test]
fn truncated_partial_build_never_poisons_the_structure_cache() {
    let _g = lock();
    let pts = blob_points(900, 0x7a11);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let standalone = grid_exact(&pts, params);
    let (handle, mut client) = tcp_server(|_| {});

    // A zero-budget partial job truncates the structure build: the result is
    // an honest incomplete prefix ...
    let partial = submit_ok(
        &mut client,
        &submit_req(
            &pts,
            EPS,
            MIN_PTS,
            vec![
                ("deadline", Value::Str("0us".to_string())),
                ("deadline_policy", Value::Str("partial".to_string())),
            ],
        ),
    );
    let r1 = client.call(&result_req(partial)).expect("partial result");
    assert_eq!(r1.get("state").and_then(Value::as_str), Some("done"), "{r1:?}");
    assert_eq!(r1.get("outcome").and_then(Value::as_str), Some("partial"));
    assert_eq!(r1.get("complete").and_then(Value::as_bool), Some(false));

    // ... and must NOT be cached: a full-budget request for the identical
    // (data, eps, min_pts) rebuilds from scratch and is bit-identical to the
    // standalone exact run, not the truncated prefix.
    let full = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r2 = client.call(&result_req(full)).expect("full result");
    assert_eq!(r2.get("outcome").and_then(Value::as_str), Some("exact"), "{r2:?}");
    assert_eq!(r2.get("complete").and_then(Value::as_bool), Some(true));
    assert_eq!(
        r2.get("from_cache").and_then(Value::as_bool),
        Some(false),
        "a truncated build must not have been cached: {r2:?}"
    );
    assert_eq!(labels_of(&r2), standalone.flat_labels());

    // The complete structure from the full-budget run IS cached.
    let again = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r3 = client.call(&result_req(again)).expect("repeat result");
    assert_eq!(r3.get("from_cache").and_then(Value::as_bool), Some(true));
    assert_eq!(labels_of(&r3), standalone.flat_labels());

    handle.shutdown();
    handle.wait();
}

#[test]
fn terminal_records_are_released_after_result_delivery() {
    let _g = lock();
    let pts = blob_points(300, 0x6c6c);
    let (handle, mut client) = tcp_server(|_| {});

    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r = client.call(&result_req(job)).expect("result");
    assert_eq!(r.get("state").and_then(Value::as_str), Some("done"));

    // `result` is consume-once: the record (points + labels) is released on
    // delivery, so the daemon does not retain per-job memory forever.
    for verb_name in ["status", "result"] {
        let gone = client
            .call(&obj(vec![
                ("verb", Value::Str(verb_name.to_string())),
                ("job", Value::Num(job as f64)),
            ]))
            .expect("post-delivery call");
        assert_eq!(
            gone.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
            Some("unknown_job"),
            "{verb_name} after delivery should not find the job: {gone:?}"
        );
    }

    // Counters are unaffected by record retirement.
    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
}

#[test]
fn saturated_queue_sheds_with_retry_after_and_never_hangs() {
    let _g = lock();
    let pts = blob_points(200, 0xbeef);
    let (handle, mut client) = tcp_server(|cfg| {
        cfg.workers = 1;
        cfg.max_queue = 1;
    });

    // Occupy the single executor, then fill the queue's single slot.
    let running = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("pause_ms", Value::Num(400.0))]),
    );
    wait_for_state(&mut client, running, "running");
    let queued = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("pause_ms", Value::Num(50.0))]),
    );

    // The queue is at max_queue: the next submission is shed, not parked.
    let shed = client
        .call(&submit_req(&pts, EPS, MIN_PTS, vec![]))
        .expect("shed submit");
    assert_eq!(shed.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        shed.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("overloaded")
    );
    assert!(
        shed.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 10,
        "shed response must carry a usable retry hint: {shed:?}"
    );

    // The admitted jobs still complete normally.
    for job in [running, queued] {
        let r = client.call(&result_req(job)).expect("result");
        assert_eq!(r.get("state").and_then(Value::as_str), Some("done"), "{r:?}");
    }

    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.get("shed_jobs").and_then(Value::as_u64), Some(1));
    // Accounting invariant at quiescence: every admitted job is accounted
    // for exactly once; shed jobs are counted separately.
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(2));
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(2));
}

#[test]
fn pressure_degradation_is_sandwich_valid_and_bit_identical_to_standalone_approx() {
    let _g = lock();
    let pts = blob_points(900, 0xd06);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    const OVERLOAD_RHO: f64 = 0.05;

    // The standalone picture the server's degraded answer must match, plus
    // the Theorem 3 sandwich it must sit inside.
    let inner = grid_exact(&pts, params);
    let approx = rho_approx(&pts, params, OVERLOAD_RHO);
    let outer = grid_exact(&pts, params.inflate(OVERLOAD_RHO));
    assert_eq!(
        check_sandwich(&inner, &approx, &outer),
        SandwichOutcome::Holds,
        "the overload rho must itself be Sandwich-valid on this dataset"
    );

    let (handle, mut client) = tcp_server(|cfg| {
        cfg.workers = 1;
        cfg.pressure_threshold = Some(Duration::from_millis(1));
        cfg.overload_rho = OVERLOAD_RHO;
    });

    // Hold the executor so the exact job ages past the pressure threshold.
    // The blocker is approx: only exact jobs are eligible for degradation,
    // so the counter below can attribute the one degrade unambiguously.
    let blocker = submit_ok(
        &mut client,
        &submit_req(
            &pts,
            EPS,
            MIN_PTS,
            vec![
                ("algorithm", Value::Str("approx".to_string())),
                ("pause_ms", Value::Num(150.0)),
            ],
        ),
    );
    wait_for_state(&mut client, blocker, "running");
    let job = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));

    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("done"), "{resp:?}");
    assert_eq!(resp.get("outcome").and_then(Value::as_str), Some("degraded"));
    assert_eq!(resp.get("degraded_by_server").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("rho_used").and_then(Value::as_f64), Some(OVERLOAD_RHO));
    // The degraded answer is exactly the standalone rho-approximate run —
    // load shedding swaps the algorithm, it does not invent output.
    assert_eq!(labels_of(&resp), approx.flat_labels());

    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.get("degraded_jobs").and_then(Value::as_u64), Some(1));
}

#[test]
fn cancel_verb_stops_queued_and_running_jobs() {
    let _g = lock();
    let pts = blob_points(200, 0xace);
    let (handle, mut client) = tcp_server(|cfg| cfg.workers = 1);

    let running = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("pause_ms", Value::Num(2000.0))]),
    );
    wait_for_state(&mut client, running, "running");
    let queued = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("pause_ms", Value::Num(2000.0))]),
    );

    // Cancelling a queued job is immediate; cancelling a running one trips
    // its RunCtl and lands within one cooperative slice.
    let c1 = client
        .call(&obj(vec![
            ("verb", Value::Str("cancel".to_string())),
            ("job", Value::Num(queued as f64)),
        ]))
        .expect("cancel queued");
    assert_eq!(c1.get("state").and_then(Value::as_str), Some("cancelled"));
    client
        .call(&obj(vec![
            ("verb", Value::Str("cancel".to_string())),
            ("job", Value::Num(running as f64)),
        ]))
        .expect("cancel running");
    let r = client.call(&result_req(running)).expect("result");
    assert_eq!(r.get("state").and_then(Value::as_str), Some("cancelled"), "{r:?}");

    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.get("cancelled").and_then(Value::as_u64), Some(2));
}

#[test]
fn per_request_deadline_fails_typed_without_harming_the_daemon() {
    let _g = lock();
    let pts = blob_points(200, 0xfade);
    let (handle, mut client) = tcp_server(|_| {});

    let job = submit_ok(
        &mut client,
        &submit_req(
            &pts,
            EPS,
            MIN_PTS,
            vec![
                ("pause_ms", Value::Num(100.0)),
                ("deadline", Value::Str("1ms".to_string())),
            ],
        ),
    );
    let resp = client.call(&result_req(job)).expect("result");
    assert_eq!(resp.get("state").and_then(Value::as_str), Some("failed"));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("deadline_exceeded"),
        "{resp:?}"
    );

    // The daemon is unharmed: the next job completes.
    let ok = submit_ok(&mut client, &submit_req(&pts, EPS, MIN_PTS, vec![]));
    let r = client.call(&result_req(ok)).expect("result");
    assert_eq!(r.get("state").and_then(Value::as_str), Some("done"));

    handle.shutdown();
    handle.wait();
}

#[test]
fn unix_socket_roundtrip_drain_refusal_and_zero_thread_leak() {
    let _g = lock();
    assert!(
        dbscan_threads().is_empty(),
        "suite serialization broken: daemon threads alive at test start"
    );
    let sock = std::env::temp_dir().join(format!("dbscan-test-{}.sock", std::process::id()));
    let pts = blob_points(400, 0xf00d);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();

    let handle = start(ServerConfig {
        bind: Bind::Unix(sock.clone()),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start unix server");
    let mut client = Client::connect_unix_retry(&sock, Duration::from_secs(2)).expect("connect");

    let health = client.call(&verb("health")).expect("health");
    assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));

    // Keep the drain non-trivial: a job is still running when we ask for
    // shutdown, and the daemon must finish it before exiting.
    let job = submit_ok(
        &mut client,
        &submit_req(&pts, EPS, MIN_PTS, vec![("pause_ms", Value::Num(200.0))]),
    );
    wait_for_state(&mut client, job, "running");
    let down = client.call(&verb("shutdown")).expect("shutdown verb");
    assert_eq!(down.get("draining").and_then(Value::as_bool), Some(true));

    // Draining: new submissions are refused with a typed code.
    let refused = client
        .call(&submit_req(&pts, EPS, MIN_PTS, vec![]))
        .expect("submit while draining");
    assert_eq!(
        refused.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("draining")
    );

    // The in-flight job still completes (graceful drain, not abort).
    let r = client.call(&result_req(job)).expect("result");
    assert_eq!(r.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(labels_of(&r), grid_exact(&pts, params).flat_labels());

    let stats = handle.wait();
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(1));
    assert!(
        dbscan_threads().is_empty(),
        "daemon threads leaked past wait(): {:?}",
        dbscan_threads()
    );
    assert!(!sock.exists(), "unix socket file should be unlinked on shutdown");
}

#[test]
fn invalid_requests_get_typed_errors() {
    let _g = lock();
    let pts = blob_points(50, 0xbad);
    let (handle, mut client) = tcp_server(|_| {});

    let bad_eps = client
        .call(&submit_req(&pts, -1.0, MIN_PTS, vec![]))
        .expect("bad eps");
    assert_eq!(
        bad_eps.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("invalid_params")
    );
    let bad_rho = client
        .call(&submit_req(
            &pts,
            EPS,
            MIN_PTS,
            vec![
                ("algorithm", Value::Str("approx".to_string())),
                ("rho", Value::Num(-0.5)),
            ],
        ))
        .expect("bad rho");
    assert_eq!(
        bad_rho.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("invalid_rho")
    );
    let unknown = client
        .call(&obj(vec![
            ("verb", Value::Str("result".to_string())),
            ("job", Value::Num(999.0)),
        ]))
        .expect("unknown job");
    assert_eq!(
        unknown.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("unknown_job")
    );
    let garbage = client.call(&verb("frobnicate")).expect("unknown verb");
    assert_eq!(
        garbage.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("bad_request")
    );

    handle.shutdown();
    handle.wait();
}
