//! Tenant fault-isolation proof (fault-injection builds only): one daemon,
//! eight concurrent clients — two submit fault-seeded jobs that panic a
//! worker, one submits a dataset whose index exceeds the per-request byte
//! budget, and the remaining five are healthy. The faulty tenants get typed
//! error lines; the healthy five complete bit-identically to standalone
//! runs; the daemon keeps serving throughout, drains cleanly, and leaks no
//! threads.

#![cfg(feature = "fault-injection")]

mod common;

use common::*;
use dbscan_core::algorithms::grid_exact;
use dbscan_core::DbscanParams;
use dbscan_server::json::Value;
use dbscan_server::{label_hash, start, Bind, Client, ServerConfig};

const EPS: f64 = 6.0;
const MIN_PTS: usize = 4;

#[test]
fn faulty_tenants_cannot_harm_healthy_ones() {
    let _g = lock();
    assert!(dbscan_threads().is_empty(), "daemon threads alive at test start");

    let healthy_pts = blob_points(800, 0x11);
    let huge_pts = blob_points(60_000, 0x22);
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let expected = grid_exact(&healthy_pts, params).flat_labels();
    let expected_hash = format!("{:016x}", label_hash(&expected));

    // The byte budget sits between the healthy dataset's index footprint and
    // the huge one's, so exactly one tenant trips the resource limit.
    let handle = start(ServerConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 2,
        max_index_bytes: Some(512 << 10),
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.tcp_addr.unwrap().to_string();

    // Eight tenants, each on its own connection, all in flight concurrently.
    let tenants: Vec<std::thread::JoinHandle<(String, Value)>> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let pts = if i == 2 { huge_pts.clone() } else { healthy_pts.clone() };
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                let mut extra: Vec<(&str, Value)> = Vec::new();
                let kind = match i {
                    // Tenants 0 and 1: deterministic worker panic in the
                    // parallel edge phase, recovery policy "fail" so the
                    // panic surfaces as a typed error instead of healing.
                    0 | 1 => {
                        extra.push(("faults", Value::Str("seed=42,edge=1".to_string())));
                        extra.push(("recovery", Value::Str("fail".to_string())));
                        "faulted"
                    }
                    // Tenant 2: index footprint past --max-index-bytes.
                    2 => "oversized",
                    _ => "healthy",
                };
                let resp = client
                    .call(&submit_req(&pts, EPS, MIN_PTS, extra))
                    .expect("submit");
                let job = resp.get("job").and_then(Value::as_u64).expect("admitted");
                let result = client.call(&result_req(job)).expect("result");
                (kind.to_string(), result)
            })
        })
        .collect();

    let mut healthy = 0;
    for t in tenants {
        let (kind, resp) = t.join().expect("tenant thread");
        let state = resp.get("state").and_then(Value::as_str).unwrap_or("?");
        let code = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str);
        match kind.as_str() {
            "faulted" => {
                assert_eq!(state, "failed", "faulted tenant should fail typed: {resp:?}");
                assert_eq!(code, Some("worker_panicked"), "{resp:?}");
            }
            "oversized" => {
                assert_eq!(state, "failed", "oversized tenant should fail typed: {resp:?}");
                assert_eq!(code, Some("resource_limit"), "{resp:?}");
            }
            _ => {
                assert_eq!(state, "done", "healthy tenant must complete: {resp:?}");
                assert_eq!(
                    resp.get("label_hash").and_then(Value::as_str),
                    Some(expected_hash.as_str()),
                    "healthy tenant diverged from the standalone run: {resp:?}"
                );
                assert_eq!(labels_of(&resp), expected);
                healthy += 1;
            }
        }
    }
    assert_eq!(healthy, 5);

    // The daemon survived its faulty tenants and still serves.
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    let health = client.call(&verb("health")).expect("health");
    assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));

    // A metrics scrape at quiescence must agree with the job ledger: the
    // exposition reads the same registry the final stats envelope snapshots,
    // and the two seeded-panic tenants surface in worker_panics_total.
    let pairs = dbscan_server::parse_exposition(&client.metrics_text().expect("metrics"));
    let metric = |name: &str| {
        let key = format!("dbscan_server_{name}");
        pairs
            .iter()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("metric {key} missing"))
            .1
    };
    assert_eq!(metric("jobs_submitted_total"), 8.0);
    assert_eq!(metric("jobs_completed_total"), 5.0);
    assert_eq!(metric("jobs_failed_total"), 3.0);
    assert_eq!(metric("jobs_cancelled_total"), 0.0);
    assert!(
        metric("worker_panics_total") >= 2.0,
        "both fault-seeded tenants should record their worker panics: {}",
        metric("worker_panics_total")
    );
    assert_eq!(
        metric("jobs_submitted_total"),
        metric("jobs_completed_total") + metric("jobs_failed_total")
            + metric("jobs_cancelled_total"),
        "accounting invariant must hold under chaos"
    );
    // Every terminal job recorded one observation per latency histogram.
    assert_eq!(metric("service_time_us_count"), 8.0);
    assert_eq!(metric("end_to_end_us_count"), 8.0);

    handle.shutdown();
    let stats = handle.wait();
    assert_eq!(stats.get("submitted").and_then(Value::as_u64), Some(8));
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(5));
    assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(3));
    assert_eq!(stats.get("cancelled").and_then(Value::as_u64), Some(0));
    assert!(
        dbscan_threads().is_empty(),
        "daemon threads leaked past wait(): {:?}",
        dbscan_threads()
    );
}
