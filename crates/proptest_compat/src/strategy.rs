//! The [`Strategy`] trait and the concrete strategies the workspace uses:
//! numeric ranges, tuples, [`Just`], [`AnyStrategy`] and `prop_map`.

use crate::Arbitrary;
use rand_compat::rngs::StdRng;
use rand_compat::RngCore;

/// A generator of values of type `Value`. Unlike upstream proptest there is
/// no value tree / shrinking machinery: `generate` directly produces one
/// pseudo-random value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Result of [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(((rng.next_u64() as u128) % span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(((rng.next_u64() as u128) % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Result of [`crate::prop_oneof!`]: picks one of several boxed strategies
/// of a common value type, with the given relative weights.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.options {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Boxing helper for [`crate::prop_oneof!`] (a cast inside the macro cannot
/// name the inferred value type).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
