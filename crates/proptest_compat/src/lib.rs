//! Dependency-free stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the [`proptest!`] test macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], range/tuple/`vec`/[`any`] strategies, `prop_map`,
//! weighted [`prop_oneof!`] unions, and [`ProptestConfig::with_cases`].
//!
//! The build environment has no crates.io access, so the workspace aliases
//! the `proptest` dependency name to this crate. Semantics: each test runs
//! `cases` deterministic pseudo-random inputs (seeded from the test's
//! module path, so runs are reproducible); a failing case panics with the
//! standard assertion message. There is **no shrinking** — the first
//! failing input is reported as-is.

#![forbid(unsafe_code)]

use rand_compat::rngs::StdRng;
use rand_compat::SeedableRng;

pub mod strategy;

pub mod collection;

/// Per-test configuration. Only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one test case: seeded from the test name and the
/// case index so every run of the suite sees the same inputs.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Types with a canonical "arbitrary" strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand_compat::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand_compat::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand_compat::Rng;
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-8i32..9) as f64;
        mag * 10f64.powf(exp)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(core::marker::PhantomData)
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` — module-style access to the
    /// strategy combinators (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Mirror of `proptest::prop_oneof!`: `weight => strategy` entries (or bare
/// strategies, each weight 1) whose value types unify; generation picks one
/// entry with probability proportional to its weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` attribute followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            x in 0.0..10.0f64,
            n in 1usize..50,
            pair in (-1.0..1.0f64, 0u32..=5),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..50).contains(&n));
            prop_assert!((-1.0..1.0).contains(&pair.0));
            prop_assert!(pair.1 <= 5, "got {}", pair.1);
        }

        #[test]
        fn vec_and_map(
            v in prop::collection::vec((0.0..4.0f64, 0.0..4.0f64), 1..30)
                .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<f64>>()),
            w in prop::collection::vec(0.0..1.0f64, 3),
            seed in any::<u64>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|&s| (0.0..8.0).contains(&s)));
            prop_assert_eq!(w.len(), 3);
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x::y", 3);
        let mut b = crate::test_rng("x::y", 3);
        use rand_compat::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
