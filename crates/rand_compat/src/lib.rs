//! Dependency-free stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace aliases the `rand` dependency name to this crate (see
//! `[workspace.dependencies]` in the root manifest). The streams are
//! deterministic per seed but are **not** bit-compatible with upstream
//! `rand`; nothing in the repository depends on upstream streams — all
//! tests are property-based and all datasets are regenerated from seeds.

#![forbid(unsafe_code)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let t = f64::sample(rng);
        let v = self.start + t * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start.max(f64::from_bits(self.end.to_bits() - 1))
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let r = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(r)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The convenience sampling methods the workspace calls on any RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG: xoshiro256++ seeded via SplitMix64. Statistically
    /// solid for test-data generation; not cryptographic, and not stream
    /// compatible with upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1234_5678_9ABC_DEF0;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // The stream actually covers the interval.
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = r.gen_range(0u32..=5);
            assert!(z <= 5);
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_impl(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(1);
        let v = takes_impl(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
