//! End-to-end tests of the `dbscan` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbscan"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dbscan-cli-test-{}-{name}", std::process::id()))
}

fn write_two_blob_csv(path: &PathBuf) {
    let mut s = String::new();
    for i in 0..10 {
        s.push_str(&format!("{},0.0\n", i as f64 * 0.1));
        s.push_str(&format!("{},50.0\n", i as f64 * 0.1));
    }
    s.push_str("500.0,500.0\n"); // noise
    std::fs::write(path, s).unwrap();
}

#[test]
fn clusters_csv_and_writes_labels() {
    let input = tmp("in.csv");
    let output = tmp("out.csv");
    write_two_blob_csv(&input);
    let status = bin()
        .args(["--input"])
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--algorithm", "exact"])
        .arg("--output")
        .arg(&output)
        .arg("--quiet")
        .status()
        .expect("run dbscan");
    assert!(status.success());
    let labeled = std::fs::read_to_string(&output).unwrap();
    let labels: Vec<i64> = labeled
        .lines()
        .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(labels.len(), 21);
    assert_eq!(labels[20], -1, "outlier must be noise");
    // Two distinct non-noise labels.
    let mut distinct: Vec<i64> = labels.iter().copied().filter(|&l| l >= 0).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct.len(), 2);
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&output).ok();
}

#[test]
fn all_algorithms_accepted() {
    let input = tmp("algos.csv");
    write_two_blob_csv(&input);
    for algo in ["exact", "approx", "kdd96", "cit08", "gunawan2d"] {
        let out = bin()
            .arg("--input")
            .arg(&input)
            .args(["--eps", "0.5", "--min-pts", "3", "--algorithm", algo])
            .output()
            .expect("run dbscan");
        assert!(out.status.success(), "{algo} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("2 clusters"), "{algo}: {stdout}");
    }
    std::fs::remove_file(&input).ok();
}

#[test]
fn stats_flag_emits_schema_json_for_every_algorithm() {
    let input = tmp("stats.csv");
    write_two_blob_csv(&input);
    for algo in ["exact", "approx", "kdd96", "cit08", "gunawan2d"] {
        let out = bin()
            .arg("--input")
            .arg(&input)
            .args([
                "--eps",
                "0.5",
                "--min-pts",
                "3",
                "--algorithm",
                algo,
                "--stats",
            ])
            .output()
            .expect("run dbscan");
        assert!(out.status.success(), "{algo} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        // --stats reserves stdout for the JSON line (summary goes to stderr).
        assert_eq!(stdout.lines().count(), 1, "{algo}: stdout not pure JSON");
        let line = stdout.lines().next().unwrap_or_default();
        assert!(
            line.starts_with("{\"schema\":\"dbscan-stats/v7\","),
            "{algo}: {line}"
        );
        // The v3 resilience counters are part of every report.
        for key in ["\"worker_panics\":", "\"sequential_fallbacks\":"] {
            assert!(line.contains(key), "{algo} missing {key}: {line}");
        }
        assert!(
            line.contains(&format!("\"algorithm\":\"{algo}\"")),
            "{algo}"
        );
        assert!(line.contains("\"num_clusters\":2"), "{algo}: {line}");
        // Phase and counter objects are present with their stable keys —
        // including the v4 integer-nanosecond phases.
        for key in [
            "\"total_s\":",
            "\"grid_build_s\":",
            "\"phases_ns\":{\"grid_build\":",
            "\"edge_tests\":",
        ] {
            assert!(line.contains(key), "{algo} missing {key}: {line}");
        }
        // Untraced runs must not claim histogram data.
        assert!(!line.contains("\"histograms\""), "{algo}: {line}");
        assert!(line.ends_with("}}"), "{algo}: {line}");
    }
    std::fs::remove_file(&input).ok();
}

#[test]
fn stats_with_threads_runs_parallel_variants() {
    let input = tmp("stats-par.csv");
    write_two_blob_csv(&input);
    for algo in ["exact", "approx"] {
        let out = bin()
            .arg("--input")
            .arg(&input)
            .args([
                "--eps",
                "0.5",
                "--min-pts",
                "3",
                "--algorithm",
                algo,
                "--threads",
                "2",
                "--stats",
                "--quiet",
            ])
            .output()
            .expect("run dbscan");
        assert!(out.status.success(), "{algo} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("\"threads\":2"), "{algo}: {stdout}");
        assert!(stdout.contains("\"num_clusters\":2"), "{algo}: {stdout}");
    }
    // Algorithms without a parallel variant reject --threads cleanly.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps",
            "0.5",
            "--min-pts",
            "3",
            "--algorithm",
            "kdd96",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&input).ok();
}

/// `--threads 0` resolves to "all cores" in the core layer; the v6 envelope
/// records both sides — the raw request (`threads_requested: 0`) and the
/// resolved worker count the run actually used (`threads`, ≥ 1, equal to the
/// host's `cores` for a 0 request).
#[test]
fn threads_zero_means_all_cores() {
    let input = tmp("threads0.csv");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact", "--threads", "0", "--stats",
            "--quiet",
        ])
        .output()
        .expect("run dbscan");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"threads_requested\":0"), "{stdout}");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    assert!(
        stdout.contains(&format!("\"cores\":{cores}")),
        "{stdout}"
    );
    assert!(
        stdout.contains(&format!("\"threads\":{cores}")),
        "a 0 request must resolve to all {cores} cores: {stdout}"
    );
    assert!(stdout.contains("\"num_clusters\":2"), "{stdout}");
    std::fs::remove_file(&input).ok();
}

/// DBSCAN_THREADS is the default thread count for the parallel-capable
/// algorithms; an explicit `--threads` overrides it, an unparsable value is
/// a usage error, and algorithms without a parallel variant ignore it.
/// (Tested through the binary — a separate process — because mutating the
/// environment inside the test harness races with other test threads.)
#[test]
fn dbscan_threads_env_is_default_and_validated() {
    let input = tmp("threads-env.csv");
    write_two_blob_csv(&input);
    let stats_args = ["--eps", "0.5", "--min-pts", "3", "--stats", "--quiet"];

    // Env var alone routes to the parallel path.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(stats_args)
        .args(["--algorithm", "exact"])
        .env("DBSCAN_THREADS", "2")
        .output()
        .expect("run dbscan");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"threads\":2"), "{stdout}");
    assert!(stdout.contains("\"num_clusters\":2"), "{stdout}");

    // Explicit --threads wins over the env var.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(stats_args)
        .args(["--algorithm", "approx", "--threads", "3"])
        .env("DBSCAN_THREADS", "2")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"threads\":3"), "{stdout}");

    // Unparsable values are a usage error, not a silent sequential run.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(stats_args)
        .args(["--algorithm", "exact"])
        .env("DBSCAN_THREADS", "lots")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("DBSCAN_THREADS"), "stderr: {err}");

    // Algorithms without a parallel variant ignore the env var entirely.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(stats_args)
        .args(["--algorithm", "kdd96"])
        .env("DBSCAN_THREADS", "lots")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_file(&input).ok();
}

#[test]
fn gunawan2d_rejects_non_2d_input() {
    let input = tmp("g3d.csv");
    std::fs::write(&input, "0,0,0\n0.1,0,0\n0.2,0,0\n").unwrap();
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "1", "--min-pts", "2", "--algorithm", "gunawan2d"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires 2D"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn bad_usage_exits_2() {
    let status = bin().arg("--eps").arg("1.0").status().unwrap();
    assert_eq!(status.code(), Some(2));
}

#[test]
fn missing_file_exits_1() {
    let status = bin()
        .args([
            "--input",
            "/nonexistent/nope.csv",
            "--eps",
            "1",
            "--min-pts",
            "2",
        ])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn unknown_algorithm_exits_1() {
    let input = tmp("badalgo.csv");
    write_two_blob_csv(&input);
    let status = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--algorithm", "kmeans"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
    std::fs::remove_file(&input).ok();
}

/// Parallel runs record their recovery policy in the stats envelope; the
/// default is "fail" and `--recovery fallback-sequential` is accepted.
#[test]
fn recovery_flag_is_parsed_and_reported() {
    let input = tmp("recovery.csv");
    write_two_blob_csv(&input);
    let base = [
        "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact", "--threads", "2", "--stats",
        "--quiet",
    ];
    let out = bin().arg("--input").arg(&input).args(base).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"recovery\":\"fail\""), "{stdout}");

    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(base)
        .args(["--recovery", "fallback-sequential"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"recovery\":\"fallback-sequential\""),
        "{stdout}"
    );

    // Unknown policies are a usage error naming the flag.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(base)
        .args(["--recovery", "shrug"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--recovery"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

/// `--rho` values the approximate algorithm cannot use are usage errors
/// (exit 2) that name the flag, caught before any data is read.
#[test]
fn bad_rho_is_a_usage_error_naming_the_flag() {
    let input = tmp("badrho.csv");
    write_two_blob_csv(&input);
    for bad in ["0", "-0.5", "NaN", "inf", "1e-15"] {
        let out = bin()
            .arg("--input")
            .arg(&input)
            .args([
                "--eps", "0.5", "--min-pts", "3", "--algorithm", "approx", "--rho", bad,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "rho={bad}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--rho"), "rho={bad} stderr: {err}");
    }
    // eps * (1 + rho) overflowing is also rejected up front.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "1e300", "--min-pts", "3", "--algorithm", "approx", "--rho", "1e10",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--rho"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

/// Malformed CSV rows exit 1 and print the library's Parse diagnostic
/// verbatim: the 1-based line number and the offending token.
#[test]
fn ragged_csv_reports_line_and_token() {
    let input = tmp("raggedcli.csv");
    std::fs::write(&input, "1,2\n3,4\n5,6,7\n").unwrap();
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "1", "--min-pts", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "stderr: {err}");
    assert!(err.contains("\"5,6,7\""), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

/// Bad tokens name themselves in the diagnostic.
#[test]
fn bad_float_reports_the_token() {
    let input = tmp("badtok.csv");
    std::fs::write(&input, "1,2\n3,wat\n").unwrap();
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "1", "--min-pts", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "stderr: {err}");
    assert!(err.contains("\"wat\""), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

/// Without the fault-injection feature compiled in, `--faults` is a usage
/// error pointing at the rebuild; with it, the plan parses and runs (covered
/// by scripts/verify.sh's chaos smoke stage).
#[test]
fn faults_flag_requires_the_feature() {
    let input = tmp("faults.csv");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact", "--threads", "2",
            "--faults", "seed=42,edge=1",
        ])
        .output()
        .unwrap();
    if cfg!(feature = "fault-injection") {
        // Plan parses; with default --recovery fail the injected panic is a
        // data-level error (exit 1), not a crash.
        assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("worker panicked"), "stderr: {err}");
    } else {
        assert_eq!(out.status.code(), Some(2));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("fault-injection"), "stderr: {err}");
    }
    std::fs::remove_file(&input).ok();
}

/// A byte budget too small for the grid is a typed resource error (exit 1).
#[test]
fn max_index_bytes_budget_is_enforced() {
    let input = tmp("budget.csv");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact", "--max-index-bytes", "16",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("memory budget"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn nan_input_is_a_clean_error() {
    let input = tmp("nan.csv");
    std::fs::write(&input, "1,2\nNaN,4\n").unwrap();
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "1", "--min-pts", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("non-finite"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}

/// `--stats-out` writes the v4 JSON to a file and leaves stdout for the
/// human-readable summary (no interleaving).
#[test]
fn stats_out_writes_file_and_keeps_stdout_clean() {
    let input = tmp("statsout.csv");
    let stats_path = tmp("statsout.json");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--algorithm", "exact"])
        .arg("--stats-out")
        .arg(&stats_path)
        .output()
        .expect("run dbscan");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Summary on stdout, no JSON there.
    assert!(stdout.contains("2 clusters"), "{stdout}");
    assert!(!stdout.contains("\"schema\""), "{stdout}");
    let json = std::fs::read_to_string(&stats_path).unwrap();
    assert!(json.starts_with("{\"schema\":\"dbscan-stats/v7\","), "{json}");
    assert!(json.contains("\"phases_ns\""), "{json}");
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&stats_path).ok();
}

/// `--trace` with the default chrome format writes a trace-event JSON array
/// with per-lane thread names; a 4-thread run names one track per worker.
#[test]
fn trace_chrome_export_has_worker_tracks() {
    let input = tmp("trace.csv");
    let trace_path = tmp("trace.json");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact", "--threads", "4", "--quiet",
        ])
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("run dbscan");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with('['), "{}", &trace[..trace.len().min(120)]);
    assert!(trace.ends_with(']'));
    assert!(trace.contains("\"ph\":\"X\""), "no complete spans in trace");
    assert!(trace.contains("\"pid\":1"));
    assert!(trace.contains("\"args\":{\"name\":\"coordinator\"}"));
    for w in 0..4 {
        assert!(
            trace.contains(&format!("\"args\":{{\"name\":\"worker-{w}\"}}")),
            "missing worker-{w} track"
        );
    }
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&trace_path).ok();
}

/// `--trace-format folded` emits flamegraph stacks, and `--trace` with
/// `--stats` adds the histograms section to the v4 envelope.
#[test]
fn trace_folded_export_and_histograms_in_stats() {
    let input = tmp("folded.csv");
    let trace_path = tmp("folded.txt");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps",
            "0.5",
            "--min-pts",
            "3",
            "--algorithm",
            "exact",
            "--stats",
            "--quiet",
            "--trace-format",
            "folded",
        ])
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("run dbscan");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let folded = std::fs::read_to_string(&trace_path).unwrap();
    // Sequential run: everything on the coordinator timeline, nested under
    // the total span, one "path value" pair per line.
    assert!(folded.lines().count() >= 2, "{folded}");
    assert!(folded.lines().any(|l| l.starts_with("coordinator;total")), "{folded}");
    for line in folded.lines() {
        let (path, value) = line.rsplit_once(' ').expect("folded line shape");
        assert!(path.starts_with("coordinator"), "{line}");
        value.parse::<u64>().expect("folded value is nanoseconds");
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"histograms\":{\"task_nanos\":"), "{stdout}");
    assert!(stdout.contains("\"edge_test_nanos\":{\"count\":"), "{stdout}");
    assert!(stdout.contains("\"events_dropped\":0"), "{stdout}");
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&trace_path).ok();
}

/// An unknown trace format is a usage error naming the flag.
#[test]
fn bad_trace_format_is_a_usage_error() {
    let out = bin()
        .args([
            "--input", "x.csv", "--eps", "1", "--min-pts", "2", "--trace-format", "svg",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace-format"), "stderr: {err}");
}

#[test]
fn svg_written_for_2d() {
    let input = tmp("svg-in.csv");
    let svg = tmp("plot.svg");
    write_two_blob_csv(&input);
    let status = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--quiet"])
        .arg("--svg")
        .arg(&svg)
        .status()
        .unwrap();
    assert!(status.success());
    let text = std::fs::read_to_string(&svg).unwrap();
    assert!(text.starts_with("<svg"));
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&svg).ok();
}

/// Duration flags reject tokens without a unit suffix, non-numeric values,
/// and negatives — all usage errors (exit 2) that name the flag and echo the
/// offending token, caught before any data is read.
#[test]
fn bad_duration_is_a_usage_error_naming_flag_and_token() {
    for (flag, bad) in [
        ("--deadline", "10"),
        ("--deadline", "abc"),
        ("--deadline", "-5s"),
        ("--stall-timeout", "2.5"),
        ("--stall-timeout", "nans"),
    ] {
        let out = bin()
            .args([
                "--input", "nonexistent.csv", "--eps", "1", "--min-pts", "2", flag, bad,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} {bad}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag), "{flag} {bad} stderr: {err}");
        assert!(err.contains(bad), "{flag} {bad} stderr: {err}");
    }
}

/// An unknown `--deadline-policy` is a usage error naming the flag.
#[test]
fn bad_deadline_policy_is_a_usage_error() {
    let out = bin()
        .args([
            "--input", "x.csv", "--eps", "1", "--min-pts", "2",
            "--deadline", "1s", "--deadline-policy", "panic",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--deadline-policy"), "stderr: {err}");
}

/// A `--degrade-rho` the approximate edge test cannot use is rejected up
/// front when the degrade policy can actually fire.
#[test]
fn bad_degrade_rho_is_a_usage_error() {
    let out = bin()
        .args([
            "--input", "x.csv", "--eps", "1", "--min-pts", "2",
            "--deadline", "1s", "--deadline-policy", "degrade", "--degrade-rho", "-0.5",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--degrade-rho"), "stderr: {err}");
}

/// A zero budget under the degrade policy still exits 0: every edge routes
/// through the Lemma-5 approximate counter and the stats envelope carries
/// the `deadline` object recording the degraded outcome.
#[test]
fn zero_budget_degrade_exits_zero_with_deadline_object() {
    let input = tmp("dl-degrade.csv");
    write_two_blob_csv(&input);
    for threads in [None, Some("2")] {
        let mut cmd = bin();
        cmd.arg("--input").arg(&input).args([
            "--eps", "0.5", "--min-pts", "3", "--algorithm", "exact",
            "--deadline", "0s", "--deadline-policy", "degrade",
            "--degrade-rho", "0.01", "--stats", "--quiet",
        ]);
        if let Some(t) = threads {
            cmd.args(["--threads", t]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "threads={threads:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout.lines().next().unwrap_or_default();
        assert!(line.starts_with("{\"schema\":\"dbscan-stats/v7\","), "{line}");
        assert!(line.contains("\"deadline\":{"), "{line}");
        assert!(line.contains("\"outcome\":\"degraded\""), "{line}");
        assert!(line.contains("\"policy\":\"degrade\""), "{line}");
        assert!(!line.contains("\"degraded_edges\":0,"), "{line}");
        // Degradation widens, never truncates: the run is still complete
        // and the two well-separated blobs are still found.
        assert!(line.contains("\"complete\":true"), "{line}");
        assert!(line.contains("\"num_clusters\":2"), "{line}");
    }
    // Without --deadline the envelope must not claim a deadline object.
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--stats", "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("\"deadline\":"), "{stdout}");
    std::fs::remove_file(&input).ok();
}

/// A zero budget under the abort policy exits 1 and prints the library's
/// typed diagnostic (phase, elapsed, remaining tasks) verbatim.
#[test]
fn zero_budget_abort_exits_one_with_diagnostic() {
    let input = tmp("dl-abort.csv");
    write_two_blob_csv(&input);
    for algo in ["exact", "approx", "kdd96", "cit08", "gunawan2d"] {
        let out = bin()
            .arg("--input")
            .arg(&input)
            .args([
                "--eps", "0.5", "--min-pts", "3", "--algorithm", algo,
                "--deadline", "0s", "--deadline-policy", "abort",
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{algo}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("deadline exceeded"), "{algo} stderr: {err}");
    }
    std::fs::remove_file(&input).ok();
}

/// The partial policy finalizes whatever the run discovered and marks the
/// envelope incomplete instead of failing.
#[test]
fn zero_budget_partial_exits_zero_and_marks_incomplete() {
    let input = tmp("dl-partial.csv");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args([
            "--eps", "0.5", "--min-pts", "3",
            "--deadline", "0s", "--deadline-policy", "partial", "--stats", "--quiet",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"outcome\":\"partial\""), "{stdout}");
    assert!(stdout.contains("\"complete\":false"), "{stdout}");
    std::fs::remove_file(&input).ok();
}

/// `--stall-timeout` watches parallel worker heartbeats; on a sequential run
/// there is nothing to watch and the flag is rejected with a clear message.
#[test]
fn stall_timeout_without_threads_is_rejected() {
    let input = tmp("dl-stall.csv");
    write_two_blob_csv(&input);
    let out = bin()
        .arg("--input")
        .arg(&input)
        .args(["--eps", "0.5", "--min-pts", "3", "--stall-timeout", "5s"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--stall-timeout"), "stderr: {err}");
    assert!(err.contains("--threads"), "stderr: {err}");
    std::fs::remove_file(&input).ok();
}
