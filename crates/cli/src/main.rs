//! `dbscan` — cluster a CSV of points from the command line.
//!
//! ```text
//! dbscan --input points.csv --eps 5000 --min-pts 100 [OPTIONS]
//!
//! OPTIONS
//!   --input FILE        CSV, one point per line, comma-separated coordinates
//!   --eps FLOAT         radius parameter (required)
//!   --min-pts INT       density threshold (required)
//!   --algorithm NAME    exact | approx | kdd96 | cit08 | gunawan2d [default: approx]
//!   --rho FLOAT         approximation ratio for 'approx'   [default: 0.001]
//!   --threads INT       parallel run with INT workers (0 = all cores);
//!                       'exact' and 'approx' only. Defaults to the
//!                       DBSCAN_THREADS environment variable when set
//!                       (same convention; unset = sequential run)
//!   --recovery POLICY   fail | fallback-sequential: what a parallel run does
//!                       when a worker panics [default: fail]
//!   --max-index-bytes N refuse index builds whose estimated footprint
//!                       exceeds N bytes (a typed error, not an OOM)
//!   --faults SPEC       deterministic fault-injection plan, e.g.
//!                       'seed=42,edge=1'; requires a binary built with
//!                       --features fault-injection
//!   --deadline DUR      wall-clock budget for the run, e.g. '500ms', '2s',
//!                       '1m' (suffixes: us, ms, s, m)
//!   --deadline-policy P abort | degrade | partial: what to do when the
//!                       budget expires [default: abort]
//!   --degrade-rho FLOAT the rho' used for approximate edge tests under
//!                       'degrade' [default: 0.001]
//!   --stall-timeout DUR parallel runs only: declare the run wedged when a
//!                       worker makes no progress for DUR (escalates to the
//!                       --recovery policy)
//!   --stats             print a dbscan-stats/v7 JSON line (per-phase wall
//!                       times and operation counters) to stdout
//!   --stats-out FILE    write the stats JSON to FILE instead of stdout
//!                       (implies stats collection; the summary stays on
//!                       stdout)
//!   --trace FILE        record an event-level trace (per-worker timelines,
//!                       task spans, steal/panic instants) and write it to
//!                       FILE; see dbscan_core::trace
//!   --trace-format FMT  chrome (trace-event JSON for chrome://tracing /
//!                       Perfetto) | folded (flamegraph stacks)
//!                       [default: chrome]
//!   --output FILE       labeled CSV (x1..xd,label; -1 = noise) [default: stdout summary only]
//!   --svg FILE          render an SVG scatter plot (2D inputs only)
//!   --quiet             suppress the summary
//! ```
//!
//! Dimensionality is inferred from the file (1–8 supported; `gunawan2d`
//! requires 2). Exit status is 0 on success, 2 on usage errors, 1 on I/O or
//! data errors. Data errors print the library's typed diagnostics verbatim
//! (malformed CSV rows name the 1-based line and the offending token).
//!
//! The `--stats` JSON schema is documented in EXPERIMENTS.md: one object with
//! `schema: "dbscan-stats/v7"`, the run parameters, result summary, the
//! host's `cores`, and the `phases` / `phases_ns` / `counters` objects of
//! [`dbscan_core::StatsReport`]; parallel runs also record the resolved
//! worker count (`threads`), the raw request (`threads_requested`), and the
//! active `recovery` policy, traced runs (`--trace`) add the `histograms` and
//! `events_dropped` members, and budgeted runs (`--deadline`) add the
//! `deadline` object (budget, outcome, degraded-edge count, measured
//! cancellation latency, per-stage progress).

use dbscan_core::algorithms::{
    try_cit08_deadline, try_cit08_instrumented, try_grid_exact_deadline,
    try_grid_exact_instrumented, try_gunawan_2d_deadline, try_gunawan_2d_instrumented,
    try_kdd96_kdtree_deadline, try_kdd96_kdtree_instrumented, try_rho_approx_deadline,
    try_rho_approx_instrumented, BcpStrategy, Cit08Config,
};
use dbscan_core::parallel::{
    try_grid_exact_par_deadline, try_grid_exact_par_instrumented, try_rho_approx_par_deadline,
    try_rho_approx_par_instrumented, ParConfig,
};
use dbscan_core::{
    chrome_trace_json, folded_stacks, parse_duration, Clustering, DbscanParams, DeadlineConfig,
    DeadlinePolicy, DeadlineReport, FaultPlan, NoStats, RecoveryPolicy, ResourceLimits, Stats,
    StatsSink, TracedStats, Tracer,
};
use dbscan_datagen::io::{points_from_flat, read_csv_dynamic};
use dbscan_geom::Point;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TraceFormat {
    #[default]
    Chrome,
    Folded,
}

#[derive(Debug)]
struct Args {
    input: PathBuf,
    eps: f64,
    min_pts: usize,
    algorithm: String,
    rho: f64,
    threads: Option<usize>,
    recovery: RecoveryPolicy,
    max_index_bytes: Option<u64>,
    faults: FaultPlan,
    deadline: Option<Duration>,
    deadline_policy: DeadlinePolicy,
    degrade_rho: f64,
    stall_timeout: Option<Duration>,
    stats: bool,
    stats_out: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    output: Option<PathBuf>,
    svg: Option<PathBuf>,
    quiet: bool,
}

impl Args {
    fn limits(&self) -> ResourceLimits {
        match self.max_index_bytes {
            Some(b) => ResourceLimits::with_max_index_bytes(b),
            None => ResourceLimits::UNLIMITED,
        }
    }

    fn deadline_config(&self) -> DeadlineConfig {
        DeadlineConfig {
            budget: self.deadline,
            policy: self.deadline_policy,
            degrade_rho: self.degrade_rho,
            stall_timeout: self.stall_timeout,
        }
    }
}

const USAGE: &str = "usage: dbscan --input FILE --eps FLOAT --min-pts INT \
     [--algorithm exact|approx|kdd96|cit08|gunawan2d] [--rho FLOAT] \
     [--threads INT (0 = all cores; default $DBSCAN_THREADS)] \
     [--recovery fail|fallback-sequential] [--max-index-bytes N] \
     [--faults SPEC (needs --features fault-injection)] \
     [--deadline DUR] [--deadline-policy abort|degrade|partial] \
     [--degrade-rho FLOAT] [--stall-timeout DUR] [--stats] \
     [--stats-out FILE] [--trace FILE] [--trace-format chrome|folded] \
     [--output FILE] [--svg FILE] [--quiet]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {raw:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut input = None;
    let mut eps = None;
    let mut min_pts = None;
    let mut algorithm = "approx".to_string();
    let mut rho = 0.001;
    let mut threads = None;
    let mut recovery = RecoveryPolicy::default();
    let mut max_index_bytes = None;
    let mut faults = FaultPlan::default();
    let mut deadline = None;
    let mut deadline_policy = DeadlinePolicy::default();
    let mut degrade_rho = 0.001;
    let mut stall_timeout = None;
    let mut stats = false;
    let mut stats_out = None;
    let mut trace = None;
    let mut trace_format = TraceFormat::default();
    let mut output = None;
    let mut svg = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input"))),
            "--eps" => eps = Some(parse_num(&value("--eps"), "--eps")),
            "--min-pts" => min_pts = Some(parse_num(&value("--min-pts"), "--min-pts")),
            "--algorithm" => algorithm = value("--algorithm"),
            "--rho" => rho = parse_num(&value("--rho"), "--rho"),
            "--threads" => threads = Some(parse_num(&value("--threads"), "--threads")),
            "--recovery" => {
                recovery = value("--recovery").parse().unwrap_or_else(|e| {
                    eprintln!("--recovery: {e}");
                    std::process::exit(2);
                })
            }
            "--max-index-bytes" => {
                max_index_bytes = Some(parse_num(&value("--max-index-bytes"), "--max-index-bytes"))
            }
            "--faults" => {
                let spec = value("--faults");
                if !cfg!(feature = "fault-injection") {
                    eprintln!(
                        "--faults: this binary was built without fault injection; \
                         rebuild with `cargo build -p dbscan-cli --features fault-injection`"
                    );
                    std::process::exit(2);
                }
                faults = spec.parse().unwrap_or_else(|e| {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                });
            }
            "--deadline" => {
                deadline = Some(parse_duration(&value("--deadline")).unwrap_or_else(|e| {
                    eprintln!("--deadline: {e}");
                    std::process::exit(2);
                }))
            }
            "--deadline-policy" => {
                deadline_policy = value("--deadline-policy").parse().unwrap_or_else(|e| {
                    eprintln!("--deadline-policy: {e}");
                    std::process::exit(2);
                })
            }
            "--degrade-rho" => degrade_rho = parse_num(&value("--degrade-rho"), "--degrade-rho"),
            "--stall-timeout" => {
                stall_timeout = Some(parse_duration(&value("--stall-timeout")).unwrap_or_else(
                    |e| {
                        eprintln!("--stall-timeout: {e}");
                        std::process::exit(2);
                    },
                ))
            }
            "--stats" => stats = true,
            "--stats-out" => stats_out = Some(PathBuf::from(value("--stats-out"))),
            "--trace" => trace = Some(PathBuf::from(value("--trace"))),
            "--trace-format" => {
                trace_format = match value("--trace-format").as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "folded" => TraceFormat::Folded,
                    other => {
                        eprintln!("--trace-format: expected 'chrome' or 'folded', got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--output" => output = Some(PathBuf::from(value("--output"))),
            "--svg" => svg = Some(PathBuf::from(value("--svg"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            _ => {
                eprintln!("unknown argument: {arg}");
                usage()
            }
        }
    }
    let (Some(input), Some(eps), Some(min_pts)) = (input, eps, min_pts) else {
        usage()
    };
    // Validate --rho before touching any data: a value the approx algorithm
    // would reject (non-positive, NaN/inf, degenerate-hierarchy small, or
    // overflowing eps·(1+ρ)) is a usage error naming the flag.
    if algorithm == "approx" {
        if let Err(e) = dbscan_core::error::validate_rho(eps, rho) {
            eprintln!("--rho: {e}");
            std::process::exit(2);
        }
    }
    // Same validation for the degrade rho', which only matters when the
    // degrade policy can actually fire (a budget is set).
    if deadline.is_some() && deadline_policy == DeadlinePolicy::Degrade {
        if let Err(e) = dbscan_core::error::validate_rho(eps, degrade_rho) {
            eprintln!("--degrade-rho: {e}");
            std::process::exit(2);
        }
    }
    // DBSCAN_THREADS is the default for --threads on the parallel-capable
    // algorithms (the core resolves it too, but only once a parallel entry
    // point is reached — routing must happen here). Reject unparsable values
    // up front instead of silently running sequentially.
    if threads.is_none() && matches!(algorithm.as_str(), "exact" | "approx") {
        if let Ok(raw) = std::env::var(dbscan_core::parallel::THREADS_ENV) {
            threads = Some(parse_num(raw.trim(), dbscan_core::parallel::THREADS_ENV));
        }
    }
    Args {
        input,
        eps,
        min_pts,
        algorithm,
        rho,
        threads,
        recovery,
        max_index_bytes,
        faults,
        deadline,
        deadline_policy,
        degrade_rho,
        stall_timeout,
        stats,
        stats_out,
        trace,
        trace_format,
        output,
        svg,
        quiet,
    }
}

/// Runs the selected algorithm, recording into `stats` (pass [`NoStats`] for
/// the plain uninstrumented path — the recording sites compile away).
/// Budgeted runs (`--deadline`) route through the `*_deadline` entry points
/// and return the [`DeadlineReport`] for the stats envelope.
fn cluster<const D: usize, S: StatsSink>(
    args: &Args,
    points: &[Point<D>],
    flat: &[f64],
    params: DbscanParams,
    stats: &S,
) -> Result<(Clustering, Option<DeadlineReport>), String> {
    // `--threads 0` resolves to all available cores in the core's
    // `resolve_threads`; pass the requested value through unchanged.
    if args.threads.is_some() && !matches!(args.algorithm.as_str(), "exact" | "approx") {
        return Err(format!(
            "--threads is only supported for 'exact' and 'approx', not '{}'",
            args.algorithm
        ));
    }
    if args.stall_timeout.is_some() && args.threads.is_none() {
        return Err("--stall-timeout requires a parallel run (--threads)".to_string());
    }
    let limits = args.limits();
    let dl = args.deadline_config();
    let par = || ParConfig {
        threads: args.threads,
        pool: None,
        recovery: args.recovery,
        limits,
        faults: args.faults.clone(),
        deadline: dl,
    };
    let budgeted = args.deadline.is_some();
    let with_report = |r: Result<(Clustering, DeadlineReport), dbscan_core::DbscanError>| {
        r.map(|(c, rep)| (c, Some(rep)))
    };
    let plain = |r: Result<Clustering, dbscan_core::DbscanError>| r.map(|c| (c, None));
    let result = match args.algorithm.as_str() {
        "exact" => match (args.threads, budgeted) {
            (Some(_), true) => with_report(try_grid_exact_par_deadline(points, params, &par(), stats)),
            (Some(_), false) => plain(try_grid_exact_par_instrumented(points, params, &par(), stats)),
            (None, true) => with_report(try_grid_exact_deadline(
                points,
                params,
                BcpStrategy::TreeAssisted,
                &limits,
                &dl,
                stats,
            )),
            (None, false) => plain(try_grid_exact_instrumented(
                points,
                params,
                BcpStrategy::TreeAssisted,
                &limits,
                stats,
            )),
        },
        "approx" => match (args.threads, budgeted) {
            (Some(_), true) => with_report(try_rho_approx_par_deadline(
                points, params, args.rho, &par(), stats,
            )),
            (Some(_), false) => plain(try_rho_approx_par_instrumented(
                points, params, args.rho, &par(), stats,
            )),
            (None, true) => with_report(try_rho_approx_deadline(
                points, params, args.rho, &limits, &dl, stats,
            )),
            (None, false) => plain(try_rho_approx_instrumented(
                points, params, args.rho, &limits, stats,
            )),
        },
        "kdd96" => match budgeted {
            true => with_report(try_kdd96_kdtree_deadline(points, params, &dl, stats)),
            false => plain(try_kdd96_kdtree_instrumented(points, params, stats)),
        },
        "cit08" => match budgeted {
            true => with_report(try_cit08_deadline(
                points,
                params,
                Cit08Config::default(),
                &dl,
                stats,
            )),
            false => plain(try_cit08_instrumented(
                points,
                params,
                Cit08Config::default(),
                stats,
            )),
        },
        "gunawan2d" => {
            if D != 2 {
                return Err(format!("'gunawan2d' requires 2D input, got {D}D"));
            }
            // Safe: D == 2 checked above, re-read the flat data as 2D.
            let pts2: Vec<Point<2>> = points_from_flat(flat);
            match budgeted {
                true => with_report(try_gunawan_2d_deadline(&pts2, params, &limits, &dl, stats)),
                false => plain(try_gunawan_2d_instrumented(&pts2, params, &limits, stats)),
            }
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    // Typed library diagnostics are printed verbatim by `main`.
    result.map_err(|e| e.to_string())
}

/// The single-line `dbscan-stats/v7` JSON object for `--stats` /
/// `--stats-out`. Traced runs pass their tracer so the envelope carries the
/// `histograms` section and the `events_dropped` count; budgeted runs pass
/// their [`DeadlineReport`] so it carries the `deadline` object.
///
/// v6 = v5 plus host/thread provenance: `cores` (the machine's available
/// parallelism) is always present, and parallel runs record both the raw
/// request (`threads_requested`, e.g. `0` = all cores) and the
/// [`resolve_threads`](dbscan_core::parallel::resolve_threads) result the
/// run actually used (`threads`). v7 = v6 plus the blocked-kernel counters
/// (`block_kernel_calls`, `brute_force_cells`) and `kernel_block` (the
/// kernel chunk width, [`dbscan_core::kernels::BLOCK`]).
fn stats_envelope<const D: usize>(
    args: &Args,
    n: usize,
    clustering: &Clustering,
    report: &dbscan_core::StatsReport,
    tracer: Option<&Tracer>,
    deadline: Option<&DeadlineReport>,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!(
        "{{\"schema\":\"dbscan-stats/v7\",\"algorithm\":\"{}\",\"n\":{},\"dim\":{},\
         \"eps\":{},\"min_pts\":{},\"cores\":{},\"kernel_block\":{}",
        args.algorithm,
        n,
        D,
        args.eps,
        args.min_pts,
        cores,
        dbscan_core::kernels::BLOCK
    );
    if args.algorithm == "approx" {
        out.push_str(&format!(",\"rho\":{}", args.rho));
    }
    if let Some(t) = args.threads {
        out.push_str(&format!(
            ",\"threads\":{},\"threads_requested\":{t},\"recovery\":\"{}\"",
            dbscan_core::parallel::resolve_threads(Some(t)),
            args.recovery.name()
        ));
    }
    out.push_str(&format!(
        ",\"num_clusters\":{},\"core\":{},\"border\":{},\"noise\":{},\"phases\":{},\
         \"phases_ns\":{},\"counters\":{}",
        clustering.num_clusters,
        clustering.core_count(),
        clustering.border_count(),
        clustering.noise_count(),
        report.phases_json(),
        report.phases_ns_json(),
        report.counters_json()
    ));
    if let Some(tracer) = tracer {
        out.push_str(&format!(
            ",\"histograms\":{},\"events_dropped\":{}",
            tracer.histograms().to_json(),
            tracer.events_dropped()
        ));
    }
    if let Some(dl) = deadline {
        out.push_str(&format!(",\"deadline\":{}", dl.to_json()));
    }
    out.push('}');
    out
}

fn run<const D: usize>(args: &Args, flat: &[f64]) -> Result<(), String> {
    let points: Vec<Point<D>> = points_from_flat(flat);
    let params = DbscanParams::new(args.eps, args.min_pts)
        .map_err(|e| format!("invalid parameters: {e}"))?;
    let start = std::time::Instant::now();
    // --stats-out implies stats collection; --trace always collects both
    // layers (the envelope needs the histograms even when not printed).
    let want_stats = args.stats || args.stats_out.is_some();
    let mut stats_json = None;
    let clustering = if let Some(trace_path) = &args.trace {
        // One timeline per parallel worker plus the coordinator; sequential
        // runs only ever write lane 0.
        let lanes = match args.threads {
            Some(t) => dbscan_core::parallel::resolve_threads(Some(t)) + 1,
            None => 1,
        };
        let ts = TracedStats::new(lanes);
        let (clustering, deadline) = cluster(args, &points, flat, params, &ts)?;
        let snap = ts.tracer.snapshot();
        let rendered = match args.trace_format {
            TraceFormat::Chrome => chrome_trace_json(&snap),
            TraceFormat::Folded => folded_stacks(&snap),
        };
        std::fs::write(trace_path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        if want_stats {
            stats_json = Some(stats_envelope::<D>(
                args,
                points.len(),
                &clustering,
                &ts.stats.report(),
                Some(&ts.tracer),
                deadline.as_ref(),
            ));
        }
        clustering
    } else if want_stats {
        let stats = Stats::new();
        let (clustering, deadline) = cluster(args, &points, flat, params, &stats)?;
        stats_json = Some(stats_envelope::<D>(
            args,
            points.len(),
            &clustering,
            &stats.report(),
            None,
            deadline.as_ref(),
        ));
        clustering
    } else {
        cluster(args, &points, flat, params, &NoStats)?.0
    };
    let elapsed = start.elapsed();

    let stats_on_stdout = stats_json.is_some() && args.stats_out.is_none();
    if let Some(json) = stats_json {
        match &args.stats_out {
            Some(path) => {
                std::fs::write(path, json + "\n")
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
            None => println!("{json}"),
        }
    }

    if !args.quiet {
        let summary = format!(
            "{} points ({}D), algorithm {}: {} clusters, {} core / {} border / {} noise in {:.3}s",
            points.len(),
            D,
            args.algorithm,
            clustering.num_clusters,
            clustering.core_count(),
            clustering.border_count(),
            clustering.noise_count(),
            elapsed.as_secs_f64()
        );
        let mut sizes = clustering.cluster_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let preview: Vec<usize> = sizes.iter().copied().take(10).collect();
        let sizes_line = format!("largest cluster sizes: {preview:?}");
        if stats_on_stdout {
            // --stats reserves stdout for the JSON line so it pipes cleanly;
            // with --stats-out the JSON went to a file and stdout is free.
            eprintln!("{summary}");
            eprintln!("{sizes_line}");
        } else {
            println!("{summary}");
            println!("{sizes_line}");
        }
    }

    if let Some(path) = &args.output {
        let labels: Vec<i64> = clustering
            .flat_labels()
            .into_iter()
            .map(|l| l.map_or(-1, |v| v as i64))
            .collect();
        dbscan_datagen::io::write_labeled_csv(path, &points, &labels)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    if let Some(path) = &args.svg {
        if D == 2 {
            // Safe: D == 2 checked above, re-read the flat data as 2D.
            let pts2: Vec<Point<2>> = points_from_flat(flat);
            dbscan_viz::svg::write_clusters(path, &pts2, &clustering, 800, 800, 2.0)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        } else {
            eprintln!("--svg ignored: input is {D}D, plotting requires 2D");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let (dim, flat) = match read_csv_dynamic(&args.input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input.display());
            return ExitCode::from(1);
        }
    };
    let result = match dim {
        1 => run::<1>(&args, &flat),
        2 => run::<2>(&args, &flat),
        3 => run::<3>(&args, &flat),
        4 => run::<4>(&args, &flat),
        5 => run::<5>(&args, &flat),
        6 => run::<6>(&args, &flat),
        7 => run::<7>(&args, &flat),
        8 => run::<8>(&args, &flat),
        d => Err(format!("unsupported dimensionality {d} (1-8 supported)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
