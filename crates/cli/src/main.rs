//! `dbscan` — cluster a CSV of points from the command line.
//!
//! ```text
//! dbscan --input points.csv --eps 5000 --min-pts 100 [OPTIONS]
//!
//! OPTIONS
//!   --input FILE        CSV, one point per line, comma-separated coordinates
//!   --eps FLOAT         radius parameter (required)
//!   --min-pts INT       density threshold (required)
//!   --algorithm NAME    exact | approx | kdd96 | cit08     [default: approx]
//!   --rho FLOAT         approximation ratio for 'approx'   [default: 0.001]
//!   --output FILE       labeled CSV (x1..xd,label; -1 = noise) [default: stdout summary only]
//!   --svg FILE          render an SVG scatter plot (2D inputs only)
//!   --quiet             suppress the summary
//! ```
//!
//! Dimensionality is inferred from the file (1–8 supported). Exit status is 0 on
//! success, 2 on usage errors, 1 on I/O or data errors.

use dbscan_core::algorithms::{cit08, grid_exact, kdd96_kdtree, rho_approx, Cit08Config};
use dbscan_core::{Clustering, DbscanParams};
use dbscan_datagen::io::{points_from_flat, read_csv_dynamic};
use dbscan_geom::Point;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    input: PathBuf,
    eps: f64,
    min_pts: usize,
    algorithm: String,
    rho: f64,
    output: Option<PathBuf>,
    svg: Option<PathBuf>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dbscan --input FILE --eps FLOAT --min-pts INT \
         [--algorithm exact|approx|kdd96|cit08] [--rho FLOAT] \
         [--output FILE] [--svg FILE] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {raw:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut input = None;
    let mut eps = None;
    let mut min_pts = None;
    let mut algorithm = "approx".to_string();
    let mut rho = 0.001;
    let mut output = None;
    let mut svg = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input"))),
            "--eps" => eps = Some(parse_num(&value("--eps"), "--eps")),
            "--min-pts" => min_pts = Some(parse_num(&value("--min-pts"), "--min-pts")),
            "--algorithm" => algorithm = value("--algorithm"),
            "--rho" => rho = parse_num(&value("--rho"), "--rho"),
            "--output" => output = Some(PathBuf::from(value("--output"))),
            "--svg" => svg = Some(PathBuf::from(value("--svg"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: dbscan --input FILE --eps FLOAT --min-pts INT \
                     [--algorithm exact|approx|kdd96|cit08] [--rho FLOAT] \
                     [--output FILE] [--svg FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            _ => {
                eprintln!("unknown argument: {arg}");
                usage()
            }
        }
    }
    let (Some(input), Some(eps), Some(min_pts)) = (input, eps, min_pts) else {
        usage()
    };
    Args {
        input,
        eps,
        min_pts,
        algorithm,
        rho,
        output,
        svg,
        quiet,
    }
}

fn run<const D: usize>(args: &Args, flat: &[f64]) -> Result<(), String> {
    let points: Vec<Point<D>> = points_from_flat(flat);
    if let Some(i) = points.iter().position(|p| !p.is_finite()) {
        return Err(format!(
            "input point {} has a non-finite coordinate (NaN/inf)",
            i + 1
        ));
    }
    let params = DbscanParams::new(args.eps, args.min_pts)
        .map_err(|e| format!("invalid parameters: {e}"))?;
    let start = std::time::Instant::now();
    let clustering: Clustering = match args.algorithm.as_str() {
        "exact" => grid_exact(&points, params),
        "approx" => rho_approx(&points, params, args.rho),
        "kdd96" => kdd96_kdtree(&points, params),
        "cit08" => cit08(&points, params, Cit08Config::default()),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let elapsed = start.elapsed();

    if !args.quiet {
        println!(
            "{} points ({}D), algorithm {}: {} clusters, {} core / {} border / {} noise in {:.3}s",
            points.len(),
            D,
            args.algorithm,
            clustering.num_clusters,
            clustering.core_count(),
            clustering.border_count(),
            clustering.noise_count(),
            elapsed.as_secs_f64()
        );
        let mut sizes = clustering.cluster_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let preview: Vec<usize> = sizes.iter().copied().take(10).collect();
        println!("largest cluster sizes: {preview:?}");
    }

    if let Some(path) = &args.output {
        let labels: Vec<i64> = clustering
            .flat_labels()
            .into_iter()
            .map(|l| l.map_or(-1, |v| v as i64))
            .collect();
        dbscan_datagen::io::write_labeled_csv(path, &points, &labels)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    if let Some(path) = &args.svg {
        if D == 2 {
            // Safe: D == 2 checked above, re-read the flat data as 2D.
            let pts2: Vec<Point<2>> = points_from_flat(flat);
            dbscan_viz::svg::write_clusters(path, &pts2, &clustering, 800, 800, 2.0)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        } else {
            eprintln!("--svg ignored: input is {D}D, plotting requires 2D");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let (dim, flat) = match read_csv_dynamic(&args.input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input.display());
            return ExitCode::from(1);
        }
    };
    let result = match dim {
        1 => run::<1>(&args, &flat),
        2 => run::<2>(&args, &flat),
        3 => run::<3>(&args, &flat),
        4 => run::<4>(&args, &flat),
        5 => run::<5>(&args, &flat),
        6 => run::<6>(&args, &flat),
        7 => run::<7>(&args, &flat),
        8 => run::<8>(&args, &flat),
        d => Err(format!("unsupported dimensionality {d} (1-8 supported)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
