//! `dbscan` — cluster a CSV of points from the command line.
//!
//! ```text
//! dbscan --input points.csv --eps 5000 --min-pts 100 [OPTIONS]
//!
//! OPTIONS
//!   --input FILE        CSV, one point per line, comma-separated coordinates
//!   --eps FLOAT         radius parameter (required)
//!   --min-pts INT       density threshold (required)
//!   --algorithm NAME    exact | approx | kdd96 | cit08 | gunawan2d [default: approx]
//!   --rho FLOAT         approximation ratio for 'approx'   [default: 0.001]
//!   --threads INT       parallel run with INT workers (0 = all cores);
//!                       'exact' and 'approx' only. Defaults to the
//!                       DBSCAN_THREADS environment variable when set
//!                       (same convention; unset = sequential run)
//!   --recovery POLICY   fail | fallback-sequential: what a parallel run does
//!                       when a worker panics [default: fail]
//!   --max-index-bytes N refuse index builds whose estimated footprint
//!                       exceeds N bytes (a typed error, not an OOM)
//!   --faults SPEC       deterministic fault-injection plan, e.g.
//!                       'seed=42,edge=1'; requires a binary built with
//!                       --features fault-injection
//!   --deadline DUR      wall-clock budget for the run, e.g. '500ms', '2s',
//!                       '1m' (suffixes: us, ms, s, m)
//!   --deadline-policy P abort | degrade | partial: what to do when the
//!                       budget expires [default: abort]
//!   --degrade-rho FLOAT the rho' used for approximate edge tests under
//!                       'degrade' [default: 0.001]
//!   --stall-timeout DUR parallel runs only: declare the run wedged when a
//!                       worker makes no progress for DUR (escalates to the
//!                       --recovery policy)
//!   --stats             print a dbscan-stats/v7 JSON line (per-phase wall
//!                       times and operation counters) to stdout
//!   --stats-out FILE    write the stats JSON to FILE instead of stdout
//!                       (implies stats collection; the summary stays on
//!                       stdout)
//!   --trace FILE        record an event-level trace (per-worker timelines,
//!                       task spans, steal/panic instants) and write it to
//!                       FILE; see dbscan_core::trace
//!   --trace-format FMT  chrome (trace-event JSON for chrome://tracing /
//!                       Perfetto) | folded (flamegraph stacks)
//!                       [default: chrome]
//!   --output FILE       labeled CSV (x1..xd,label; -1 = noise) [default: stdout summary only]
//!   --svg FILE          render an SVG scatter plot (2D inputs only)
//!   --quiet             suppress the summary
//! ```
//!
//! Dimensionality is inferred from the file (1–8 supported; `gunawan2d`
//! requires 2). Exit status is 0 on success, 2 on usage errors, 1 on I/O or
//! data errors, and 130 when the run was interrupted by SIGINT/SIGTERM.
//! Data errors print the library's typed diagnostics verbatim (malformed CSV
//! rows name the 1-based line and the offending token).
//!
//! The first SIGINT/SIGTERM cancels the in-flight run cooperatively (the
//! cancellation surfaces as a typed `cancelled` diagnostic and exit 130); a
//! second signal kills the process outright. Output files (`--output`,
//! `--stats-out`, `--trace`, `--svg`) are written atomically — a sibling
//! `.tmp` file renamed into place — so an interrupt never leaves a torn file.
//!
//! ```text
//! dbscan serve (--socket PATH | --listen ADDR) [OPTIONS]
//!
//! SERVE OPTIONS
//!   --socket PATH          serve a unix-domain socket at PATH
//!   --listen ADDR          serve TCP at ADDR (e.g. 127.0.0.1:7474; :0 picks
//!                          a free port, printed on startup)
//!   --max-queue N          shed submissions past N queued jobs [default: 64]
//!   --workers N            concurrent job executors [default: 2]
//!   --job-threads N        threads in the shared parallel pool [default: 1]
//!   --pressure-threshold D switch queued exact jobs to rho-approximate once
//!                          their queue age exceeds D (off by default)
//!   --overload-rho F       the rho used for pressure-degraded jobs [default: 0.01]
//!   --drain-deadline D     max drain time on SIGTERM/shutdown [default: 5s]
//!   --max-index-bytes N    per-request index-build byte budget
//!   --cache-bytes N        grid/core-structure cache budget [default: 64 MiB]
//!   --metrics-listen ADDR  serve the Prometheus text exposition over HTTP at
//!                          ADDR (scrape-only; the `metrics` verb works
//!                          without it)
//!   --log-level L          error|warn|info|debug [default: info]
//!   --log-file PATH        write JSON log lines to PATH instead of stderr
//!   --log-max-bytes N      rotate the log file to PATH.1 past N bytes
//!                          [default: 10 MiB]
//!   --sample-interval D    health time-series sampling period [default: 1s]
//!   --timeseries-cap N     health samples retained in the ring [default: 600]
//!   --trace-max-bytes N    byte cap for inline per-request traces
//!                          [default: 4 MiB]
//!   --journal DIR          write-ahead job journal in DIR: admitted submits
//!                          survive kill -9 and are re-run on restart
//!   --journal-sync MODE    always (fsync before each ack, the default) |
//!                          interval | interval=DUR (batched fsync)
//!   --journal-compact-bytes N  rewrite the journal keeping only live jobs
//!                          once it grows past N bytes [default: 8 MiB]
//!   --conn-timeout D       evict connections idle past D (slow-loris
//!                          defense; off by default)
//!   --max-frame-bytes N    hard cap per request frame; larger frames get a
//!                          typed frame_too_large error [default: 16 MiB]
//!   --max-conns N          concurrent connection cap; past it new
//!                          connections get too_many_conns [default: 1024]
//! ```
//!
//! The daemon speaks the newline-delimited JSON protocol documented in the
//! README ("Running as a service"); SIGTERM drains in-flight jobs under the
//! drain deadline and exits 0 with a final `dbscan-server-stats/v1` line on
//! stdout.
//!
//! The `--stats` JSON schema is documented in EXPERIMENTS.md: one object with
//! `schema: "dbscan-stats/v7"`, the run parameters, result summary, the
//! host's `cores`, and the `phases` / `phases_ns` / `counters` objects of
//! [`dbscan_core::StatsReport`]; parallel runs also record the resolved
//! worker count (`threads`), the raw request (`threads_requested`), and the
//! active `recovery` policy, traced runs (`--trace`) add the `histograms` and
//! `events_dropped` members, and budgeted runs (`--deadline`) add the
//! `deadline` object (budget, outcome, degraded-edge count, measured
//! cancellation latency, per-stage progress).

use dbscan_core::algorithms::{
    try_cit08_ctl, try_grid_exact_ctl, try_gunawan_2d_ctl, try_kdd96_kdtree_ctl,
    try_rho_approx_ctl, BcpStrategy, Cit08Config,
};
use dbscan_core::parallel::{try_grid_exact_par_ctl, try_rho_approx_par_ctl, ParConfig};
use dbscan_core::{
    chrome_trace_json, folded_stacks, parse_duration, Clustering, DbscanParams, DeadlineConfig,
    DeadlinePolicy, DeadlineReport, FaultPlan, NoStats, RecoveryPolicy, ResourceLimits, RunCtl,
    Stats, StatsSink, TracedStats, Tracer,
};
use dbscan_datagen::io::{points_from_flat, read_csv_dynamic};
use dbscan_geom::Point;
use dbscan_server::signals;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TraceFormat {
    #[default]
    Chrome,
    Folded,
}

#[derive(Debug)]
struct Args {
    input: PathBuf,
    eps: f64,
    min_pts: usize,
    algorithm: String,
    rho: f64,
    threads: Option<usize>,
    recovery: RecoveryPolicy,
    max_index_bytes: Option<u64>,
    faults: FaultPlan,
    deadline: Option<Duration>,
    deadline_policy: DeadlinePolicy,
    degrade_rho: f64,
    stall_timeout: Option<Duration>,
    stats: bool,
    stats_out: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    output: Option<PathBuf>,
    svg: Option<PathBuf>,
    quiet: bool,
}

impl Args {
    fn limits(&self) -> ResourceLimits {
        match self.max_index_bytes {
            Some(b) => ResourceLimits::with_max_index_bytes(b),
            None => ResourceLimits::UNLIMITED,
        }
    }

    fn deadline_config(&self) -> DeadlineConfig {
        DeadlineConfig {
            budget: self.deadline,
            policy: self.deadline_policy,
            degrade_rho: self.degrade_rho,
            stall_timeout: self.stall_timeout,
        }
    }
}

const USAGE: &str = "usage: dbscan --input FILE --eps FLOAT --min-pts INT \
     [--algorithm exact|approx|kdd96|cit08|gunawan2d] [--rho FLOAT] \
     [--threads INT (0 = all cores; default $DBSCAN_THREADS)] \
     [--recovery fail|fallback-sequential] [--max-index-bytes N] \
     [--faults SPEC (needs --features fault-injection)] \
     [--deadline DUR] [--deadline-policy abort|degrade|partial] \
     [--degrade-rho FLOAT] [--stall-timeout DUR] [--stats] \
     [--stats-out FILE] [--trace FILE] [--trace-format chrome|folded] \
     [--output FILE] [--svg FILE] [--quiet]\n\
     (or: dbscan serve --help for the clustering daemon)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value {raw:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut input = None;
    let mut eps = None;
    let mut min_pts = None;
    let mut algorithm = "approx".to_string();
    let mut rho = 0.001;
    let mut threads = None;
    let mut recovery = RecoveryPolicy::default();
    let mut max_index_bytes = None;
    let mut faults = FaultPlan::default();
    let mut deadline = None;
    let mut deadline_policy = DeadlinePolicy::default();
    let mut degrade_rho = 0.001;
    let mut stall_timeout = None;
    let mut stats = false;
    let mut stats_out = None;
    let mut trace = None;
    let mut trace_format = TraceFormat::default();
    let mut output = None;
    let mut svg = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input"))),
            "--eps" => eps = Some(parse_num(&value("--eps"), "--eps")),
            "--min-pts" => min_pts = Some(parse_num(&value("--min-pts"), "--min-pts")),
            "--algorithm" => algorithm = value("--algorithm"),
            "--rho" => rho = parse_num(&value("--rho"), "--rho"),
            "--threads" => threads = Some(parse_num(&value("--threads"), "--threads")),
            "--recovery" => {
                recovery = value("--recovery").parse().unwrap_or_else(|e| {
                    eprintln!("--recovery: {e}");
                    std::process::exit(2);
                })
            }
            "--max-index-bytes" => {
                max_index_bytes = Some(parse_num(&value("--max-index-bytes"), "--max-index-bytes"))
            }
            "--faults" => {
                let spec = value("--faults");
                if !cfg!(feature = "fault-injection") {
                    eprintln!(
                        "--faults: this binary was built without fault injection; \
                         rebuild with `cargo build -p dbscan-cli --features fault-injection`"
                    );
                    std::process::exit(2);
                }
                faults = spec.parse().unwrap_or_else(|e| {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                });
            }
            "--deadline" => {
                deadline = Some(parse_duration(&value("--deadline")).unwrap_or_else(|e| {
                    eprintln!("--deadline: {e}");
                    std::process::exit(2);
                }))
            }
            "--deadline-policy" => {
                deadline_policy = value("--deadline-policy").parse().unwrap_or_else(|e| {
                    eprintln!("--deadline-policy: {e}");
                    std::process::exit(2);
                })
            }
            "--degrade-rho" => degrade_rho = parse_num(&value("--degrade-rho"), "--degrade-rho"),
            "--stall-timeout" => {
                stall_timeout = Some(parse_duration(&value("--stall-timeout")).unwrap_or_else(
                    |e| {
                        eprintln!("--stall-timeout: {e}");
                        std::process::exit(2);
                    },
                ))
            }
            "--stats" => stats = true,
            "--stats-out" => stats_out = Some(PathBuf::from(value("--stats-out"))),
            "--trace" => trace = Some(PathBuf::from(value("--trace"))),
            "--trace-format" => {
                trace_format = match value("--trace-format").as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "folded" => TraceFormat::Folded,
                    other => {
                        eprintln!("--trace-format: expected 'chrome' or 'folded', got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--output" => output = Some(PathBuf::from(value("--output"))),
            "--svg" => svg = Some(PathBuf::from(value("--svg"))),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            _ => {
                eprintln!("unknown argument: {arg}");
                usage()
            }
        }
    }
    let (Some(input), Some(eps), Some(min_pts)) = (input, eps, min_pts) else {
        usage()
    };
    // Validate --rho before touching any data: a value the approx algorithm
    // would reject (non-positive, NaN/inf, degenerate-hierarchy small, or
    // overflowing eps·(1+ρ)) is a usage error naming the flag.
    if algorithm == "approx" {
        if let Err(e) = dbscan_core::error::validate_rho(eps, rho) {
            eprintln!("--rho: {e}");
            std::process::exit(2);
        }
    }
    // Same validation for the degrade rho', which only matters when the
    // degrade policy can actually fire (a budget is set).
    if deadline.is_some() && deadline_policy == DeadlinePolicy::Degrade {
        if let Err(e) = dbscan_core::error::validate_rho(eps, degrade_rho) {
            eprintln!("--degrade-rho: {e}");
            std::process::exit(2);
        }
    }
    // DBSCAN_THREADS is the default for --threads on the parallel-capable
    // algorithms (the core resolves it too, but only once a parallel entry
    // point is reached — routing must happen here). Reject unparsable values
    // up front instead of silently running sequentially.
    if threads.is_none() && matches!(algorithm.as_str(), "exact" | "approx") {
        if let Ok(raw) = std::env::var(dbscan_core::parallel::THREADS_ENV) {
            threads = Some(parse_num(raw.trim(), dbscan_core::parallel::THREADS_ENV));
        }
    }
    Args {
        input,
        eps,
        min_pts,
        algorithm,
        rho,
        threads,
        recovery,
        max_index_bytes,
        faults,
        deadline,
        deadline_policy,
        degrade_rho,
        stall_timeout,
        stats,
        stats_out,
        trace,
        trace_format,
        output,
        svg,
        quiet,
    }
}

/// Runs the selected algorithm, recording into `stats` (pass [`NoStats`] for
/// the plain uninstrumented path — the recording sites compile away).
///
/// Every path routes through the `*_ctl` entry points under the caller-owned
/// `ctl` — the one registered with the signal handler — so SIGINT/SIGTERM
/// cancels any algorithm cooperatively. Budgeted runs (`--deadline`) share
/// the same `ctl`; the caller reads the [`DeadlineReport`] off it afterwards.
fn cluster<const D: usize, S: StatsSink>(
    args: &Args,
    points: &[Point<D>],
    flat: &[f64],
    params: DbscanParams,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, String> {
    // `--threads 0` resolves to all available cores in the core's
    // `resolve_threads`; pass the requested value through unchanged.
    if args.threads.is_some() && !matches!(args.algorithm.as_str(), "exact" | "approx") {
        return Err(format!(
            "--threads is only supported for 'exact' and 'approx', not '{}'",
            args.algorithm
        ));
    }
    if args.stall_timeout.is_some() && args.threads.is_none() {
        return Err("--stall-timeout requires a parallel run (--threads)".to_string());
    }
    let limits = args.limits();
    let dl = args.deadline_config();
    let par = || ParConfig {
        threads: args.threads,
        pool: None,
        recovery: args.recovery,
        limits,
        faults: args.faults.clone(),
        deadline: dl,
    };
    let result = match args.algorithm.as_str() {
        "exact" => match args.threads {
            Some(_) => try_grid_exact_par_ctl(points, params, &par(), stats, ctl),
            None => try_grid_exact_ctl(
                points,
                params,
                BcpStrategy::TreeAssisted,
                &limits,
                stats,
                ctl,
            ),
        },
        "approx" => match args.threads {
            Some(_) => try_rho_approx_par_ctl(points, params, args.rho, &par(), stats, ctl),
            None => try_rho_approx_ctl(points, params, args.rho, &limits, stats, ctl),
        },
        "kdd96" => try_kdd96_kdtree_ctl(points, params, stats, ctl),
        "cit08" => try_cit08_ctl(points, params, Cit08Config::default(), stats, ctl),
        "gunawan2d" => {
            if D != 2 {
                return Err(format!("'gunawan2d' requires 2D input, got {D}D"));
            }
            // Safe: D == 2 checked above, re-read the flat data as 2D.
            let pts2: Vec<Point<2>> = points_from_flat(flat);
            try_gunawan_2d_ctl(&pts2, params, &limits, stats, ctl)
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    // Typed library diagnostics are printed verbatim by `main`.
    result.map_err(|e| e.to_string())
}

/// The single-line `dbscan-stats/v7` JSON object for `--stats` /
/// `--stats-out`. Traced runs pass their tracer so the envelope carries the
/// `histograms` section and the `events_dropped` count; budgeted runs pass
/// their [`DeadlineReport`] so it carries the `deadline` object.
///
/// v6 = v5 plus host/thread provenance: `cores` (the machine's available
/// parallelism) is always present, and parallel runs record both the raw
/// request (`threads_requested`, e.g. `0` = all cores) and the
/// [`resolve_threads`](dbscan_core::parallel::resolve_threads) result the
/// run actually used (`threads`). v7 = v6 plus the blocked-kernel counters
/// (`block_kernel_calls`, `brute_force_cells`) and `kernel_block` (the
/// kernel chunk width, [`dbscan_core::kernels::BLOCK`]).
fn stats_envelope<const D: usize>(
    args: &Args,
    n: usize,
    clustering: &Clustering,
    report: &dbscan_core::StatsReport,
    tracer: Option<&Tracer>,
    deadline: Option<&DeadlineReport>,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!(
        "{{\"schema\":\"dbscan-stats/v7\",\"algorithm\":\"{}\",\"n\":{},\"dim\":{},\
         \"eps\":{},\"min_pts\":{},\"cores\":{},\"kernel_block\":{}",
        args.algorithm,
        n,
        D,
        args.eps,
        args.min_pts,
        cores,
        dbscan_core::kernels::BLOCK
    );
    if args.algorithm == "approx" {
        out.push_str(&format!(",\"rho\":{}", args.rho));
    }
    if let Some(t) = args.threads {
        out.push_str(&format!(
            ",\"threads\":{},\"threads_requested\":{t},\"recovery\":\"{}\"",
            dbscan_core::parallel::resolve_threads(Some(t)),
            args.recovery.name()
        ));
    }
    out.push_str(&format!(
        ",\"num_clusters\":{},\"core\":{},\"border\":{},\"noise\":{},\"phases\":{},\
         \"phases_ns\":{},\"counters\":{}",
        clustering.num_clusters,
        clustering.core_count(),
        clustering.border_count(),
        clustering.noise_count(),
        report.phases_json(),
        report.phases_ns_json(),
        report.counters_json()
    ));
    if let Some(tracer) = tracer {
        out.push_str(&format!(
            ",\"histograms\":{},\"events_dropped\":{}",
            tracer.histograms().to_json(),
            tracer.events_dropped()
        ));
    }
    if let Some(dl) = deadline {
        out.push_str(&format!(",\"deadline\":{}", dl.to_json()));
    }
    out.push('}');
    out
}

/// Writes `contents` to a sibling `.tmp` file and renames it into place, so
/// readers (and an interrupt mid-write) never observe a torn file.
fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("out"), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

fn run<const D: usize>(args: &Args, flat: &[f64]) -> Result<(), String> {
    let points: Vec<Point<D>> = points_from_flat(flat);
    let params = DbscanParams::new(args.eps, args.min_pts)
        .map_err(|e| format!("invalid parameters: {e}"))?;
    let start = std::time::Instant::now();
    // The run control the signal handler trips: always armed (cancellable even
    // without a --deadline), registered for the duration of the compute phase.
    // A signal that landed before registration must still cancel the run.
    let ctl = Arc::new(RunCtl::cancellable(&args.deadline_config()));
    signals::register_ctl(&ctl);
    if signals::shutdown_requested() {
        ctl.interrupt();
    }
    // --stats-out implies stats collection; --trace always collects both
    // layers (the envelope needs the histograms even when not printed).
    let want_stats = args.stats || args.stats_out.is_some();
    let budgeted = args.deadline.is_some();
    let mut stats_json = None;
    let outcome = if let Some(trace_path) = &args.trace {
        // One timeline per parallel worker plus the coordinator; sequential
        // runs only ever write lane 0.
        let lanes = match args.threads {
            Some(t) => dbscan_core::parallel::resolve_threads(Some(t)) + 1,
            None => 1,
        };
        let ts = TracedStats::new(lanes);
        cluster(args, &points, flat, params, &ts, &ctl).and_then(|clustering| {
            let snap = ts.tracer.snapshot();
            let rendered = match args.trace_format {
                TraceFormat::Chrome => chrome_trace_json(&snap),
                TraceFormat::Folded => folded_stacks(&snap),
            };
            write_atomic(trace_path, rendered.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
            if want_stats {
                stats_json = Some(stats_envelope::<D>(
                    args,
                    points.len(),
                    &clustering,
                    &ts.stats.report(),
                    Some(&ts.tracer),
                    budgeted.then(|| ctl.report()).as_ref(),
                ));
            }
            Ok(clustering)
        })
    } else if want_stats {
        let stats = Stats::new();
        cluster(args, &points, flat, params, &stats, &ctl).inspect(|clustering| {
            stats_json = Some(stats_envelope::<D>(
                args,
                points.len(),
                clustering,
                &stats.report(),
                None,
                budgeted.then(|| ctl.report()).as_ref(),
            ));
        })
    } else {
        cluster(args, &points, flat, params, &NoStats, &ctl)
    };
    // The compute phase is over (either way); signals past this point take
    // the default disposition path, and the writes below are atomic anyway.
    signals::clear_ctl();
    let clustering = outcome?;
    let elapsed = start.elapsed();

    let stats_on_stdout = stats_json.is_some() && args.stats_out.is_none();
    if let Some(json) = stats_json {
        match &args.stats_out {
            Some(path) => {
                write_atomic(path, (json + "\n").as_bytes())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
            None => println!("{json}"),
        }
    }

    if !args.quiet {
        let summary = format!(
            "{} points ({}D), algorithm {}: {} clusters, {} core / {} border / {} noise in {:.3}s",
            points.len(),
            D,
            args.algorithm,
            clustering.num_clusters,
            clustering.core_count(),
            clustering.border_count(),
            clustering.noise_count(),
            elapsed.as_secs_f64()
        );
        let mut sizes = clustering.cluster_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let preview: Vec<usize> = sizes.iter().copied().take(10).collect();
        let sizes_line = format!("largest cluster sizes: {preview:?}");
        if stats_on_stdout {
            // --stats reserves stdout for the JSON line so it pipes cleanly;
            // with --stats-out the JSON went to a file and stdout is free.
            eprintln!("{summary}");
            eprintln!("{sizes_line}");
        } else {
            println!("{summary}");
            println!("{sizes_line}");
        }
    }

    if let Some(path) = &args.output {
        let labels: Vec<i64> = clustering
            .flat_labels()
            .into_iter()
            .map(|l| l.map_or(-1, |v| v as i64))
            .collect();
        let tmp = tmp_sibling(path);
        dbscan_datagen::io::write_labeled_csv(&tmp, &points, &labels)
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    if let Some(path) = &args.svg {
        if D == 2 {
            // Safe: D == 2 checked above, re-read the flat data as 2D.
            let pts2: Vec<Point<2>> = points_from_flat(flat);
            let tmp = tmp_sibling(path);
            dbscan_viz::svg::write_clusters(&tmp, &pts2, &clustering, 800, 800, 2.0)
                .and_then(|()| std::fs::rename(&tmp, path))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        } else {
            eprintln!("--svg ignored: input is {D}D, plotting requires 2D");
        }
    }
    Ok(())
}

const SERVE_USAGE: &str = "usage: dbscan serve (--socket PATH | --listen ADDR) \
     [--max-queue N] [--workers N] [--job-threads N] \
     [--pressure-threshold DUR] [--overload-rho FLOAT] [--drain-deadline DUR] \
     [--max-index-bytes N] [--cache-bytes N] [--metrics-listen ADDR] \
     [--log-level error|warn|info|debug] [--log-file PATH] [--log-max-bytes N] \
     [--sample-interval DUR] [--timeseries-cap N] [--trace-max-bytes N] \
     [--journal DIR] [--journal-sync always|interval|interval=DUR] \
     [--journal-compact-bytes N] [--conn-timeout DUR] [--max-frame-bytes N] \
     [--max-conns N]";

/// `dbscan serve`: runs the clustering daemon until SIGTERM/SIGINT or a
/// `shutdown` verb drains it. Exits 0 on a clean drain with the final
/// `dbscan-server-stats/v1` envelope on stdout.
fn serve_main(argv: Vec<String>) -> ExitCode {
    let mut cfg = dbscan_server::ServerConfig::default();
    let mut bound = None;
    let mut args = argv.into_iter();
    let parse_dur = |raw: String, flag: &str| -> Duration {
        parse_duration(&raw).unwrap_or_else(|e| {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                eprintln!("{SERVE_USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => {
                let path = PathBuf::from(value("--socket"));
                bound = Some(format!("unix {}", path.display()));
                cfg.bind = dbscan_server::Bind::Unix(path);
            }
            "--listen" => {
                let addr = value("--listen");
                bound = Some(format!("tcp {addr}"));
                cfg.bind = dbscan_server::Bind::Tcp(addr);
            }
            "--max-queue" => cfg.max_queue = parse_num(&value("--max-queue"), "--max-queue"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--job-threads" => cfg.job_threads = parse_num(&value("--job-threads"), "--job-threads"),
            "--pressure-threshold" => {
                cfg.pressure_threshold =
                    Some(parse_dur(value("--pressure-threshold"), "--pressure-threshold"))
            }
            "--overload-rho" => cfg.overload_rho = parse_num(&value("--overload-rho"), "--overload-rho"),
            "--drain-deadline" => {
                cfg.drain_deadline = parse_dur(value("--drain-deadline"), "--drain-deadline")
            }
            "--max-index-bytes" => {
                cfg.max_index_bytes =
                    Some(parse_num(&value("--max-index-bytes"), "--max-index-bytes"))
            }
            "--cache-bytes" => cfg.cache_bytes = parse_num(&value("--cache-bytes"), "--cache-bytes"),
            "--metrics-listen" => cfg.metrics_listen = Some(value("--metrics-listen")),
            "--log-level" => {
                let raw = value("--log-level");
                cfg.log_level = dbscan_server::Level::parse(&raw).unwrap_or_else(|| {
                    eprintln!("--log-level: unknown level {raw:?} (error|warn|info|debug)");
                    std::process::exit(2);
                });
            }
            "--log-file" => cfg.log_file = Some(PathBuf::from(value("--log-file"))),
            "--log-max-bytes" => {
                cfg.log_max_bytes = parse_num(&value("--log-max-bytes"), "--log-max-bytes")
            }
            "--sample-interval" => {
                cfg.sample_interval = parse_dur(value("--sample-interval"), "--sample-interval")
            }
            "--timeseries-cap" => {
                cfg.timeseries_cap = parse_num(&value("--timeseries-cap"), "--timeseries-cap")
            }
            "--trace-max-bytes" => {
                cfg.trace_max_bytes = parse_num(&value("--trace-max-bytes"), "--trace-max-bytes")
            }
            "--journal" => {
                let dir = PathBuf::from(value("--journal"));
                match &mut cfg.journal {
                    Some(jc) => jc.dir = dir,
                    None => cfg.journal = Some(dbscan_server::JournalConfig::new(dir)),
                }
            }
            "--journal-sync" => {
                let raw = value("--journal-sync");
                let sync = dbscan_server::JournalSync::parse_flag(&raw).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                match &mut cfg.journal {
                    Some(jc) => jc.sync = sync,
                    None => {
                        eprintln!("--journal-sync requires --journal DIR (pass --journal first)");
                        std::process::exit(2);
                    }
                }
            }
            "--journal-compact-bytes" => {
                let bytes = parse_num(&value("--journal-compact-bytes"), "--journal-compact-bytes");
                match &mut cfg.journal {
                    Some(jc) => jc.compact_bytes = bytes,
                    None => {
                        eprintln!(
                            "--journal-compact-bytes requires --journal DIR (pass --journal first)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--conn-timeout" => {
                cfg.conn_timeout = Some(parse_dur(value("--conn-timeout"), "--conn-timeout"))
            }
            "--max-frame-bytes" => {
                cfg.max_frame_bytes = parse_num(&value("--max-frame-bytes"), "--max-frame-bytes")
            }
            "--max-conns" => cfg.max_conns = parse_num(&value("--max-conns"), "--max-conns"),
            "--help" | "-h" => {
                eprintln!("{SERVE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{SERVE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(bound) = bound else {
        eprintln!("serve needs --socket PATH or --listen ADDR");
        eprintln!("{SERVE_USAGE}");
        return ExitCode::from(2);
    };
    signals::install();
    let handle = match dbscan_server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server ({bound}): {e}");
            return ExitCode::from(1);
        }
    };
    // For `--listen host:0` the kernel picked the port; report the real one.
    match handle.tcp_addr {
        Some(addr) => eprintln!("dbscan-server listening on tcp {addr}"),
        None => eprintln!("dbscan-server listening on {bound}"),
    }
    if let Some(addr) = handle.metrics_addr {
        eprintln!("dbscan-server metrics on http://{addr}/metrics");
    }
    let stats = handle.wait();
    println!("{}", stats.to_line());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("serve") {
        return serve_main(raw.skip(1).collect());
    }
    drop(raw);
    // Batch path: the first SIGINT/SIGTERM cancels the run cooperatively
    // (exit 130), the second falls back to the default disposition.
    signals::install();
    let args = parse_args();
    let (dim, flat) = match read_csv_dynamic(&args.input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input.display());
            return ExitCode::from(1);
        }
    };
    let result = match dim {
        1 => run::<1>(&args, &flat),
        2 => run::<2>(&args, &flat),
        3 => run::<3>(&args, &flat),
        4 => run::<4>(&args, &flat),
        5 => run::<5>(&args, &flat),
        6 => run::<6>(&args, &flat),
        7 => run::<7>(&args, &flat),
        8 => run::<8>(&args, &flat),
        d => Err(format!("unsupported dimensionality {d} (1-8 supported)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if signals::shutdown_requested() {
                // 128 + SIGINT, the conventional "killed by Ctrl-C" status:
                // the run was interrupted, not wrong.
                ExitCode::from(130)
            } else {
                ExitCode::from(1)
            }
        }
    }
}
