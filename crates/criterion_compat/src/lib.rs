//! Dependency-free stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The build environment has no crates.io access, so the workspace aliases
//! the `criterion` dependency name to this crate. Measurement model: each
//! benchmark runs a short warmup, then `sample_size` timed samples of one
//! closure invocation each; median / mean / min are printed to stdout. No
//! statistical analysis, plots, or baselines — the serious measurements in
//! this repository come from the `repro` harness, which has its own timing
//! and budget machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_id().id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_benchmark_id().id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut s = bencher.samples;
        if s.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        s.sort_unstable();
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{}/{id}: median {median:?}  mean {mean:?}  min {:?}  ({} samples)",
            self.name,
            s[0],
            s.len()
        );
    }
}

/// Conversion shim so both `&str` and [`BenchmarkId`] work as identifiers.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Short warmup so lazy initialization and cache effects do not land
        // in the first sample.
        let warmup = (self.sample_size / 10).clamp(1, 3);
        for _ in 0..warmup {
            std::hint::black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Re-export so `criterion::black_box` keeps working if anyone uses it.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // 3 samples + warmup ran at least once each.
        assert!(calls >= 4);
    }
}
