//! Integration tests for deadline-aware execution: graceful degradation
//! (Sandwich-Theorem validity), partial-result consistency, abort hygiene,
//! and bounded cancellation latency.

use dbscan_core::algorithms::{grid_exact, try_grid_exact_deadline, BcpStrategy};
use dbscan_core::parallel::{try_grid_exact_par_deadline, ParConfig};
use dbscan_core::{
    Assignment, Clustering, DbscanError, DbscanParams, DeadlineConfig, DeadlineOutcome,
    DeadlinePolicy, NoStats, RecoveryPolicy, ResourceLimits,
};
use dbscan_geom::point::p2;
use dbscan_geom::Point;
use std::time::Duration;

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * span
    };
    (0..n).map(|_| p2(next(), next())).collect()
}

fn deadline(budget: Duration, policy: DeadlinePolicy) -> DeadlineConfig {
    DeadlineConfig {
        budget: Some(budget),
        policy,
        degrade_rho: 0.05,
        stall_timeout: None,
    }
}

fn par_config(threads: usize, dl: DeadlineConfig) -> ParConfig {
    ParConfig {
        threads: Some(threads),
        recovery: RecoveryPolicy::Fail,
        limits: ResourceLimits::UNLIMITED,
        deadline: dl,
        ..ParConfig::default()
    }
}

/// Assert that `a`'s clusters refine `b`'s on core points: every core point
/// of `a` is core in `b`, and two core points sharing a cluster in `a` share
/// one in `b`. This is the containment direction of the Sandwich Theorem
/// restricted to core points (where cluster membership is unique).
fn assert_core_refines(a: &Clustering, b: &Clustering, what: &str) {
    let mut map: Vec<Option<u32>> = vec![None; a.num_clusters];
    for (i, ass) in a.assignments.iter().enumerate() {
        if let Assignment::Core(ca) = ass {
            let Assignment::Core(cb) = &b.assignments[i] else {
                panic!("{what}: point {i} is core on the finer side but not the coarser");
            };
            match map[*ca as usize] {
                None => map[*ca as usize] = Some(*cb),
                Some(prev) => assert_eq!(
                    prev, *cb,
                    "{what}: cluster {ca} split across coarser clusters at point {i}"
                ),
            }
        }
    }
}

#[test]
fn zero_budget_degrade_is_deterministic_and_identical_across_paths() {
    let pts = lcg_points(2_000, 30.0, 11);
    let p = params(1.0, 4);
    let dl = deadline(Duration::ZERO, DeadlinePolicy::Degrade);

    let run_seq = || {
        try_grid_exact_deadline(
            &pts,
            p,
            BcpStrategy::TreeAssisted,
            &ResourceLimits::UNLIMITED,
            &dl,
            &NoStats,
        )
        .unwrap()
    };
    let (first, rep1) = run_seq();
    let (second, rep2) = run_seq();
    assert_eq!(rep1.outcome, DeadlineOutcome::Degraded);
    assert_eq!(rep2.outcome, DeadlineOutcome::Degraded);
    assert!(rep1.degraded_edges > 0, "{rep1}");
    assert!(rep1.complete && rep2.complete);
    // Every edge went through the deterministic approximate path, so two
    // runs at the same budget point agree bit-for-bit.
    assert_eq!(first.assignments, second.assignments);
    assert_eq!(first.num_clusters, second.num_clusters);

    // The parallel edge phase answers the same deterministic predicate per
    // pair (skipped pairs are already-connected), so it lands on the same
    // clustering as the sequential degraded run.
    for threads in [2, 4] {
        let (par, rep) =
            try_grid_exact_par_deadline(&pts, p, &par_config(threads, dl), &NoStats).unwrap();
        assert_eq!(rep.outcome, DeadlineOutcome::Degraded);
        assert!(rep.degraded_edges > 0);
        assert_eq!(par.assignments, first.assignments, "threads={threads}");
    }
}

#[test]
fn degraded_runs_stay_inside_the_sandwich() {
    let pts = lcg_points(2_000, 25.0, 3);
    let p = params(1.2, 4);
    let rho = 0.05;
    let inner = grid_exact(&pts, p);
    let outer = grid_exact(&pts, p.inflate(rho));

    // A spread of budget points: all-degraded (zero) through mixed
    // exact/degraded prefixes. Where the trip lands is timing-dependent;
    // the sandwich must hold at every mix.
    for budget_us in [0u64, 50, 200, 1_000, 5_000] {
        let (got, report) = try_grid_exact_deadline(
            &pts,
            p,
            BcpStrategy::TreeAssisted,
            &ResourceLimits::UNLIMITED,
            &deadline(Duration::from_micros(budget_us), DeadlinePolicy::Degrade),
            &NoStats,
        )
        .unwrap();
        assert!(report.complete, "degrade never truncates: {report}");
        // Labeling stays exact under degrade, so the core set matches the
        // exact run's point for point.
        for (i, a) in inner.assignments.iter().enumerate() {
            assert_eq!(
                a.is_core(),
                got.assignments[i].is_core(),
                "budget={budget_us}us point={i}"
            );
        }
        assert_core_refines(&inner, &got, "inner ⊑ degraded");
        assert_core_refines(&got, &outer, "degraded ⊑ outer");
    }
}

#[test]
fn partial_results_are_subset_consistent_prefixes() {
    let pts = lcg_points(2_000, 25.0, 5);
    let p = params(1.2, 4);
    let full = grid_exact(&pts, p);

    for budget_us in [0u64, 100, 500, 2_000] {
        let (got, report) = try_grid_exact_deadline(
            &pts,
            p,
            BcpStrategy::TreeAssisted,
            &ResourceLimits::UNLIMITED,
            &deadline(Duration::from_micros(budget_us), DeadlinePolicy::Partial),
            &NoStats,
        )
        .unwrap();
        if report.outcome == DeadlineOutcome::Exact {
            // The run finished without observing the trip; it must be the
            // exact answer.
            assert_eq!(got.assignments, full.assignments);
            continue;
        }
        assert_eq!(report.outcome, DeadlineOutcome::Partial);
        assert!(!report.complete);
        // Prefix property: every core point of the partial run is core in
        // the full run, and partial co-membership implies full
        // co-membership (the partial union-find holds a subset of the
        // full run's unions).
        assert_core_refines(&got, &full, "partial ⊑ full");
        // A partial border point is within ε of a discovered core point,
        // so the full run cannot call it noise.
        for (i, a) in got.assignments.iter().enumerate() {
            if a.is_border() {
                assert!(
                    !full.assignments[i].is_noise(),
                    "budget={budget_us}us point={i} is border in partial but noise in full"
                );
            }
        }
    }

    // Zero budget with Partial must still produce a structurally valid
    // clustering (validated ids, non-empty border lists).
    let (zero, report) = try_grid_exact_deadline(
        &pts,
        p,
        BcpStrategy::TreeAssisted,
        &ResourceLimits::UNLIMITED,
        &deadline(Duration::ZERO, DeadlinePolicy::Partial),
        &NoStats,
    )
    .unwrap();
    assert_eq!(report.outcome, DeadlineOutcome::Partial);
    assert!(zero.validate().is_ok(), "{:?}", zero.validate());
}

#[test]
fn abort_surfaces_typed_error_and_leaks_no_threads() {
    let pts = lcg_points(4_000, 40.0, 9);
    let p = params(1.0, 4);
    let dl = deadline(Duration::ZERO, DeadlinePolicy::Abort);

    // Sequential: the first checkpoint observes the trip in the labeling
    // stage.
    let err = try_grid_exact_deadline(
        &pts,
        p,
        BcpStrategy::TreeAssisted,
        &ResourceLimits::UNLIMITED,
        &dl,
        &NoStats,
    )
    .unwrap_err();
    match &err {
        DbscanError::DeadlineExceeded { phase, .. } => assert_eq!(*phase, "labeling"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Parallel: same typed error. Workers now live on the persistent shared
    // pool (parked, not torn down — see `dbscan_core::WorkerPool`), so the
    // hygiene invariant is *no growth across calls*: after a first call has
    // warmed the pool for this thread count, repeated aborting calls must
    // leave the process thread count exactly where it was.
    let start = std::time::Instant::now();
    let err = try_grid_exact_par_deadline(&pts, p, &par_config(4, dl), &NoStats).unwrap_err();
    assert!(
        matches!(err, DbscanError::DeadlineExceeded { .. }),
        "got {err:?}"
    );
    // An impossible budget must terminate promptly — well inside budget +
    // cancellation-latency bound, generously padded for CI jitter.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "abort took {:?}",
        start.elapsed()
    );
    let baseline = thread_count();
    for _ in 0..5 {
        let err = try_grid_exact_par_deadline(&pts, p, &par_config(4, dl), &NoStats).unwrap_err();
        assert!(matches!(err, DbscanError::DeadlineExceeded { .. }));
    }
    let now = thread_count();
    assert!(now <= baseline, "leaked threads: {baseline} -> {now}");
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, |d| d.count())
}

/// Cancellation latency stays bounded even when workers are slowed by
/// injected steal delays: the first checkpoint past the budget edge records
/// how far past it the run actually noticed.
#[cfg(feature = "fault-injection")]
#[test]
fn cancel_latency_is_bounded_under_injected_steal_delays() {
    use dbscan_core::FaultPlan;

    let pts = lcg_points(4_000, 40.0, 13);
    let p = params(1.0, 4);
    let mut config = par_config(4, deadline(Duration::from_micros(200), DeadlinePolicy::Partial));
    config.faults = FaultPlan::new(5).with_steal_delay_micros(2_000);
    let (_, report) = try_grid_exact_par_deadline(&pts, p, &config, &NoStats).unwrap();
    // The budget certainly trips on this input; the observed overshoot must
    // stay within one task plus the injected delay, padded generously.
    assert!(
        report.cancel_latency_ns < 500_000_000,
        "cancel latency {}ns out of bounds ({report})",
        report.cancel_latency_ns
    );
}
