//! Consistency properties of the event-tracing layer (`dbscan_core::trace`):
//! phase spans agree exactly with the stats phase nanos, spans nest properly
//! on every timeline, ring-buffer overflow is lossy-but-sound, and the Chrome
//! exporter emits valid trace-event JSON.

use dbscan_core::algorithms::{grid_exact_instrumented, BcpStrategy};
use dbscan_core::parallel::grid_exact_par_instrumented;
use dbscan_core::trace::export::chrome_trace_json;
use dbscan_core::trace::{EventName, TraceSnapshot, Tracer};
use dbscan_core::{DbscanParams, Phase, TracedStats};
use dbscan_geom::Point;

fn lcg_points<const D: usize>(n: usize, span: f64, seed: u64) -> Vec<Point<D>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * span
    };
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = next();
            }
            Point(c)
        })
        .collect()
}

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

/// Sequential run: for every phase, the sum of that phase's span durations
/// equals the stats-layer phase nanos *exactly* — both sides are computed
/// from the same `elapsed()` reading.
#[test]
fn phase_span_totals_equal_stats_phase_nanos_sequentially() {
    let pts = lcg_points::<3>(600, 8.0, 7);
    let ts = TracedStats::new(1);
    grid_exact_instrumented(&pts, params(0.9, 4), BcpStrategy::TreeAssisted, &ts);
    let report = ts.stats.report();
    let snap = ts.tracer.snapshot();
    assert_eq!(snap.events_dropped, 0);
    for p in Phase::ALL {
        let span_total: u64 = snap
            .events
            .iter()
            .filter(|e| e.name == EventName::of_phase(p))
            .map(|e| e.dur_ns)
            .sum();
        assert_eq!(
            span_total,
            report.phase_nanos(p),
            "phase {} spans must sum to the stats nanos",
            p.name()
        );
    }
    // The run actually produced phase spans (Total is always measured).
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == EventName::PhaseTotal && e.dur_ns > 0));
}

/// On every lane, spans must nest: sorted by (ts, longest-first), each span
/// is either disjoint from the previous open span or fully contained in it.
fn assert_spans_nest(snap: &TraceSnapshot) {
    let mut i = 0;
    while i < snap.events.len() {
        let lane = snap.events[i].lane;
        let mut stack: Vec<(u64, u64)> = Vec::new(); // (ts, end) of open spans
        while i < snap.events.len() && snap.events[i].lane == lane {
            let e = &snap.events[i];
            i += 1;
            if !e.name.is_span() {
                continue;
            }
            while let Some(&(_, end)) = stack.last() {
                if end <= e.ts_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(ts, end)) = stack.last() {
                assert!(
                    ts <= e.ts_ns && e.end_ns() <= end,
                    "lane {lane}: span {:?} [{}, {}) must nest in [{ts}, {end})",
                    e.name,
                    e.ts_ns,
                    e.end_ns()
                );
            }
            stack.push((e.ts_ns, e.end_ns()));
        }
    }
}

#[test]
fn spans_nest_on_sequential_and_parallel_runs() {
    let pts = lcg_points::<3>(900, 8.0, 11);
    let seq = TracedStats::new(1);
    grid_exact_instrumented(&pts, params(0.9, 4), BcpStrategy::TreeAssisted, &seq);
    assert_spans_nest(&seq.tracer.snapshot());

    let par = TracedStats::new(5);
    grid_exact_par_instrumented(&pts, params(0.9, 4), Some(4), &par);
    let snap = par.tracer.snapshot();
    assert_spans_nest(&snap);
    // The worker lanes actually carried task spans.
    assert!(snap
        .events
        .iter()
        .any(|e| e.lane > 0 && e.name.is_span() && e.name.as_phase().is_none()));
}

#[test]
fn ring_buffer_overflow_counts_drops_and_keeps_early_events() {
    let t = Tracer::with_capacity(1, 8);
    for i in 0..20u32 {
        t.instant(0, EventName::Steal, [i, 0]);
    }
    let snap = t.snapshot();
    assert_eq!(snap.events.len(), 8);
    assert_eq!(snap.events_dropped, 12);
    // The retained events are the first eight, uncorrupted and in order.
    for (i, e) in snap.events.iter().enumerate() {
        assert_eq!(e.name, EventName::Steal);
        assert_eq!(e.arg0, i as u32);
    }
}

// --- A minimal JSON parser, just enough to validate exporter output. -------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { s: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self.s.get(self.i).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn number(&mut self) -> Json {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text:?}")))
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let b = self.s[self.i];
            self.i += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.s[self.i];
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char, // \" \\ \/ — enough for our output
                    });
                }
                other => out.push(other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] got {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut members = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(members);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            members.push((key, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(members);
                }
                other => panic!("expected , or }} got {:?}", other as char),
            }
        }
    }

    fn parse(mut self) -> Json {
        let v = self.value();
        self.ws();
        assert_eq!(self.i, self.s.len(), "trailing bytes after JSON value");
        v
    }
}

#[test]
fn chrome_export_of_a_parallel_run_is_valid_trace_event_json() {
    let pts = lcg_points::<3>(900, 8.0, 23);
    let ts = TracedStats::new(5);
    grid_exact_par_instrumented(&pts, params(0.9, 4), Some(4), &ts);
    let json_text = chrome_trace_json(&ts.tracer.snapshot());
    let root = Parser::new(&json_text).parse();

    let Json::Arr(events) = root else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(!events.is_empty());

    let mut thread_names = Vec::new();
    let mut task_spans = 0;
    for ev in &events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has ph");
        assert!(ev.get("pid").and_then(Json::as_num).is_some(), "every event has pid");
        assert!(ev.get("tid").and_then(Json::as_num).is_some(), "every event has tid");
        match ph {
            "X" => {
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
                assert!(ev.get("dur").and_then(Json::as_num).is_some());
                if ev.get("cat").and_then(Json::as_str) == Some("task") {
                    task_spans += 1;
                    let args = ev.get("args").expect("task spans carry args");
                    assert!(args.get("task").is_some());
                    assert!(args.get("payload").is_some());
                    assert!(args.get("home").is_some());
                    assert!(args.get("stolen").is_some());
                }
            }
            "i" => {
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
            }
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    let name = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    thread_names.push((ev.get("tid").unwrap().as_num().unwrap() as u32, name));
                }
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    // One named track per lane: coordinator + 4 workers.
    thread_names.sort();
    assert_eq!(
        thread_names,
        vec![
            (0, "coordinator".to_string()),
            (1, "worker-0".to_string()),
            (2, "worker-1".to_string()),
            (3, "worker-2".to_string()),
            (4, "worker-3".to_string()),
        ]
    );
    assert!(task_spans > 0, "a parallel run must record task spans");
}

#[cfg(feature = "fault-injection")]
#[test]
fn fault_injected_run_traces_panics_and_the_fallback() {
    use dbscan_core::parallel::try_grid_exact_par_instrumented;
    use dbscan_core::{FaultPlan, FaultSite, ParConfig, RecoveryPolicy};

    let pts = lcg_points::<3>(900, 8.0, 42);
    let ts = TracedStats::new(5);
    let config = ParConfig {
        threads: Some(4),
        recovery: RecoveryPolicy::FallbackSequential,
        faults: FaultPlan::new(42).with_panic(FaultSite::EdgeTests, 1.0),
        ..ParConfig::default()
    };
    try_grid_exact_par_instrumented(&pts, params(0.9, 4), &config, &ts)
        .expect("fallback-sequential absorbs the injected panic");
    let snap = ts.tracer.snapshot();
    assert!(
        snap.events.iter().any(|e| e.name == EventName::WorkerPanic),
        "the injected panic must appear as a worker_panic instant"
    );
    assert!(
        snap.events
            .iter()
            .any(|e| e.name == EventName::SequentialFallback),
        "the recovery must appear as a sequential_fallback instant"
    );
}
