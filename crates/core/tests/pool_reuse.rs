//! Persistent worker-pool properties: the park/unpark epoch protocol cannot
//! miss a wakeup, and one pool handle serves many clustering runs without
//! spawning a single additional thread.

use dbscan_core::algorithms::grid_exact;
use dbscan_core::parallel::{try_grid_exact_par_instrumented, ParConfig};
use dbscan_core::{RecoveryPolicy, ResourceLimits, Stats, WorkerPool};
use dbscan_geom::point::p2;
use dbscan_geom::Point;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * span
    };
    (0..n).map(|_| p2(next(), next())).collect()
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, |d| d.count())
}

/// Interleaving check for the phase-handoff protocol, in the style of the
/// `WorkQueue::close` spin harness: phases are submitted back-to-back with no
/// gap, so the coordinator's epoch bump races the workers' re-park (the
/// coordinator is released from the completion barrier while workers are
/// still on their way back to the condvar wait). A missed wakeup would leave
/// `remaining > 0` forever and hang the barrier — the rounds run on a helper
/// thread and the test fails via `recv_timeout` instead of wedging the suite.
///
/// Uneven spin bodies stagger the workers, so every round some workers are
/// parking (or already parked) while the next phase is submitted — exactly
/// the window the under-mutex epoch check must cover.
#[test]
fn no_missed_wakeup_when_phase_submitted_while_parking() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let pool = WorkerPool::new(4);
        let calls: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for round in 0..500u64 {
            pool.run_phase(&|w| {
                // Worker-dependent spin: finish times diverge, so the fast
                // workers park while the slow ones still hold the phase open.
                for _ in 0..(w as u64 * 50 * (round % 3)) {
                    std::hint::spin_loop();
                }
                calls[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        let counts: Vec<u64> = calls.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        tx.send(counts).unwrap();
    });
    let counts = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("phase handoff hung: a parking worker missed an epoch wakeup");
    assert_eq!(counts, vec![500; 4], "every worker runs every phase once");
}

/// One pool, ten consecutive clustering runs: labels stay bit-identical to
/// the sequential result on every run, and the process thread count after the
/// first (pool-spawning) run never grows again — phases park and reuse the
/// same workers instead of respawning. With `fault-injection` enabled, run 5
/// is a chaos run whose injected edge-phase panic falls back to the
/// sequential path mid-sequence; the pool must absorb that too and keep
/// serving the remaining runs from the same threads.
#[test]
fn ten_runs_on_one_pool_are_bit_identical_with_zero_thread_growth() {
    let pts = lcg_points(2_000, 30.0, 7);
    let p = dbscan_core::DbscanParams::new(1.0, 4).unwrap();
    let seq = grid_exact(&pts, p);

    let pool = Arc::new(WorkerPool::new(4));
    let config = ParConfig {
        pool: Some(Arc::clone(&pool)),
        limits: ResourceLimits::UNLIMITED,
        recovery: RecoveryPolicy::FallbackSequential,
        ..ParConfig::default()
    };

    // Run 0 warms nothing extra: the explicit pool spawned at construction.
    let baseline = thread_count();
    for run in 0..10 {
        #[cfg(feature = "fault-injection")]
        let config = {
            let mut c = config.clone();
            if run == 5 {
                // Kill every edge task: the attempt poisons, the driver falls
                // back sequentially, and the result must still be identical.
                c.faults =
                    dbscan_core::FaultPlan::new(42).with_panic(dbscan_core::FaultSite::EdgeTests, 1.0);
            }
            c
        };
        let stats = Stats::new();
        let out = try_grid_exact_par_instrumented(&pts, p, &config, &stats)
            .unwrap_or_else(|e| panic!("run {run}: {e}"));
        assert_eq!(
            out.assignments, seq.assignments,
            "run {run}: labels must be bit-identical to sequential"
        );
        #[cfg(feature = "fault-injection")]
        if run == 5 {
            use dbscan_core::Counter;
            assert_eq!(
                stats.report().counter(Counter::SequentialFallbacks),
                1,
                "run 5 must have taken the fallback path"
            );
        }
        let now = thread_count();
        assert!(
            now <= baseline,
            "run {run}: thread count grew {baseline} -> {now} (pool must reuse, not respawn)"
        );
    }
    drop(config);
    drop(pool);
}
