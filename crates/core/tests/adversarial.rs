//! Adversarial-input corpus: every algorithm's fallible entry point must
//! return a clean `Ok` or a typed `DbscanError` — never panic — on inputs
//! chosen to stress the failure layer (PR 3's hardening contract).

use dbscan_core::algorithms::{
    try_cit08, try_grid_exact, try_grid_exact_instrumented, try_gunawan_2d, try_kdd96_kdtree,
    try_kdd96_linear, try_kdd96_rtree, try_rho_approx, try_rho_approx_instrumented, BcpStrategy,
    Cit08Config,
};
use dbscan_core::parallel::{try_grid_exact_par, try_rho_approx_par, ParConfig};
use dbscan_core::{Clustering, DbscanError, DbscanParams, NoStats, ResourceLimits};
use dbscan_geom::point::p2;
use dbscan_geom::Point;

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

/// Runs every fallible entry point (the five sequential algorithms plus the
/// two parallel variants) on one input and hands each result to `check`.
fn run_all(
    pts: &[Point<2>],
    p: DbscanParams,
    check: impl Fn(&'static str, Result<Clustering, DbscanError>),
) {
    check("kdd96_linear", try_kdd96_linear(pts, p));
    check("kdd96_kdtree", try_kdd96_kdtree(pts, p));
    check("kdd96_rtree", try_kdd96_rtree(pts, p));
    check("gunawan_2d", try_gunawan_2d(pts, p));
    check("grid_exact", try_grid_exact(pts, p));
    check("rho_approx", try_rho_approx(pts, p, 0.001));
    check("cit08", try_cit08(pts, p, Cit08Config::default()));
    let config = ParConfig::with_threads(Some(4));
    check("grid_exact_par", try_grid_exact_par(pts, p, &config));
    check("rho_approx_par", try_rho_approx_par(pts, p, 0.001, &config));
}

#[test]
fn all_duplicate_points_cluster_cleanly() {
    // Footnote 1's adversarial instance: n identical points. Everything is
    // within eps of everything; one cluster, no noise, no panic.
    let pts = vec![p2(3.25, -1.5); 500];
    run_all(&pts, params(1.0, 10), |name, r| {
        let c = r.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.num_clusters, 1, "{name}");
        assert_eq!(c.core_count(), 500, "{name}");
    });
}

#[test]
fn coordinates_near_f64_max_give_typed_errors_not_wraps() {
    // |q| = 1e308 / (eps/sqrt(2)) overflows any i64 cell grid. The grid-based
    // algorithms must say so with CoordinateOverflow; KDD'96 has no grid and
    // must simply cluster the two far-apart points as noise.
    let pts = vec![p2(1e308, 0.0), p2(-1e308, 0.0), p2(0.0, 0.0)];
    let p = params(1.0, 2);
    for (name, r) in [
        ("gunawan_2d", try_gunawan_2d(&pts, p)),
        ("grid_exact", try_grid_exact(&pts, p)),
        ("rho_approx", try_rho_approx(&pts, p, 0.001)),
        ("cit08", try_cit08(&pts, p, Cit08Config::default())),
        (
            "grid_exact_par",
            try_grid_exact_par(&pts, p, &ParConfig::default()),
        ),
        (
            "rho_approx_par",
            try_rho_approx_par(&pts, p, 0.001, &ParConfig::default()),
        ),
    ] {
        match r {
            Err(DbscanError::CoordinateOverflow { value, .. }) => {
                assert_eq!(value.abs(), 1e308, "{name}")
            }
            other => panic!("{name}: expected CoordinateOverflow, got {other:?}"),
        }
    }
    for (name, r) in [
        ("kdd96_linear", try_kdd96_linear(&pts, p)),
        ("kdd96_kdtree", try_kdd96_kdtree(&pts, p)),
        ("kdd96_rtree", try_kdd96_rtree(&pts, p)),
    ] {
        let c = r.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.num_clusters, 0, "{name}");
        assert_eq!(c.noise_count(), 3, "{name}");
    }
}

#[test]
fn min_pts_larger_than_n_means_all_noise() {
    let pts: Vec<Point<2>> = (0..20).map(|i| p2(i as f64 * 0.1, 0.0)).collect();
    run_all(&pts, params(1.0, 100), |name, r| {
        let c = r.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.num_clusters, 0, "{name}");
        assert_eq!(c.noise_count(), 20, "{name}");
    });
}

#[test]
fn single_point_dataset() {
    let pts = vec![p2(0.0, 0.0)];
    run_all(&pts, params(1.0, 1), |name, r| {
        let c = r.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.num_clusters, 1, "{name}");
        assert_eq!(c.core_count(), 1, "{name}");
    });
}

#[test]
fn empty_dataset() {
    run_all(&[], params(1.0, 2), |name, r| {
        let c = r.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.num_clusters, 0, "{name}");
        assert!(c.assignments.is_empty(), "{name}");
    });
}

#[test]
fn nan_coordinate_reports_offending_point() {
    let pts = vec![p2(0.0, 0.0), p2(1.0, f64::NAN), p2(2.0, 0.0)];
    run_all(&pts, params(1.0, 2), |name, r| match r {
        Err(DbscanError::NonFinitePoint { index }) => assert_eq!(index, 1, "{name}"),
        other => panic!("{name}: expected NonFinitePoint, got {other:?}"),
    });
}

#[test]
fn invalid_rho_values_are_typed_errors() {
    let pts = vec![p2(0.0, 0.0), p2(0.5, 0.0)];
    let p = params(1.0, 1);
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-12] {
        for (name, r) in [
            ("rho_approx", try_rho_approx(&pts, p, bad)),
            (
                "rho_approx_par",
                try_rho_approx_par(&pts, p, bad, &ParConfig::default()),
            ),
        ] {
            match r {
                Err(DbscanError::InvalidRho { rho, .. }) => {
                    assert!(rho.is_nan() == bad.is_nan() && (rho.is_nan() || rho == bad), "{name}")
                }
                other => panic!("{name} rho={bad}: expected InvalidRho, got {other:?}"),
            }
        }
    }
    // eps * (1 + rho) overflowing f64 is also rejected up front.
    assert!(matches!(
        try_rho_approx(&pts, params(1e300, 1), 1e10),
        Err(DbscanError::InvalidRho { .. })
    ));
}

#[test]
fn tiny_byte_budget_is_refused_not_oom() {
    let pts: Vec<Point<2>> = (0..2_000)
        .map(|i| p2((i % 50) as f64 * 0.4, (i / 50) as f64 * 0.4))
        .collect();
    let p = params(1.0, 4);
    let limits = ResourceLimits::with_max_index_bytes(64);
    for (name, r) in [
        (
            "grid_exact",
            try_grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &limits, &NoStats),
        ),
        (
            "rho_approx",
            try_rho_approx_instrumented(&pts, p, 0.001, &limits, &NoStats),
        ),
        (
            "grid_exact_par",
            try_grid_exact_par(
                &pts,
                p,
                &ParConfig {
                    limits,
                    ..ParConfig::default()
                },
            ),
        ),
    ] {
        match r {
            Err(DbscanError::ResourceLimit {
                estimated_bytes,
                budget_bytes,
                ..
            }) => {
                assert!(estimated_bytes > budget_bytes, "{name}");
                assert_eq!(budget_bytes, 64, "{name}");
            }
            other => panic!("{name}: expected ResourceLimit, got {other:?}"),
        }
    }
    // A generous budget admits the same run.
    let roomy = ResourceLimits::with_max_index_bytes(64 << 20);
    assert!(try_grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &roomy, &NoStats)
        .is_ok());
}
