//! Chaos tests: deterministic fault injection into the parallel pipeline.
//!
//! Compiled only with `--features fault-injection`; without the feature the
//! [`FaultPlan`] hooks are no-ops and these scenarios cannot fire.
#![cfg(feature = "fault-injection")]

use dbscan_core::algorithms::{grid_exact, rho_approx};
use dbscan_core::parallel::{try_grid_exact_par_instrumented, try_rho_approx_par_instrumented, ParConfig};
use dbscan_core::{
    Counter, DbscanError, DbscanParams, FaultPlan, FaultSite, RecoveryPolicy, ResourceLimits,
    Stats,
};
use dbscan_geom::point::p2;
use dbscan_geom::Point;

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * span
    };
    (0..n).map(|_| p2(next(), next())).collect()
}

/// A dataset whose grid spans far more than 2×4 cells, so the parallel
/// labeling path (and hence every fault site) actually engages at 4 threads.
fn dataset() -> Vec<Point<2>> {
    lcg_points(2_000, 30.0, 7)
}

fn config(recovery: RecoveryPolicy, faults: FaultPlan) -> ParConfig {
    ParConfig {
        threads: Some(4),
        recovery,
        limits: ResourceLimits::UNLIMITED,
        faults,
        ..ParConfig::default()
    }
}

#[test]
fn edge_phase_panic_under_fail_policy_surfaces_worker_panicked() {
    let pts = dataset();
    let p = params(1.0, 4);
    let faults = FaultPlan::new(42).with_panic(FaultSite::EdgeTests, 1.0);
    let stats = Stats::new();
    let err = try_grid_exact_par_instrumented(&pts, p, &config(RecoveryPolicy::Fail, faults), &stats)
        .unwrap_err();
    match err {
        DbscanError::WorkerPanicked { phase, payload, .. } => {
            assert_eq!(phase, "edge_tests");
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(stats.report().counter(Counter::WorkerPanics) >= 1);
    assert_eq!(stats.report().counter(Counter::SequentialFallbacks), 0);
}

#[test]
fn fallback_sequential_is_bit_identical_to_unfaulted_sequential_run() {
    let pts = dataset();
    let p = params(1.0, 4);
    let seq = grid_exact(&pts, p);
    let faults = FaultPlan::new(42).with_panic(FaultSite::EdgeTests, 1.0);
    let stats = Stats::new();
    let out = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::FallbackSequential, faults),
        &stats,
    )
    .expect("fallback must absorb the injected panic");
    assert_eq!(out.assignments, seq.assignments);
    assert_eq!(out.num_clusters, seq.num_clusters);
    let report = stats.report();
    assert!(report.counter(Counter::WorkerPanics) >= 1);
    assert_eq!(report.counter(Counter::SequentialFallbacks), 1);
}

#[test]
fn labeling_phase_faults_are_isolated_too() {
    let pts = dataset();
    let p = params(1.0, 4);
    let faults = FaultPlan::new(7).with_panic(FaultSite::Labeling, 1.0);
    let err = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::Fail, faults.clone()),
        &Stats::new(),
    )
    .unwrap_err();
    assert!(
        matches!(&err, DbscanError::WorkerPanicked { phase, .. } if phase == "labeling"),
        "unexpected error: {err:?}"
    );
    let seq = grid_exact(&pts, p);
    let recovered = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::FallbackSequential, faults),
        &Stats::new(),
    )
    .unwrap();
    assert_eq!(recovered.assignments, seq.assignments);
}

#[test]
fn rho_approx_par_recovers_identically() {
    let pts = dataset();
    let p = params(1.0, 4);
    let rho = 0.01;
    let seq = rho_approx(&pts, p, rho);
    let faults = FaultPlan::new(99).with_panic(FaultSite::EdgeTests, 1.0);
    let stats = Stats::new();
    let out = try_rho_approx_par_instrumented(
        &pts,
        p,
        rho,
        &config(RecoveryPolicy::FallbackSequential, faults),
        &stats,
    )
    .unwrap();
    assert_eq!(out.assignments, seq.assignments);
    assert_eq!(stats.report().counter(Counter::SequentialFallbacks), 1);

    // Under Fail the same plan surfaces the typed error instead.
    let faults = FaultPlan::new(99).with_panic(FaultSite::EdgeTests, 1.0);
    let err = try_rho_approx_par_instrumented(
        &pts,
        p,
        rho,
        &config(RecoveryPolicy::Fail, faults),
        &Stats::new(),
    )
    .unwrap_err();
    assert!(
        matches!(&err, DbscanError::WorkerPanicked { phase, .. } if phase == "edge_tests"),
        "unexpected error: {err:?}"
    );
}

#[test]
fn partial_probability_panics_are_seed_deterministic() {
    let pts = dataset();
    let p = params(1.0, 4);
    // With probability 0.25 per edge task and hundreds of core cells, some
    // task panics with near certainty — and which tasks are doomed is a pure
    // function of (seed, site, task), so two runs agree on the outcome class.
    let plan = || FaultPlan::new(1234).with_panic(FaultSite::EdgeTests, 0.25);
    let first = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::Fail, plan()),
        &Stats::new(),
    );
    let second = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::Fail, plan()),
        &Stats::new(),
    );
    assert!(first.is_err() && second.is_err());
}

#[test]
fn steal_delays_alone_do_not_change_the_result() {
    let pts = dataset();
    let p = params(1.0, 4);
    let seq = grid_exact(&pts, p);
    let faults = FaultPlan::new(5).with_steal_delay_micros(50);
    let stats = Stats::new();
    let out = try_grid_exact_par_instrumented(
        &pts,
        p,
        &config(RecoveryPolicy::Fail, faults),
        &stats,
    )
    .expect("delays are not failures");
    assert_eq!(out.assignments, seq.assignments);
    assert_eq!(stats.report().counter(Counter::WorkerPanics), 0);
    assert_eq!(stats.report().counter(Counter::SequentialFallbacks), 0);
}
