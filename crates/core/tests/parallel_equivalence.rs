//! Sequential/parallel equivalence on adversarially skewed inputs, and a
//! stress test of the lock-free concurrent union-find against the sequential
//! DSU.
//!
//! The skew shape targets the scheduler: one dense cell holding most of the
//! points (one enormous edge-test/labeling task) plus a uniform background
//! (many tiny tasks). Static chunking degenerates on it; the work-stealing
//! queue must still produce bit-identical clusterings at every thread count.

use dbscan_core::algorithms::{grid_exact, rho_approx};
use dbscan_core::parallel::{grid_exact_par, rho_approx_par};
use dbscan_core::unionfind::{ConcurrentUnionFind, UnionFind};
use dbscan_core::DbscanParams;
use dbscan_geom::Point;
use proptest::prelude::*;

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

/// One dense cell plus uniform background: `dense` points packed into a box
/// smaller than one grid cell (side ε/√2 at ε = 0.7), `bg` points spread over
/// `span`.
fn arb_skewed(span: f64) -> impl Strategy<Value = Vec<Point<2>>> {
    (
        prop::collection::vec((0.0..0.45f64, 0.0..0.45f64), 64..256),
        prop::collection::vec((0.0..span, 0.0..span), 1..200),
    )
        .prop_map(|(dense, bg)| {
            dense
                .into_iter()
                .chain(bg)
                .map(|(x, y)| Point([x, y]))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn skewed_exact_parallel_matches_sequential(
        pts in arb_skewed(12.0),
        min_pts in 2usize..8,
    ) {
        let p = params(0.7, min_pts);
        let seq = grid_exact(&pts, p);
        for threads in [1usize, 2, 4, 8] {
            let par = grid_exact_par(&pts, p, Some(threads));
            prop_assert_eq!(&par.assignments, &seq.assignments, "threads={}", threads);
            prop_assert_eq!(par.num_clusters, seq.num_clusters);
        }
    }

    #[test]
    fn skewed_approx_parallel_matches_sequential(
        pts in arb_skewed(12.0),
        min_pts in 2usize..8,
    ) {
        let p = params(0.7, min_pts);
        for rho in [0.001, 0.05] {
            let seq = rho_approx(&pts, p, rho);
            let par = rho_approx_par(&pts, p, rho, Some(4));
            prop_assert_eq!(&par.assignments, &seq.assignments, "rho={}", rho);
        }
    }

    /// N threads racing random unions through [`ConcurrentUnionFind`] must
    /// produce the exact partition the sequential DSU produces from the same
    /// edge list. Compared through `compact_labels`, which is
    /// forest-shape-independent (ids by first appearance over elements).
    #[test]
    fn concurrent_unions_match_sequential_dsu(
        n in 2u32..400,
        edges in prop::collection::vec((0u32..400, 0u32..400), 0..600),
    ) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();

        let mut seq = UnionFind::new(n as usize);
        for &(a, b) in &edges {
            seq.union(a, b);
        }

        let cuf = ConcurrentUnionFind::new(n as usize);
        let threads = 4;
        std::thread::scope(|s| {
            for w in 0..threads {
                let cuf = &cuf;
                let edges = &edges;
                s.spawn(move || {
                    let mut retries = 0u64;
                    for &(a, b) in edges.iter().skip(w).step_by(threads) {
                        cuf.union(a, b, &mut retries);
                    }
                });
            }
        });
        let mut par = UnionFind::from_parents(cuf.into_parents());

        prop_assert_eq!(par.num_components(), seq.num_components());
        prop_assert_eq!(par.compact_labels(), seq.compact_labels());
    }
}
