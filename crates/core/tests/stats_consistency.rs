//! Consistency properties of the instrumentation layer (`dbscan_core::stats`):
//! the counter-decomposition invariant, sequential/parallel agreement, the
//! no-op-collector equivalence, and degenerate inputs.

use dbscan_core::algorithms::{
    cit08, cit08_instrumented, grid_exact_instrumented, grid_exact_with, gunawan_2d,
    gunawan_2d_instrumented, kdd96_kdtree, kdd96_kdtree_instrumented, rho_approx,
    rho_approx_instrumented, BcpStrategy, Cit08Config,
};
use dbscan_core::parallel::{grid_exact_par_instrumented, rho_approx_par_instrumented};
use dbscan_core::{Clustering, Counter, DbscanParams, Phase, Stats, StatsReport};
use dbscan_geom::Point;
use proptest::prelude::*;

fn params(eps: f64, min_pts: usize) -> DbscanParams {
    DbscanParams::new(eps, min_pts).unwrap()
}

fn arb_points<const D: usize>(max_n: usize, span: f64) -> impl Strategy<Value = Vec<Point<D>>> {
    prop::collection::vec(prop::collection::vec(0.0..span, D), 1..max_n).prop_map(|rows| {
        rows.into_iter()
            .map(|row| {
                let mut c = [0.0; D];
                c.copy_from_slice(&row);
                Point(c)
            })
            .collect()
    })
}

fn lcg_points<const D: usize>(n: usize, span: f64, seed: u64) -> Vec<Point<D>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * span
    };
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in &mut c {
                *v = next();
            }
            Point(c)
        })
        .collect()
}

/// The invariants every connect-loop (grid-template) run must satisfy:
/// each enumerated candidate pair is either skipped or decided by exactly one
/// mechanism, and each discovered edge causes exactly one union.
fn assert_connect_invariants(r: &StatsReport, label: &str) {
    assert_eq!(
        r.counter(Counter::EdgeTests),
        r.decision_sum(),
        "{label}: edge tests must decompose into skip/decision counters"
    );
    assert!(
        r.counter(Counter::EdgesFound) <= r.counter(Counter::EdgeTests),
        "{label}: edges found cannot exceed tests"
    );
    assert_eq!(
        r.counter(Counter::UnionOps),
        r.counter(Counter::EdgesFound),
        "{label}: one union per discovered edge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decomposition_invariant_3d(
        pts in arb_points::<3>(250, 10.0),
        eps in 0.4..4.0f64,
        min_pts in 1usize..8,
    ) {
        let p = params(eps, min_pts);
        for strategy in [
            BcpStrategy::TreeAssisted,
            BcpStrategy::BruteForceOnly,
            BcpStrategy::FullBcp,
            BcpStrategy::FullBruteBcp,
        ] {
            let s = Stats::new();
            grid_exact_instrumented(&pts, p, strategy, &s);
            assert_connect_invariants(&s.report(), &format!("grid_exact {strategy:?}"));
        }
        let s = Stats::new();
        rho_approx_instrumented(&pts, p, 0.01, &s);
        assert_connect_invariants(&s.report(), "rho_approx");
    }

    #[test]
    fn decomposition_invariant_2d_gunawan(
        pts in arb_points::<2>(250, 10.0),
        eps in 0.4..4.0f64,
        min_pts in 1usize..8,
    ) {
        let s = Stats::new();
        gunawan_2d_instrumented(&pts, params(eps, min_pts), &s);
        assert_connect_invariants(&s.report(), "gunawan_2d");
    }

    #[test]
    fn sequential_and_parallel_counters_agree(
        pts in arb_points::<2>(400, 12.0),
        eps in 0.4..3.0f64,
        min_pts in 1usize..6,
    ) {
        let p = params(eps, min_pts);

        let seq = Stats::new();
        let a = grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &seq);
        let par = Stats::new();
        let b = grid_exact_par_instrumented(&pts, p, Some(4), &par);
        prop_assert_eq!(&a.assignments, &b.assignments);
        let sr = seq.report();
        let pr = par.report();
        assert_connect_invariants(&pr, "grid_exact_par");
        // Candidate-pair enumeration is order-independent, so the counts
        // match exactly (both paths count a pair before their short-circuit
        // check — sequential against its union-find, parallel against the
        // shared concurrent one; only the *skipped* counts may differ, since
        // the parallel value depends on thread timing).
        prop_assert_eq!(sr.counter(Counter::EdgeTests), pr.counter(Counter::EdgeTests));
        // Every tree-probe decision resolves through the lazy cache: first
        // use builds, later uses hit. Nothing falls back to brute force.
        prop_assert_eq!(
            pr.counter(Counter::KdTreeBuilds) + pr.counter(Counter::TreeCacheHits),
            pr.counter(Counter::TreeProbeDecisions)
        );
        prop_assert_eq!(pr.counter(Counter::TreeFallbackBrute), 0);
        // Labeling does identical distance-computation work in both paths.
        prop_assert_eq!(
            sr.counter(Counter::GridPointsExamined),
            pr.counter(Counter::GridPointsExamined)
        );

        let seq = Stats::new();
        let a = rho_approx_instrumented(&pts, p, 0.01, &seq);
        let par = Stats::new();
        let b = rho_approx_par_instrumented(&pts, p, 0.01, Some(3), &par);
        prop_assert_eq!(&a.assignments, &b.assignments);
        prop_assert_eq!(
            seq.report().counter(Counter::EdgeTests),
            par.report().counter(Counter::EdgeTests)
        );
        assert_connect_invariants(&par.report(), "rho_approx_par");
    }
}

/// Instrumentation must not change results: every algorithm returns the same
/// clustering through its instrumented entry point with a live collector as
/// through the plain public API (which uses the no-op collector).
#[test]
fn instrumented_results_equal_uninstrumented() {
    let pts = lcg_points::<2>(800, 25.0, 7);
    let p = params(1.2, 4);
    let runs: Vec<(&str, Clustering, Clustering)> = vec![
        (
            "grid_exact",
            grid_exact_with(&pts, p, BcpStrategy::TreeAssisted),
            {
                let s = Stats::new();
                grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &s)
            },
        ),
        ("rho_approx", rho_approx(&pts, p, 0.01), {
            let s = Stats::new();
            rho_approx_instrumented(&pts, p, 0.01, &s)
        }),
        ("gunawan_2d", gunawan_2d(&pts, p), {
            let s = Stats::new();
            gunawan_2d_instrumented(&pts, p, &s)
        }),
        ("kdd96", kdd96_kdtree(&pts, p), {
            let s = Stats::new();
            kdd96_kdtree_instrumented(&pts, p, &s)
        }),
        ("cit08", cit08(&pts, p, Cit08Config::default()), {
            let s = Stats::new();
            cit08_instrumented(&pts, p, Cit08Config::default(), &s)
        }),
    ];
    for (name, plain, instrumented) in runs {
        assert_eq!(
            plain.assignments, instrumented.assignments,
            "{name}: instrumentation changed the result"
        );
    }
}

/// Phase attribution is disjoint, so the named phases can never sum past the
/// enclosing total (1 ms slack absorbs timer-read overhead at span borders).
#[test]
fn phases_sum_to_at_most_total() {
    let pts = lcg_points::<3>(3_000, 15.0, 13);
    let p = params(1.0, 5);
    let runs: Vec<(&str, Stats)> = vec![
        ("grid_exact", {
            let s = Stats::new();
            grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &s);
            s
        }),
        ("rho_approx", {
            let s = Stats::new();
            rho_approx_instrumented(&pts, p, 0.01, &s);
            s
        }),
        ("kdd96", {
            let s = Stats::new();
            kdd96_kdtree_instrumented(&pts, p, &s);
            s
        }),
        ("cit08", {
            let s = Stats::new();
            cit08_instrumented(&pts, p, Cit08Config::default(), &s);
            s
        }),
        ("grid_exact_par", {
            let s = Stats::new();
            grid_exact_par_instrumented(&pts, p, Some(4), &s);
            s
        }),
    ];
    for (name, stats) in runs {
        let r = stats.report();
        let total = r.phase_nanos(Phase::Total);
        assert!(total > 0, "{name}: total must be recorded");
        let sum: u64 = Phase::ALL
            .iter()
            .filter(|&&ph| ph != Phase::Total)
            .map(|&ph| r.phase_nanos(ph))
            .sum();
        assert!(
            sum <= total + 1_000_000,
            "{name}: phases sum to {sum} ns > total {total} ns"
        );
    }
}

#[test]
fn degenerate_empty_input() {
    let s = Stats::new();
    let c = grid_exact_instrumented::<2, _>(&[], params(1.0, 2), BcpStrategy::TreeAssisted, &s);
    assert_eq!(c.num_clusters, 0);
    let r = s.report();
    for c in Counter::ALL {
        assert_eq!(r.counter(c), 0, "{}: empty input does no work", c.name());
    }
    let s = Stats::new();
    let c = rho_approx_par_instrumented::<2, _>(&[], params(1.0, 2), 0.01, Some(4), &s);
    assert_eq!(c.num_clusters, 0);
    assert_connect_invariants(&s.report(), "rho_approx_par empty");
}

#[test]
fn degenerate_single_point() {
    let pts = [Point([0.0, 0.0])];
    let s = Stats::new();
    let c = grid_exact_instrumented(&pts, params(1.0, 1), BcpStrategy::TreeAssisted, &s);
    assert_eq!(c.num_clusters, 1);
    let r = s.report();
    // One core cell, no neighbors: nothing to test or union.
    assert_eq!(r.counter(Counter::EdgeTests), 0);
    assert_eq!(r.counter(Counter::UnionOps), 0);
    assert_connect_invariants(&r, "single point");
}

#[test]
fn degenerate_identical_points() {
    // Footnote 1's adversarial instance: 500 coincident points. One dense
    // cell, all core by the dense-cell shortcut — no distance computations,
    // no edges, one cluster.
    let pts = vec![Point([3.5, -1.25]); 500];
    let p = params(1.0, 10);
    for (name, stats, c) in [
        {
            let s = Stats::new();
            let c = grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &s);
            ("grid_exact", s, c)
        },
        {
            let s = Stats::new();
            let c = grid_exact_par_instrumented(&pts, p, Some(4), &s);
            ("grid_exact_par", s, c)
        },
        {
            let s = Stats::new();
            let c = rho_approx_instrumented(&pts, p, 0.01, &s);
            ("rho_approx", s, c)
        },
        {
            let s = Stats::new();
            let c = gunawan_2d_instrumented(&pts, p, &s);
            ("gunawan_2d", s, c)
        },
    ] {
        assert_eq!(c.num_clusters, 1, "{name}");
        assert_eq!(c.core_count(), 500, "{name}");
        let r = stats.report();
        assert_eq!(r.counter(Counter::EdgeTests), 0, "{name}");
        assert_eq!(r.counter(Counter::GridPointsExamined), 0, "{name}");
        assert_connect_invariants(&r, name);
    }
}
