//! Input validation shared by all algorithm entry points.
//!
//! Non-finite coordinates would otherwise corrupt the grid silently (`NaN as
//! i64` saturates to 0, teleporting the point to the origin cell) or panic deep
//! inside a comparator with an unhelpful message. Every public algorithm calls
//! [`check_points`] first, which costs one O(n) pass and fails loudly.

use crate::error::DbscanError;
use dbscan_geom::{CellCoord, Point};

/// Panics with a descriptive message if any point has a non-finite coordinate.
pub fn check_points<const D: usize>(points: &[Point<D>]) {
    for (i, p) in points.iter().enumerate() {
        assert!(
            p.is_finite(),
            "input point {i} has a non-finite coordinate: {p:?}"
        );
    }
}

/// Fallible twin of [`check_points`]: returns
/// [`DbscanError::NonFinitePoint`] for the first offending point instead of
/// panicking. Every `try_*` algorithm entry point calls this first.
pub fn check_points_finite<const D: usize>(points: &[Point<D>]) -> Result<(), DbscanError> {
    match points.iter().position(|p| !p.is_finite()) {
        Some(index) => Err(DbscanError::NonFinitePoint { index }),
        None => Ok(()),
    }
}

/// Verifies every point's integer cell coordinate at the given `side` is
/// representable (see [`CellCoord::try_of`]); the grid-based algorithms call
/// this for the smallest side they will ever bucket at, after which the
/// unchecked [`CellCoord::of`] is safe everywhere downstream.
pub fn check_cell_range<const D: usize>(points: &[Point<D>], side: f64) -> Result<(), DbscanError> {
    for p in points {
        CellCoord::try_of(p, side)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn finite_points_pass() {
        check_points(&[p2(0.0, 1.0), p2(-1e300, 1e300)]);
        check_points::<2>(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite coordinate")]
    fn nan_rejected() {
        check_points(&[p2(0.0, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "input point 1")]
    fn index_reported() {
        check_points(&[p2(0.0, 0.0), p2(f64::INFINITY, 0.0)]);
    }

    #[test]
    fn fallible_twin_reports_first_offender() {
        assert!(check_points_finite(&[p2(0.0, 1.0), p2(-1e300, 1e300)]).is_ok());
        assert!(check_points_finite::<2>(&[]).is_ok());
        assert!(matches!(
            check_points_finite(&[p2(0.0, 0.0), p2(f64::NAN, 0.0), p2(f64::NAN, 0.0)]),
            Err(DbscanError::NonFinitePoint { index: 1 })
        ));
    }

    #[test]
    fn cell_range_check_flags_overflow() {
        assert!(check_cell_range(&[p2(1e6, -1e6)], 0.5).is_ok());
        assert!(matches!(
            check_cell_range(&[p2(0.0, 1e308)], 0.5),
            Err(DbscanError::CoordinateOverflow { dim: 1, .. })
        ));
    }
}
