//! Input validation shared by all algorithm entry points.
//!
//! Non-finite coordinates would otherwise corrupt the grid silently (`NaN as
//! i64` saturates to 0, teleporting the point to the origin cell) or panic deep
//! inside a comparator with an unhelpful message. Every public algorithm calls
//! [`check_points`] first, which costs one O(n) pass and fails loudly.

use dbscan_geom::Point;

/// Panics with a descriptive message if any point has a non-finite coordinate.
pub fn check_points<const D: usize>(points: &[Point<D>]) {
    for (i, p) in points.iter().enumerate() {
        assert!(
            p.is_finite(),
            "input point {i} has a non-finite coordinate: {p:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn finite_points_pass() {
        check_points(&[p2(0.0, 1.0), p2(-1e300, 1e300)]);
        check_points::<2>(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite coordinate")]
    fn nan_rejected() {
        check_points(&[p2(0.0, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "input point 1")]
    fn index_reported() {
        check_points(&[p2(0.0, 0.0), p2(f64::INFINITY, 0.0)]);
    }
}
