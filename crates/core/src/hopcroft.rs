//! Hopcroft's problem — the root of the paper's hardness chain (Section 2.3).
//!
//! Given points and lines in the plane, decide whether any point lies on any
//! line. It is widely believed (and proved for a broad algorithm class by
//! Erickson \[9\]) that Ω(n^{4/3}) time is required. The paper's chain is:
//!
//! ```text
//! Hopcroft  ≤  USEC (d ≥ 5, Lemma 3)  ≤  DBSCAN (any d, Lemma 4)
//! ```
//!
//! Lemma 4's reduction is implemented and tested in [`crate::usec`]; Lemma 3
//! (Erickson's lifting argument) is a mathematical result with no practical
//! algorithmic content, so this module provides the problem definition and the
//! brute-force decider — enough to *state* the chain executable-ly and to
//! ground the documentation of Theorem 1.

use dbscan_geom::Point;

/// A line in the plane given by `a·x + b·y = c` (with `(a, b) ≠ (0, 0)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl Line {
    /// The line through two distinct points.
    pub fn through(p: &Point<2>, q: &Point<2>) -> Line {
        let a = q[1] - p[1];
        let b = p[0] - q[0];
        let c = a * p[0] + b * p[1];
        Line { a, b, c }
    }

    /// Whether `p` lies on the line, within absolute tolerance `tol` on the
    /// normalized residual.
    pub fn contains(&self, p: &Point<2>, tol: f64) -> bool {
        let norm = (self.a * self.a + self.b * self.b).sqrt();
        debug_assert!(norm > 0.0, "degenerate line");
        ((self.a * p[0] + self.b * p[1] - self.c) / norm).abs() <= tol
    }
}

/// An instance of Hopcroft's problem.
#[derive(Clone, Debug)]
pub struct HopcroftInstance {
    pub points: Vec<Point<2>>,
    pub lines: Vec<Line>,
}

impl HopcroftInstance {
    /// Total input size `n = |S_pt| + |S_line|`.
    pub fn len(&self) -> usize {
        self.points.len() + self.lines.len()
    }

    /// Whether the instance is empty on both sides.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty() && self.lines.is_empty()
    }
}

/// Brute-force decider: is any point on any line? O(|points| · |lines|) —
/// the very bound the Ω(n^{4/3}) conjecture says cannot be beaten by much.
pub fn solve_brute(instance: &HopcroftInstance, tol: f64) -> bool {
    instance
        .points
        .iter()
        .any(|p| instance.lines.iter().any(|l| l.contains(p, tol)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn line_through_two_points_contains_both() {
        let p = p2(1.0, 2.0);
        let q = p2(4.0, -3.0);
        let l = Line::through(&p, &q);
        assert!(l.contains(&p, 1e-12));
        assert!(l.contains(&q, 1e-12));
        // Midpoint is on the line too.
        assert!(l.contains(&p2(2.5, -0.5), 1e-12));
        assert!(!l.contains(&p2(0.0, 0.0), 1e-9));
    }

    #[test]
    fn figure4c_style_no_instance() {
        // Points strictly off every line: answer is no (the paper's Figure 4c).
        let lines = vec![
            Line::through(&p2(0.0, 0.0), &p2(1.0, 1.0)),
            Line::through(&p2(0.0, 2.0), &p2(1.0, 2.0)),
        ];
        let inst = HopcroftInstance {
            points: vec![p2(0.5, 0.0), p2(3.0, 1.0)],
            lines,
        };
        assert!(!solve_brute(&inst, 1e-9));
    }

    #[test]
    fn incidence_detected() {
        let inst = HopcroftInstance {
            points: vec![p2(2.0, 2.0)],
            lines: vec![Line::through(&p2(0.0, 0.0), &p2(1.0, 1.0))],
        };
        assert!(solve_brute(&inst, 1e-9));
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
    }

    #[test]
    fn vertical_and_horizontal_lines() {
        let v = Line::through(&p2(3.0, 0.0), &p2(3.0, 5.0));
        assert!(v.contains(&p2(3.0, -10.0), 1e-12));
        assert!(!v.contains(&p2(3.1, 0.0), 1e-3));
        let h = Line::through(&p2(0.0, 7.0), &p2(1.0, 7.0));
        assert!(h.contains(&p2(100.0, 7.0), 1e-12));
    }

    #[test]
    fn empty_instance_is_no() {
        let inst = HopcroftInstance {
            points: vec![],
            lines: vec![],
        };
        assert!(!solve_brute(&inst, 1e-9));
        assert!(inst.is_empty());
    }
}
