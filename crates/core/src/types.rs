//! The DBSCAN problem's parameter and result types.

use std::fmt;

/// The two DBSCAN parameters of Section 2.1: the radius `ε` and the density
/// threshold `MinPts`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DbscanParams {
    eps: f64,
    min_pts: usize,
}

/// Rejected parameter values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamError {
    /// `ε` must be a positive, finite real value.
    NonPositiveEps,
    /// `MinPts` must be at least 1 (`MinPts = 1` makes every point core, which is
    /// exactly what the USEC reduction of Lemma 4 exploits).
    ZeroMinPts,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NonPositiveEps => write!(f, "eps must be positive and finite"),
            ParamError::ZeroMinPts => write!(f, "MinPts must be at least 1"),
        }
    }
}

impl std::error::Error for ParamError {}

impl DbscanParams {
    /// Validates and constructs the parameter pair.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(ParamError::NonPositiveEps);
        }
        if min_pts == 0 {
            return Err(ParamError::ZeroMinPts);
        }
        Ok(DbscanParams { eps, min_pts })
    }

    /// The radius `ε`.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The density threshold `MinPts`.
    #[inline]
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// The same parameters with the radius scaled to `ε(1+ρ)` — the "outer"
    /// parameter set of the sandwich theorem.
    pub fn inflate(&self, rho: f64) -> Self {
        DbscanParams {
            eps: self.eps * (1.0 + rho),
            min_pts: self.min_pts,
        }
    }
}

/// The cluster membership of one input point.
///
/// The paper's clusters are *not* disjoint: a border point can belong to several
/// clusters (Figure 2's `o10`), while a core point always belongs to exactly one
/// (Lemma 2 of \[10\]). The enum mirrors that asymmetry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Assignment {
    /// A core point and the id of its unique cluster.
    Core(u32),
    /// A border point with the sorted, deduplicated list of all clusters that
    /// contain it (never empty — otherwise the point would be noise).
    Border(Vec<u32>),
    /// A noise point, belonging to no cluster.
    Noise,
}

impl Assignment {
    /// Whether the point is a core point.
    #[inline]
    pub fn is_core(&self) -> bool {
        matches!(self, Assignment::Core(_))
    }

    /// Whether the point is a border point.
    #[inline]
    pub fn is_border(&self) -> bool {
        matches!(self, Assignment::Border(_))
    }

    /// Whether the point is noise.
    #[inline]
    pub fn is_noise(&self) -> bool {
        matches!(self, Assignment::Noise)
    }

    /// The clusters this point belongs to (empty for noise).
    pub fn clusters(&self) -> &[u32] {
        match self {
            Assignment::Core(c) => std::slice::from_ref(c),
            Assignment::Border(cs) => cs,
            Assignment::Noise => &[],
        }
    }
}

/// The result of a DBSCAN computation: one [`Assignment`] per input point, with
/// clusters numbered `0..num_clusters`.
#[derive(Clone, PartialEq, Debug)]
pub struct Clustering {
    /// Per-point assignments, indexed like the input slice.
    pub assignments: Vec<Assignment>,
    /// Number of clusters.
    pub num_clusters: usize,
}

impl Clustering {
    /// The trivial clustering of an empty dataset.
    pub fn empty() -> Self {
        Clustering {
            assignments: Vec::new(),
            num_clusters: 0,
        }
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the clustering covers zero points.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of core points.
    pub fn core_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_core()).count()
    }

    /// Number of border points.
    pub fn border_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_border()).count()
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_noise()).count()
    }

    /// Size of each cluster, counting border points in every cluster that
    /// contains them.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for a in &self.assignments {
            for &c in a.clusters() {
                sizes[c as usize] += 1;
            }
        }
        sizes
    }

    /// The members of each cluster, as sorted point-index lists.
    pub fn cluster_members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_clusters];
        for (i, a) in self.assignments.iter().enumerate() {
            for &c in a.clusters() {
                members[c as usize].push(i as u32);
            }
        }
        members
    }

    /// A flat single-label view: the smallest cluster id per point, or `None` for
    /// noise. (Border points are multi-assigned in the exact semantics; this view
    /// is what label-comparison metrics like the Rand index consume.)
    pub fn flat_labels(&self) -> Vec<Option<u32>> {
        self.assignments
            .iter()
            .map(|a| a.clusters().first().copied())
            .collect()
    }

    /// Debug-checks internal consistency: cluster ids in range, border lists
    /// sorted/deduped/non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for (i, a) in self.assignments.iter().enumerate() {
            match a {
                Assignment::Core(c) => {
                    if *c as usize >= self.num_clusters {
                        return Err(format!("point {i}: cluster {c} out of range"));
                    }
                }
                Assignment::Border(cs) => {
                    if cs.is_empty() {
                        return Err(format!("point {i}: empty border list"));
                    }
                    if cs.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(format!("point {i}: border list not sorted/deduped"));
                    }
                    if cs.iter().any(|&c| c as usize >= self.num_clusters) {
                        return Err(format!("point {i}: border cluster out of range"));
                    }
                }
                Assignment::Noise => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Clustering {
    /// One-line human-readable summary, e.g.
    /// `3 clusters over 1000 points (970 core, 20 border, 10 noise)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} clusters over {} points ({} core, {} border, {} noise)",
            self.num_clusters,
            self.len(),
            self.core_count(),
            self.border_count(),
            self.noise_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summary() {
        let c = Clustering {
            assignments: vec![
                Assignment::Core(0),
                Assignment::Border(vec![0]),
                Assignment::Noise,
            ],
            num_clusters: 1,
        };
        assert_eq!(
            c.to_string(),
            "1 clusters over 3 points (1 core, 1 border, 1 noise)"
        );
    }

    #[test]
    fn params_validation() {
        assert!(DbscanParams::new(1.0, 1).is_ok());
        assert_eq!(
            DbscanParams::new(0.0, 1).unwrap_err(),
            ParamError::NonPositiveEps
        );
        assert_eq!(
            DbscanParams::new(-1.0, 1).unwrap_err(),
            ParamError::NonPositiveEps
        );
        assert_eq!(
            DbscanParams::new(f64::NAN, 1).unwrap_err(),
            ParamError::NonPositiveEps
        );
        assert_eq!(
            DbscanParams::new(f64::INFINITY, 1).unwrap_err(),
            ParamError::NonPositiveEps
        );
        assert_eq!(
            DbscanParams::new(1.0, 0).unwrap_err(),
            ParamError::ZeroMinPts
        );
    }

    #[test]
    fn inflate_scales_eps_only() {
        let p = DbscanParams::new(10.0, 5).unwrap();
        let q = p.inflate(0.1);
        assert!((q.eps() - 11.0).abs() < 1e-12);
        assert_eq!(q.min_pts(), 5);
    }

    #[test]
    fn assignment_accessors() {
        assert!(Assignment::Core(3).is_core());
        assert_eq!(Assignment::Core(3).clusters(), &[3]);
        assert!(Assignment::Border(vec![0, 2]).is_border());
        assert_eq!(Assignment::Border(vec![0, 2]).clusters(), &[0, 2]);
        assert!(Assignment::Noise.is_noise());
        assert!(Assignment::Noise.clusters().is_empty());
    }

    #[test]
    fn clustering_counters() {
        let c = Clustering {
            assignments: vec![
                Assignment::Core(0),
                Assignment::Core(1),
                Assignment::Border(vec![0, 1]),
                Assignment::Noise,
            ],
            num_clusters: 2,
        };
        assert_eq!(c.core_count(), 2);
        assert_eq!(c.border_count(), 1);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
        assert_eq!(c.cluster_members(), vec![vec![0, 2], vec![1, 2]]);
        assert_eq!(c.flat_labels(), vec![Some(0), Some(1), Some(0), None]);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_clusterings() {
        let bad = Clustering {
            assignments: vec![Assignment::Core(5)],
            num_clusters: 1,
        };
        assert!(bad.validate().is_err());
        let bad2 = Clustering {
            assignments: vec![Assignment::Border(vec![])],
            num_clusters: 1,
        };
        assert!(bad2.validate().is_err());
        let bad3 = Clustering {
            assignments: vec![Assignment::Border(vec![1, 0])],
            num_clusters: 2,
        };
        assert!(bad3.validate().is_err());
    }
}
