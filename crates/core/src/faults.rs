//! Deterministic fault injection for the parallel pipeline.
//!
//! A [`FaultPlan`] describes, from a seed, which tasks of which pipeline
//! phases should panic and whether steal-path claims should be artificially
//! delayed. The decision for a `(site, task)` pair is a pure hash of the seed
//! — no global state, no clock, no RNG stream — so the same plan injects the
//! same faults on every run regardless of thread interleaving. That
//! determinism is what lets the chaos tests assert *bit-identical* clusterings
//! under injected faults plus [`crate::RecoveryPolicy::FallbackSequential`].
//!
//! Unless the crate is compiled with the `fault-injection` feature, every
//! injection point is a branch on a compile-time `false` and the whole module
//! folds to a no-op: production binaries carry zero fault-injection overhead
//! while the types stay available, so code threading a plan through
//! [`crate::parallel::ParConfig`] compiles identically either way.

use std::fmt;
use std::str::FromStr;

/// A pipeline location where faults can be injected. The three sites map to
/// the three parallel stages of `dbscan_core::parallel` (core labeling, edge
/// tests, border assignment); injected panics fire at the start of a claimed
/// task's body, inside its `catch_unwind` envelope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The core-point labeling stage (one task per grid cell).
    Labeling,
    /// The fused structure-build + edge-test stage (one task per core cell).
    EdgeTests,
    /// The border-point assignment stage (one task per point chunk).
    BorderAssign,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 3;

    /// All sites, in declaration order.
    pub const ALL: [FaultSite; FaultSite::COUNT] =
        [FaultSite::Labeling, FaultSite::EdgeTests, FaultSite::BorderAssign];

    /// Stable lowercase name (used in panic payloads and the `--faults` spec).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Labeling => "labeling",
            FaultSite::EdgeTests => "edge",
            FaultSite::BorderAssign => "border",
        }
    }
}

/// A seeded, deterministic description of which parallel tasks fail and how.
///
/// Build one with [`FaultPlan::new`] + the `with_*` methods, or parse the
/// CLI's `--faults` spec via [`FromStr`]:
///
/// ```text
/// seed=42,edge=1,labeling=0.25,steal-delay-us=100
/// ```
///
/// keys: `seed` (u64), one probability in `[0, 1]` per site name
/// (`labeling`, `edge`, `border`), and `steal-delay-us` (a forced sleep, in
/// microseconds, on every successful *steal-path* claim — exercising the
/// scheduler's cross-segment windows).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panic_prob: [f64; FaultSite::COUNT],
    steal_delay_micros: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Sets the panic probability for `site`, clamped to `[0, 1]`.
    /// `1.0` kills every task of that site; `0.0` disables the site.
    pub fn with_panic(mut self, site: FaultSite, probability: f64) -> Self {
        self.panic_prob[site as usize] = probability.clamp(0.0, 1.0);
        self
    }

    /// Forces a sleep of `micros` microseconds on every stolen-task claim.
    pub fn with_steal_delay_micros(mut self, micros: u64) -> Self {
        self.steal_delay_micros = micros;
        self
    }

    /// Whether this plan injects nothing (always true with the
    /// `fault-injection` feature off).
    pub fn is_noop(&self) -> bool {
        !cfg!(feature = "fault-injection")
            || (self.steal_delay_micros == 0 && self.panic_prob.iter().all(|&p| p <= 0.0))
    }

    /// Deterministically decides whether `task` at `site` is killed by this
    /// plan. Pure in `(self, site, task)`; always `false` when the
    /// `fault-injection` feature is off.
    pub fn injects_panic(&self, site: FaultSite, task: u32) -> bool {
        if !cfg!(feature = "fault-injection") {
            return false;
        }
        let p = self.panic_prob[site as usize];
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // SplitMix64-style finalizer over (seed, site, task): a high-quality
        // stateless hash is all the "randomness" a deterministic plan needs.
        let mut x = self
            .seed
            .wrapping_add((site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(task).wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Panics (with a recognizable payload) iff the plan kills this task.
    /// Called by workers at the top of each task body, inside `catch_unwind`.
    pub(crate) fn maybe_panic(&self, site: FaultSite, task: u32) {
        if self.injects_panic(site, task) {
            panic!("injected fault: {} task {task}", site.name());
        }
    }

    /// Sleeps for the configured steal delay iff `stolen` and the plan has
    /// one. Exercises the work-stealing windows without killing anything.
    pub(crate) fn maybe_steal_delay(&self, stolen: bool) {
        if cfg!(feature = "fault-injection") && stolen && self.steal_delay_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.steal_delay_micros));
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for site in FaultSite::ALL {
            let p = self.panic_prob[site as usize];
            if p > 0.0 {
                write!(f, ",{}={p}", site.name())?;
            }
        }
        if self.steal_delay_micros > 0 {
            write!(f, ",steal-delay-us={}", self.steal_delay_micros)?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault seed {value:?} is not a u64"))?;
                }
                "steal-delay-us" => {
                    plan.steal_delay_micros = value
                        .parse()
                        .map_err(|_| format!("steal delay {value:?} is not a u64"))?;
                }
                name => {
                    let site = FaultSite::ALL
                        .into_iter()
                        .find(|s| s.name() == name)
                        .ok_or_else(|| {
                            format!(
                                "unknown fault key {name:?} (expected seed, steal-delay-us, \
                                 labeling, edge, or border)"
                            )
                        })?;
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("fault probability {value:?} is not a float"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("fault probability {p} is outside [0, 1]"));
                    }
                    plan = plan.with_panic(site, p);
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan: FaultPlan = "seed=42,edge=1,labeling=0.25,steal-delay-us=100"
            .parse()
            .unwrap();
        let expected = FaultPlan::new(42)
            .with_panic(FaultSite::EdgeTests, 1.0)
            .with_panic(FaultSite::Labeling, 0.25)
            .with_steal_delay_micros(100);
        assert_eq!(plan, expected);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("seed".parse::<FaultPlan>().is_err());
        assert!("seed=x".parse::<FaultPlan>().is_err());
        assert!("warp=1".parse::<FaultPlan>().is_err());
        assert!("edge=2.0".parse::<FaultPlan>().is_err());
        assert!("edge=abc".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn display_round_trips() {
        let plan = FaultPlan::new(7)
            .with_panic(FaultSite::BorderAssign, 0.5)
            .with_steal_delay_micros(3);
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn default_plan_is_noop() {
        assert!(FaultPlan::default().is_noop());
        assert!(!FaultPlan::default()
            .injects_panic(FaultSite::EdgeTests, 0));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(42).with_panic(FaultSite::EdgeTests, 0.5);
        let picks: Vec<bool> = (0..64)
            .map(|t| plan.injects_panic(FaultSite::EdgeTests, t))
            .collect();
        // Same plan, same decisions.
        for (t, &k) in picks.iter().enumerate() {
            assert_eq!(plan.injects_panic(FaultSite::EdgeTests, t as u32), k);
        }
        // Roughly half the tasks die; neither everything nor nothing.
        let kills = picks.iter().filter(|&&k| k).count();
        assert!(kills > 8 && kills < 56, "kills = {kills}");
        // A different seed makes different decisions somewhere.
        let other = FaultPlan::new(43).with_panic(FaultSite::EdgeTests, 0.5);
        assert!((0..64).any(|t| plan.injects_panic(FaultSite::EdgeTests, t)
            != other.injects_panic(FaultSite::EdgeTests, t)));
        // Probability 1 kills everything; sites are independent.
        let all = FaultPlan::new(42).with_panic(FaultSite::Labeling, 1.0);
        assert!(all.injects_panic(FaultSite::Labeling, 7));
        assert!(!all.injects_panic(FaultSite::EdgeTests, 7));
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn everything_is_inert_without_the_feature() {
        let plan = FaultPlan::new(42).with_panic(FaultSite::EdgeTests, 1.0);
        assert!(plan.is_noop());
        assert!(!plan.injects_panic(FaultSite::EdgeTests, 0));
        plan.maybe_panic(FaultSite::EdgeTests, 0); // must not panic
    }
}
