//! The typed error surface of the crate, plus the recovery and resource
//! policies that parameterize the fallible entry points.
//!
//! Every algorithm has a `try_*` twin returning `Result<Clustering,
//! DbscanError>`; the historical infallible functions delegate to them and
//! panic with the error's `Display` text, so existing callers keep their
//! signatures and their messages. The variants cover every way a run can fail:
//! bad parameters, non-finite or unrepresentable input, a refused
//! over-budget index build, a worker panic inside the parallel pipeline, and
//! CSV ingest problems (carrying the 1-based line number and offending token).

use crate::types::ParamError;
use dbscan_geom::CellError;
use dbscan_index::BuildError;
use std::fmt;
use std::str::FromStr;

/// Why a DBSCAN run failed. See the [module docs](self) for the taxonomy.
#[derive(Debug)]
pub enum DbscanError {
    /// `eps`/`min_pts` rejected by [`crate::DbscanParams::new`].
    InvalidParams(ParamError),
    /// An input point has a NaN or infinite coordinate.
    NonFinitePoint {
        /// Index of the first offending point.
        index: usize,
    },
    /// The approximation parameter `rho` is unusable for this `eps`.
    InvalidRho {
        /// The rejected value.
        rho: f64,
        /// Human-readable reason (always starts with what must hold).
        reason: &'static str,
    },
    /// A coordinate's integer grid-cell index overflows `i64`: the dataset
    /// span is too large relative to the cell side in use.
    CoordinateOverflow {
        /// Dimension of the offending coordinate.
        dim: usize,
        /// The offending coordinate value.
        value: f64,
        /// The cell side at which the overflow occurred.
        side: f64,
    },
    /// An index build was refused because its estimated footprint exceeds the
    /// configured [`ResourceLimits::max_index_bytes`] budget.
    ResourceLimit {
        /// Which structure was refused.
        structure: &'static str,
        /// Estimated bytes the build would need.
        estimated_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// A worker thread panicked inside the parallel pipeline. The run was
    /// poisoned and drained cooperatively; no other worker was torn down.
    WorkerPanicked {
        /// Every pipeline phase a failure was recorded in, `+`-joined in
        /// first-seen order (`"labeling"`, `"edge_tests"`, `"border_assign"`,
        /// or e.g. `"labeling+edge_tests"` for multi-panic chaos runs).
        phase: String,
        /// Id of the task (cell / point chunk) whose execution panicked first.
        task: u32,
        /// The first panic's payload, stringified.
        payload: String,
        /// Total number of recorded worker failures (≥ 1).
        panic_count: u64,
    },
    /// The run was explicitly cancelled mid-flight — an external
    /// [`RunCtl::cancel`](crate::deadline::RunCtl::cancel) (a server-side
    /// `cancel` verb) or an [`interrupt`](crate::deadline::RunCtl::interrupt)
    /// (SIGINT/SIGTERM, shutdown drain). Unlike a deadline expiry this is
    /// never softened by the degrade/partial policies.
    Cancelled {
        /// The stage that observed the cancellation.
        phase: &'static str,
        /// Why the token tripped (always a hard reason:
        /// [`CancelReason::is_hard`](crate::deadline::CancelReason::is_hard)).
        reason: crate::deadline::CancelReason,
    },
    /// The run's time budget expired under
    /// [`DeadlinePolicy::Abort`](crate::deadline::DeadlinePolicy::Abort).
    DeadlineExceeded {
        /// The stage that observed the expiry (`"labeling"`, `"edge_tests"`,
        /// or `"border_assign"`).
        phase: &'static str,
        /// Wall-clock time elapsed when the expiry was observed.
        elapsed: std::time::Duration,
        /// Tasks still unfinished in that stage at that moment.
        remaining_tasks: u64,
    },
    /// A caller-supplied range index does not cover the point set.
    IndexSizeMismatch {
        /// Number of points the index covers.
        index_len: usize,
        /// Number of points in the dataset.
        points_len: usize,
    },
    /// A CSV row could not be parsed.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// The offending token (a field, or the whole row for shape errors).
        token: String,
        /// What was wrong with it.
        message: String,
    },
    /// An underlying I/O failure while reading input.
    Io(std::io::Error),
}

impl fmt::Display for DbscanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscanError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            DbscanError::NonFinitePoint { index } => {
                write!(f, "input point {index} has a non-finite coordinate (NaN or infinity)")
            }
            DbscanError::InvalidRho { rho, reason } => {
                write!(f, "{reason}: got rho = {rho}")
            }
            DbscanError::CoordinateOverflow { dim, value, side } => write!(
                f,
                "coordinate {value} (dimension {dim}) overflows the integer cell \
                 grid of side {side}; the dataset span is too large for this eps"
            ),
            DbscanError::ResourceLimit {
                structure,
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "building the {structure} would need an estimated {estimated_bytes} \
                 bytes, exceeding the {budget_bytes}-byte memory budget"
            ),
            DbscanError::WorkerPanicked {
                phase,
                task,
                payload,
                panic_count,
            } => write!(
                f,
                "a worker panicked in the {phase} phase (task {task}, \
                 {panic_count} worker failure(s) total): {payload}"
            ),
            DbscanError::Cancelled { phase, reason } => write!(
                f,
                "run cancelled ({}) in the {phase} phase",
                reason.name()
            ),
            DbscanError::DeadlineExceeded {
                phase,
                elapsed,
                remaining_tasks,
            } => write!(
                f,
                "deadline exceeded in the {phase} phase after {elapsed:?} \
                 with {remaining_tasks} tasks remaining"
            ),
            DbscanError::IndexSizeMismatch { index_len, points_len } => write!(
                f,
                "the range index covers {index_len} points but the dataset has {points_len}"
            ),
            DbscanError::Parse { line, token, message } => {
                write!(f, "line {line}: {message} (offending token: {token:?})")
            }
            DbscanError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DbscanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbscanError::InvalidParams(e) => Some(e),
            DbscanError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for DbscanError {
    fn from(e: ParamError) -> Self {
        DbscanError::InvalidParams(e)
    }
}

impl From<std::io::Error> for DbscanError {
    fn from(e: std::io::Error) -> Self {
        DbscanError::Io(e)
    }
}

impl From<CellError> for DbscanError {
    fn from(e: CellError) -> Self {
        match e {
            // A bad side means eps itself was bad — the params-level failure.
            CellError::BadSide { .. } => DbscanError::InvalidParams(ParamError::NonPositiveEps),
            CellError::Overflow { dim, value, side } => {
                DbscanError::CoordinateOverflow { dim, value, side }
            }
        }
    }
}

impl From<BuildError> for DbscanError {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Cell(c) => c.into(),
            BuildError::Param { value, .. } => DbscanError::InvalidRho {
                rho: value,
                reason: RHO_POSITIVE,
            },
            BuildError::Budget {
                structure,
                estimated_bytes,
                budget_bytes,
            } => DbscanError::ResourceLimit {
                structure,
                estimated_bytes,
                budget_bytes,
            },
        }
    }
}

pub(crate) const RHO_POSITIVE: &str = "rho must be positive and finite";
pub(crate) const RHO_TOO_SMALL: &str =
    "rho must be positive and larger than 1e-9 (the Lemma 5 hierarchy degenerates below that)";
pub(crate) const RHO_EPS_OVERFLOW: &str =
    "rho must be positive and small enough that eps * (1 + rho) stays finite";

/// Validates the approximation parameter against the radius it will scale.
///
/// Rejects `rho ≤ 0`, NaN/inf, values so small the counter hierarchy
/// degenerates (`≤ 1e-9`, where the infallible builder would panic), and
/// values so large that `eps·(1+ρ)` — the outer sandwich radius — overflows
/// to infinity.
pub fn validate_rho(eps: f64, rho: f64) -> Result<(), DbscanError> {
    if !(rho.is_finite() && rho > 0.0) {
        Err(DbscanError::InvalidRho { rho, reason: RHO_POSITIVE })
    } else if rho <= 1e-9 {
        Err(DbscanError::InvalidRho { rho, reason: RHO_TOO_SMALL })
    } else if !(eps * (1.0 + rho)).is_finite() {
        Err(DbscanError::InvalidRho { rho, reason: RHO_EPS_OVERFLOW })
    } else {
        Ok(())
    }
}

/// What the parallel drivers do when a worker panics mid-run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryPolicy {
    /// Surface [`DbscanError::WorkerPanicked`] to the caller (the default).
    #[default]
    Fail,
    /// Transparently re-run the whole computation sequentially (fault
    /// injection never fires on the sequential path, so the result is the
    /// unfaulted sequential clustering) and record the event in the stats
    /// counters `worker_panics` / `sequential_fallbacks`.
    FallbackSequential,
}

impl RecoveryPolicy {
    /// Stable lowercase name, as spelled in the CLI flag and the stats
    /// envelope's `recovery` field.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Fail => "fail",
            RecoveryPolicy::FallbackSequential => "fallback-sequential",
        }
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fail" => Ok(RecoveryPolicy::Fail),
            "fallback-sequential" => Ok(RecoveryPolicy::FallbackSequential),
            other => Err(format!(
                "unknown recovery policy {other:?} (expected 'fail' or 'fallback-sequential')"
            )),
        }
    }
}

/// Caller-configurable resource budgets enforced by the `try_*` entry points.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResourceLimits {
    /// Refuse any single index build (grid, per-cell counter aggregate) whose
    /// estimated footprint exceeds this many bytes. `None` = unlimited.
    pub max_index_bytes: Option<u64>,
}

impl ResourceLimits {
    /// No budgets: every build is attempted (the historical behavior).
    pub const UNLIMITED: ResourceLimits = ResourceLimits { max_index_bytes: None };

    /// Limits with the given index-build byte budget.
    pub fn with_max_index_bytes(max_index_bytes: u64) -> Self {
        ResourceLimits { max_index_bytes: Some(max_index_bytes) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_validation_covers_the_taxonomy() {
        assert!(validate_rho(1.0, 0.001).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                validate_rho(1.0, bad),
                Err(DbscanError::InvalidRho { reason: RHO_POSITIVE, .. })
            ));
        }
        assert!(matches!(
            validate_rho(1.0, 1e-10),
            Err(DbscanError::InvalidRho { reason: RHO_TOO_SMALL, .. })
        ));
        // eps * (1 + rho) overflows f64 even though rho itself is finite.
        assert!(matches!(
            validate_rho(1e308, 10.0),
            Err(DbscanError::InvalidRho { reason: RHO_EPS_OVERFLOW, .. })
        ));
    }

    #[test]
    fn rho_messages_keep_the_historical_prefix() {
        // The infallible rho_approx historically panicked with a message
        // containing "rho must be positive"; the typed errors preserve it.
        for reason in [RHO_POSITIVE, RHO_TOO_SMALL, RHO_EPS_OVERFLOW] {
            assert!(reason.starts_with("rho must be positive"), "{reason}");
        }
    }

    #[test]
    fn build_error_conversion() {
        let e: DbscanError = dbscan_index::BuildError::Budget {
            structure: "grid index",
            estimated_bytes: 100,
            budget_bytes: 10,
        }
        .into();
        assert!(matches!(e, DbscanError::ResourceLimit { budget_bytes: 10, .. }));

        let e: DbscanError = dbscan_geom::CellError::Overflow {
            dim: 2,
            value: 1e300,
            side: 0.5,
        }
        .into();
        assert!(matches!(e, DbscanError::CoordinateOverflow { dim: 2, .. }));
    }

    #[test]
    fn recovery_policy_round_trips() {
        for p in [RecoveryPolicy::Fail, RecoveryPolicy::FallbackSequential] {
            assert_eq!(p.name().parse::<RecoveryPolicy>().unwrap(), p);
        }
        assert!("chaos".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn display_messages_name_the_essentials() {
        let msg = DbscanError::Parse {
            line: 7,
            token: "abc".into(),
            message: "not a number".into(),
        }
        .to_string();
        assert!(msg.contains("line 7") && msg.contains("\"abc\""), "{msg}");

        let msg = DbscanError::WorkerPanicked {
            phase: "edge_tests".into(),
            task: 3,
            payload: "boom".into(),
            panic_count: 4,
        }
        .to_string();
        assert!(
            msg.contains("edge_tests") && msg.contains("task 3") && msg.contains('4'),
            "{msg}"
        );

        let msg = DbscanError::DeadlineExceeded {
            phase: "edge_tests",
            elapsed: std::time::Duration::from_millis(5),
            remaining_tasks: 12,
        }
        .to_string();
        assert!(
            msg.contains("deadline exceeded")
                && msg.contains("edge_tests")
                && msg.contains("12 tasks remaining"),
            "{msg}"
        );
    }
}
