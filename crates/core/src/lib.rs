//! The clustering algorithms of *DBSCAN Revisited* (Gan & Tao, SIGMOD 2015).
//!
//! This crate implements the paper's definitions (Section 2.1), all the algorithms
//! it discusses, and the USEC→DBSCAN reduction of its hardness proof:
//!
//! | paper name | function | notes |
//! |---|---|---|
//! | KDD96 | [`algorithms::kdd96`] | the original Ester et al. algorithm on a pluggable range index; O(n²) worst case (footnote 1) |
//! | Gunawan's 2D algorithm | [`algorithms::gunawan_2d`] | grid + per-cell nearest-neighbor edge tests; O(n log n) |
//! | OurExact (Theorem 2) | [`algorithms::grid_exact`] | grid + BCP edge tests, any fixed d |
//! | OurApprox (Theorem 4) | [`algorithms::rho_approx`] | grid + approximate range counting; O(n) expected |
//! | CIT08 | [`algorithms::cit08`] | grid-partitioned exact baseline (Mahran & Mahar) |
//!
//! All exact algorithms produce the *unique* clustering of Problem 1 (up to cluster
//! numbering); [`algorithms::rho_approx`] produces a legal result of Problem 2,
//! guaranteed by Theorem 3 to be sandwiched between the exact clusterings at `ε`
//! and `ε(1+ρ)`.
//!
//! Shared machinery lives in the submodules: [`labeling`] (core-point
//! identification on the grid), [`bcp`] (bichromatic closest-pair tests),
//! [`cells`] (the core-cell graph and cluster assembly), [`border`] (border-point
//! assignment), [`unionfind`], and [`usec`] (Lemma 4). The blocked
//! structure-of-arrays distance kernels behind the BCP, labeling, and border
//! hot paths are re-exported as [`kernels`] (implemented in
//! `dbscan_geom::kernels`).

// Indexed `for d in 0..D` loops pairing two fixed-size arrays are clearer than
// zip chains in the coordinate arithmetic below.
#![allow(clippy::needless_range_loop)]

pub mod algorithms;
pub mod baselines;
pub mod bcp;
pub mod border;
pub mod cells;
pub mod deadline;
pub mod error;
pub mod faults;
pub mod hopcroft;
pub mod labeling;
pub mod optics;
pub mod parallel;
pub mod scheduler;
pub mod stats;
pub mod trace;
pub mod types;
pub mod unionfind;
pub mod usec;
pub mod validate;

pub use cells::CoreCells;
pub use deadline::{
    parse_duration, Budget, CancelReason, CancelToken, DeadlineConfig, DeadlineOutcome,
    DeadlinePolicy, DeadlineReport, RunCtl, StageId,
};
pub use dbscan_geom::kernels;
pub use error::{DbscanError, RecoveryPolicy, ResourceLimits};
pub use faults::{FaultPlan, FaultSite};
pub use parallel::ParConfig;
pub use scheduler::WorkerPool;
pub use stats::{Counter, NoStats, Phase, Stats, StatsReport, StatsSink};
pub use trace::{
    export::{chrome_trace_json, chrome_trace_json_capped, folded_stacks},
    hist::HistKind,
    EventName, NoTrace, TraceSink, TraceSnapshot, TracedStats, Tracer,
};
pub use types::{Assignment, Clustering, DbscanParams, ParamError};
