//! The USEC → DBSCAN reduction of Lemma 4 — the constructive half of the
//! paper's hardness proof (Theorem 1).
//!
//! Unit-Spherical Emptiness Checking (USEC): given points `S_pt` and
//! equal-radius balls `S_ball`, decide whether some point is covered by some
//! ball. Lemma 4 shows any DBSCAN algorithm solves USEC with O(n) extra work:
//! cluster `S_pt ∪ centers(S_ball)` with `ε = radius`, `MinPts = 1`, and answer
//! *yes* iff some point and some center share a cluster. Since USEC is believed
//! to require Ω(n^{4/3}) time in d ≥ 3, so does DBSCAN.
//!
//! This module implements the reduction executable-ly (with any of the exact
//! algorithms as the black box `A`) plus the brute-force USEC oracle used to
//! validate it.

use crate::algorithms::grid_exact;
use crate::types::DbscanParams;
use dbscan_geom::Point;

/// A USEC instance: points, ball centers, and the balls' common radius.
#[derive(Clone, Debug)]
pub struct UsecInstance<const D: usize> {
    pub points: Vec<Point<D>>,
    pub centers: Vec<Point<D>>,
    pub radius: f64,
}

impl<const D: usize> UsecInstance<D> {
    /// Total input size `n = |S_pt| + |S_ball|`.
    pub fn len(&self) -> usize {
        self.points.len() + self.centers.len()
    }

    /// Whether the instance has neither points nor balls.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty() && self.centers.is_empty()
    }
}

/// Solves USEC via the Lemma 4 reduction, using the paper's exact DBSCAN
/// algorithm as the black box.
pub fn solve_via_dbscan<const D: usize>(instance: &UsecInstance<D>) -> bool {
    if instance.points.is_empty() || instance.centers.is_empty() {
        return false;
    }
    // Step 1-2: P = S_pt ∪ centers, ε = radius, MinPts = 1.
    let mut p: Vec<Point<D>> = Vec::with_capacity(instance.len());
    p.extend_from_slice(&instance.points);
    p.extend_from_slice(&instance.centers);
    let params =
        DbscanParams::new(instance.radius, 1).expect("radius must be positive for a USEC instance");

    // Step 3: run the black-box DBSCAN algorithm. MinPts = 1 makes every point
    // core, so every assignment is Core(_).
    let clustering = grid_exact(&p, params);

    // Step 4: yes iff a point and a center share a cluster.
    let split = instance.points.len();
    let mut has_point = vec![false; clustering.num_clusters];
    let mut has_center = vec![false; clustering.num_clusters];
    for (i, a) in clustering.assignments.iter().enumerate() {
        let c = a.clusters()[0] as usize;
        if i < split {
            has_point[c] = true;
        } else {
            has_center[c] = true;
        }
    }
    (0..clustering.num_clusters).any(|c| has_point[c] && has_center[c])
}

/// Brute-force USEC oracle: O(|S_pt| · |S_ball|).
pub fn solve_brute<const D: usize>(instance: &UsecInstance<D>) -> bool {
    let r_sq = instance.radius * instance.radius;
    instance
        .points
        .iter()
        .any(|p| instance.centers.iter().any(|c| p.dist_sq(c) <= r_sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p3;

    #[test]
    fn trivial_yes_and_no() {
        let yes = UsecInstance {
            points: vec![p3(0.0, 0.0, 0.0)],
            centers: vec![p3(0.5, 0.0, 0.0)],
            radius: 1.0,
        };
        assert!(solve_brute(&yes));
        assert!(solve_via_dbscan(&yes));

        let no = UsecInstance {
            points: vec![p3(0.0, 0.0, 0.0)],
            centers: vec![p3(5.0, 0.0, 0.0)],
            radius: 1.0,
        };
        assert!(!solve_brute(&no));
        assert!(!solve_via_dbscan(&no));
    }

    #[test]
    fn boundary_coverage_counts() {
        // A point exactly on a ball's boundary is covered (closed ball).
        let inst = UsecInstance {
            points: vec![p3(3.0, 4.0, 0.0)],
            centers: vec![p3(0.0, 0.0, 0.0)],
            radius: 5.0,
        };
        assert!(solve_brute(&inst));
        assert!(solve_via_dbscan(&inst));
    }

    /// The subtle case the reduction's Case-1 proof handles: a point can share a
    /// cluster with a center *through other points*, even when no ball covers it
    /// directly... except the proof shows that then some ball must cover some
    /// (possibly different) point. Chains of points alone never create a false
    /// "yes".
    #[test]
    fn chain_of_points_does_not_fool_reduction() {
        // Points chained within radius of each other, center far from all.
        let inst = UsecInstance {
            points: vec![p3(0.0, 0.0, 0.0), p3(0.9, 0.0, 0.0), p3(1.8, 0.0, 0.0)],
            centers: vec![p3(10.0, 0.0, 0.0)],
            radius: 1.0,
        };
        assert!(!solve_brute(&inst));
        assert!(!solve_via_dbscan(&inst));
    }

    #[test]
    fn chained_centers_reach_point() {
        // Center A covers no point but is within radius of center B which covers
        // point q: the cluster {q, B, A} makes the reduction answer yes — and
        // indeed q IS covered (by B). Verifies Case 1 of the proof.
        let inst = UsecInstance {
            points: vec![p3(0.0, 0.0, 0.0)],
            centers: vec![p3(0.8, 0.0, 0.0), p3(1.6, 0.0, 0.0)],
            radius: 1.0,
        };
        assert!(solve_brute(&inst));
        assert!(solve_via_dbscan(&inst));
    }

    #[test]
    fn randomized_agreement_with_oracle() {
        let mut state = 0xFACEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 20.0
        };
        for trial in 0..20 {
            let npts = 30;
            let ncen = 20;
            let inst = UsecInstance {
                points: (0..npts).map(|_| p3(next(), next(), next())).collect(),
                centers: (0..ncen).map(|_| p3(next(), next(), next())).collect(),
                radius: 0.5 + (trial as f64) * 0.2,
            };
            assert_eq!(solve_via_dbscan(&inst), solve_brute(&inst), "trial {trial}");
        }
    }

    #[test]
    fn empty_sides_answer_no() {
        let no_points = UsecInstance::<3> {
            points: vec![],
            centers: vec![p3(0.0, 0.0, 0.0)],
            radius: 1.0,
        };
        assert!(!solve_via_dbscan(&no_points));
        assert!(no_points.len() == 1 && !no_points.is_empty());
    }
}
