//! Core cells, the core-cell graph `G`, and cluster assembly — the skeleton
//! shared by Gunawan's 2D algorithm, the paper's exact algorithm (Section 3.2),
//! and the ρ-approximate algorithm (Section 4.4).
//!
//! All three algorithms are instances of the same template:
//!
//! 1. build the side-`ε/√d` grid and label core points;
//! 2. take the *core cells* (cells with at least one core point) as vertices of
//!    a graph `G` and decide edges between ε-neighbor core cells with some
//!    *edge test* (nearest-neighbor search, BCP, or approximate counting);
//! 3. the connected components of `G` are exactly the clusters restricted to
//!    core points (Lemma 1);
//! 4. assign border points to the clusters of core points within ε.
//!
//! Only step 2 differs between the algorithms, so it is a closure parameter of
//! [`connect_core_cells`].

use crate::border::assign_border_clusters;
use crate::deadline::{RunCtl, StageId};
use crate::error::{DbscanError, ResourceLimits};
use crate::labeling::label_core_points_ctl;
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Assignment, Clustering, DbscanParams};
use crate::unionfind::UnionFind;
use dbscan_geom::kernels::SoaBlock;
use dbscan_geom::Point;
use dbscan_index::GridIndex;
use std::cell::Cell as StdCell;
use std::time::Instant;

/// The grid, core labels, and the per-cell core point lists that the cell-graph
/// algorithms operate on.
pub struct CoreCells<const D: usize> {
    pub params: DbscanParams,
    pub grid: GridIndex<D>,
    /// Per input point: is it a core point?
    pub is_core: Vec<bool>,
    /// Indices (into `grid.cells()`) of the cells containing at least one core
    /// point, in cell order. The position of a cell in this list is its *rank* —
    /// the vertex id in the graph `G`.
    pub core_cells: Vec<u32>,
    /// Inverse of `core_cells`: `rank_of_cell[cell] == u32::MAX` for non-core cells.
    pub rank_of_cell: Vec<u32>,
    /// Per rank, the ids of the core points in that cell.
    pub core_points_of: Vec<Vec<u32>>,
    /// Per-rank core-point coordinates gathered into contiguous lanes (rank
    /// `r`'s region holds lane 0 of all its points, then lane 1, …), so the
    /// blocked BCP and border kernels stream coordinates instead of chasing
    /// point ids. Same point order as `core_points_of[r]`.
    pub(crate) core_soa: Vec<f64>,
    /// Prefix offsets into `core_soa` in *points*: rank `r`'s lanes occupy
    /// `core_soa[start[r]*D .. start[r+1]*D]`. Length `num_core_cells() + 1`.
    pub(crate) core_soa_start: Vec<u32>,
}

/// Gathers each rank's core-point coordinates into one flat lane-major buffer
/// (see [`CoreCells::core_soa`]); shared by the sequential and parallel
/// builders so both produce the identical layout.
pub(crate) fn gather_core_soa<const D: usize>(
    points: &[Point<D>],
    core_points_of: &[Vec<u32>],
) -> (Vec<f64>, Vec<u32>) {
    let total: usize = core_points_of.iter().map(Vec::len).sum();
    let mut soa = Vec::with_capacity(total * D);
    let mut start = Vec::with_capacity(core_points_of.len() + 1);
    let mut off = 0u32;
    start.push(off);
    for ids in core_points_of {
        // Same lane-major layout as `SoaBlock::gather`, written straight
        // into the shared buffer (no per-cell temporary).
        for d in 0..D {
            soa.extend(ids.iter().map(|&i| points[i as usize][d]));
        }
        off += ids.len() as u32;
        start.push(off);
    }
    (soa, start)
}

impl<const D: usize> CoreCells<D> {
    /// Approximate resident heap footprint in bytes (grid index plus the
    /// core-cell side tables). Used by hosts that cache built structures
    /// under a byte budget; ignores allocator slack.
    pub fn approx_bytes(&self) -> u64 {
        let side_tables = self.is_core.len() * std::mem::size_of::<bool>()
            + self.core_cells.len() * std::mem::size_of::<u32>()
            + self.rank_of_cell.len() * std::mem::size_of::<u32>()
            + self
                .core_points_of
                .iter()
                .map(|v| std::mem::size_of::<Vec<u32>>() + v.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.core_soa.len() * std::mem::size_of::<f64>()
            + self.core_soa_start.len() * std::mem::size_of::<u32>();
        self.grid.approx_bytes() + side_tables as u64
    }

    /// Builds the grid, labels core points, and collects core cells.
    pub fn build(points: &[Point<D>], params: DbscanParams) -> Self {
        Self::build_instrumented(points, params, &NoStats)
    }

    /// Instrumented twin of [`CoreCells::build`]: the grid build is timed as
    /// [`Phase::GridBuild`]; labeling and core-cell collection as
    /// [`Phase::Labeling`]. Panics on invalid input (non-finite coordinates,
    /// cell overflow); see [`CoreCells::try_build_instrumented`].
    pub fn build_instrumented<S: StatsSink>(
        points: &[Point<D>],
        params: DbscanParams,
        stats: &S,
    ) -> Self {
        Self::try_build_instrumented(points, params, &ResourceLimits::UNLIMITED, stats)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`CoreCells::build_instrumented`]: validates the
    /// points (finite coordinates, representable cell indices) and builds the
    /// grid under `limits`' byte budget, returning a typed [`DbscanError`]
    /// instead of panicking or silently corrupting the grid.
    pub fn try_build_instrumented<S: StatsSink>(
        points: &[Point<D>],
        params: DbscanParams,
        limits: &ResourceLimits,
        stats: &S,
    ) -> Result<Self, DbscanError> {
        Self::try_build_ctl(points, params, limits, stats, &RunCtl::unlimited())
    }

    /// Deadline-aware twin of [`CoreCells::try_build_instrumented`]: the
    /// labeling pass checkpoints the run's budget once per cell (see
    /// [`label_core_points_ctl`]); the grid build itself is atomic (it is a
    /// single allocation-and-scatter pass, not task-shaped). Under `abort`
    /// the caller converts the observed expiry to the typed error after this
    /// returns; under `partial` the remaining cells simply come back
    /// non-core.
    pub fn try_build_ctl<S: StatsSink>(
        points: &[Point<D>],
        params: DbscanParams,
        limits: &ResourceLimits,
        stats: &S,
        ctl: &RunCtl,
    ) -> Result<Self, DbscanError> {
        crate::validate::check_points_finite(points)?;
        let span = stats.now();
        let grid = GridIndex::try_build(points, params.eps(), limits.max_index_bytes)?;
        stats.finish(Phase::GridBuild, span);
        let span = stats.now();
        let is_core = label_core_points_ctl(points, &grid, params, stats, ctl);

        let mut core_cells = Vec::new();
        let mut rank_of_cell = vec![u32::MAX; grid.num_cells()];
        let mut core_points_of = Vec::new();
        for ci in 0..grid.num_cells() {
            let core_pts: Vec<u32> = grid
                .points_of(ci as u32)
                .iter()
                .copied()
                .filter(|&p| is_core[p as usize])
                .collect();
            if !core_pts.is_empty() {
                rank_of_cell[ci] = core_cells.len() as u32;
                core_cells.push(ci as u32);
                core_points_of.push(core_pts);
            }
        }
        stats.finish(Phase::Labeling, span);
        // The gather is a structure build (it is what the edge kernels run
        // over), kept out of the labeling span like the lazy kd-tree builds.
        let span = stats.now();
        let (core_soa, core_soa_start) = gather_core_soa(points, &core_points_of);
        stats.finish(Phase::StructureBuild, span);
        Ok(CoreCells {
            params,
            grid,
            is_core,
            core_cells,
            rank_of_cell,
            core_points_of,
            core_soa,
            core_soa_start,
        })
    }

    /// Number of core cells (vertices of `G`).
    pub fn num_core_cells(&self) -> usize {
        self.core_cells.len()
    }

    /// Total number of core points.
    pub fn num_core_points(&self) -> usize {
        self.core_points_of.iter().map(Vec::len).sum()
    }

    /// Structure-of-arrays view of rank `r`'s core points, in
    /// `core_points_of[r]` order — the input of the blocked distance kernels
    /// ([`dbscan_geom::kernels`]).
    pub fn core_block(&self, r: usize) -> SoaBlock<'_, D> {
        let s = self.core_soa_start[r] as usize;
        let e = self.core_soa_start[r + 1] as usize;
        SoaBlock::from_contiguous(&self.core_soa[s * D..e * D], e - s)
    }

    /// Calls `f(r2)` for every candidate partner of rank `r1`: the ε-neighbor
    /// core cells with rank greater than `r1`. Iterating every rank therefore
    /// enumerates each unordered candidate pair of `G` exactly once — the
    /// shared enumeration behind the sequential connect loop and the parallel
    /// per-cell edge tasks, which is what keeps their
    /// [`Counter::EdgeTests`](crate::stats::Counter::EdgeTests) totals
    /// identical.
    pub fn for_candidate_partners(&self, r1: usize, mut f: impl FnMut(usize)) {
        for &nb in self.grid.neighbors_of(self.core_cells[r1]) {
            let r2 = self.rank_of_cell[nb as usize];
            if r2 != u32::MAX && (r2 as usize) > r1 {
                f(r2 as usize);
            }
        }
    }

    /// Scheduling weight of rank `r1`'s edge-test task: Σ |c₁|·|c₂| over its
    /// candidate pairs — an upper bound on the pair-test cost (the
    /// brute-force scan is exactly that product; tree probes and counter
    /// queries are cheaper). Used by the parallel layer to order tasks
    /// heaviest-first (see [`crate::scheduler`]).
    pub fn edge_task_weight(&self, r1: usize) -> u64 {
        let len1 = self.core_points_of[r1].len() as u64;
        let mut weight = 0u64;
        self.for_candidate_partners(r1, |r2| {
            weight += len1 * self.core_points_of[r2].len() as u64;
        });
        weight
    }
}

/// Computes the connected components of the core-cell graph `G`.
///
/// `edge_test(r1, r2)` is consulted for each unordered pair of ε-neighbor core
/// cells (by rank, `r1 < r2`) that is not already connected — the union-find
/// short-circuit means an algorithm never pays for an edge that cannot change
/// the components, mirroring the "all such p have been tried" early exits of the
/// paper's edge computations.
pub fn connect_core_cells<const D: usize>(
    cc: &CoreCells<D>,
    edge_test: impl FnMut(usize, usize) -> bool,
) -> UnionFind {
    connect_core_cells_instrumented(cc, &NoStats, &StdCell::new(0), edge_test)
}

/// Instrumented twin of [`connect_core_cells`].
///
/// Counting semantics: every enumerated candidate pair bumps
/// [`Counter::EdgeTests`] *before* the union-find short-circuit, so sequential
/// and parallel runs of the same algorithm report identical edge-test counts;
/// pairs the short-circuit drops bump [`Counter::EdgeTestsSkipped`] instead of
/// reaching the closure.
///
/// Time attribution: the loop is measured once and split three ways —
/// `uf.union` nanoseconds go to [`Phase::UnionFind`], nanoseconds the edge
/// closure reports via `deferred_build_nanos` (lazy kd-tree / counter builds it
/// performed while deciding an edge) go to [`Phase::StructureBuild`], and the
/// remainder is [`Phase::EdgeTests`]. Eagerly-built callers pass a fresh zero
/// cell.
pub fn connect_core_cells_instrumented<const D: usize, S: StatsSink>(
    cc: &CoreCells<D>,
    stats: &S,
    deferred_build_nanos: &StdCell<u64>,
    edge_test: impl FnMut(usize, usize) -> bool,
) -> UnionFind {
    connect_impl(cc, stats, deferred_build_nanos, None, edge_test)
}

/// Deadline-aware twin of [`connect_core_cells_instrumented`]: checkpoints
/// the budget once per core cell (the parallel layer's task granularity).
/// Under `degrade` the checkpoint never stops the loop — it only flips
/// [`RunCtl::edge_degraded`], and the *closure* (owned by the algorithm)
/// switches to its approximate path; under `partial`/`abort` the loop breaks
/// and the union-find holds exactly the edges decided so far.
pub fn connect_core_cells_ctl<const D: usize, S: StatsSink>(
    cc: &CoreCells<D>,
    stats: &S,
    deferred_build_nanos: &StdCell<u64>,
    ctl: &RunCtl,
    edge_test: impl FnMut(usize, usize) -> bool,
) -> UnionFind {
    connect_impl(cc, stats, deferred_build_nanos, Some(ctl), edge_test)
}

fn connect_impl<const D: usize, S: StatsSink>(
    cc: &CoreCells<D>,
    stats: &S,
    deferred_build_nanos: &StdCell<u64>,
    ctl: Option<&RunCtl>,
    mut edge_test: impl FnMut(usize, usize) -> bool,
) -> UnionFind {
    let ctl = ctl.filter(|c| c.armed());
    if let Some(ctl) = ctl {
        ctl.stage_begin(StageId::EdgeTests, cc.num_core_cells() as u64);
    }
    let span = stats.now();
    let mut union_nanos = 0u64;
    let mut uf = UnionFind::new(cc.num_core_cells());
    for (r1, &cell1) in cc.core_cells.iter().enumerate() {
        if let Some(ctl) = ctl {
            if ctl.should_stop() {
                break;
            }
        }
        for &nb in cc.grid.neighbors_of(cell1) {
            let r2 = cc.rank_of_cell[nb as usize];
            if r2 == u32::MAX || (r2 as usize) <= r1 {
                continue;
            }
            stats.bump(Counter::EdgeTests);
            if uf.same(r1 as u32, r2) {
                stats.bump(Counter::EdgeTestsSkipped);
                continue;
            }
            let hit = if S::TRACE_ENABLED {
                let t = Instant::now();
                let hit = edge_test(r1, r2 as usize);
                stats.trace_hist(
                    crate::trace::hist::HistKind::EdgeTestNanos,
                    t.elapsed().as_nanos() as u64,
                );
                hit
            } else {
                edge_test(r1, r2 as usize)
            };
            if hit {
                stats.bump(Counter::EdgesFound);
                stats.bump(Counter::UnionOps);
                if S::ENABLED {
                    let t = Instant::now();
                    uf.union(r1 as u32, r2);
                    union_nanos += t.elapsed().as_nanos() as u64;
                } else {
                    uf.union(r1 as u32, r2);
                }
            }
        }
        if let Some(ctl) = ctl {
            ctl.stage_done(StageId::EdgeTests, 1);
        }
    }
    if let Some(start) = span {
        let total = start.elapsed().as_nanos() as u64;
        let deferred = deferred_build_nanos.get();
        let edge = total.saturating_sub(union_nanos + deferred);
        stats.add_phase_nanos(Phase::UnionFind, union_nanos);
        stats.add_phase_nanos(Phase::StructureBuild, deferred);
        stats.add_phase_nanos(Phase::EdgeTests, edge);
        if S::TRACE_ENABLED {
            // Same nanos as the stats attribution above, rendered as three
            // consecutive coordinator sub-spans from the loop's start —
            // placement is synthetic (the three kinds of work interleave),
            // durations are exact.
            stats.trace_connect_spans(start, edge, union_nanos, deferred);
        }
    }
    uf
}

/// Turns the connected components of `G` into the final [`Clustering`]:
/// core points inherit their cell's component, border points are assigned to
/// every cluster owning a core point within ε, the rest is noise (Section 2.2,
/// "Assigning Border Points").
pub fn assemble_clustering<const D: usize>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
) -> Clustering {
    assemble_clustering_instrumented(points, cc, uf, &NoStats)
}

/// Instrumented twin of [`assemble_clustering`]: the whole assembly pass
/// (label compaction, core assignment, border assignment) is timed as
/// [`Phase::BorderAssign`].
pub fn assemble_clustering_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
    stats: &S,
) -> Clustering {
    let span = stats.now();
    let out = assemble_impl(points, cc, uf, None);
    stats.finish(Phase::BorderAssign, span);
    out
}

/// Deadline-aware twin of [`assemble_clustering_instrumented`]: the border
/// pass checkpoints the budget once per non-core point. Core-point
/// assignment (a scatter over the union-find components) always completes —
/// it is what makes a `partial` result a coherent clustering; only border
/// assignment can be truncated, in which case the remaining border points
/// come back as noise (the conservative direction: never a wrong cluster).
pub fn assemble_clustering_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
    stats: &S,
    ctl: &RunCtl,
) -> Clustering {
    let span = stats.now();
    let out = assemble_impl(points, cc, uf, Some(ctl).filter(|c| c.armed()));
    stats.finish(Phase::BorderAssign, span);
    out
}

fn assemble_impl<const D: usize>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
    ctl: Option<&RunCtl>,
) -> Clustering {
    let (component_of_rank, num_clusters) = uf.compact_labels();

    let mut assignments = vec![Assignment::Noise; points.len()];
    for (rank, core_pts) in cc.core_points_of.iter().enumerate() {
        let cluster = component_of_rank[rank];
        for &p in core_pts {
            assignments[p as usize] = Assignment::Core(cluster);
        }
    }
    if let Some(ctl) = ctl {
        let non_core = points.len() as u64 - cc.num_core_points() as u64;
        ctl.stage_begin(StageId::BorderAssign, non_core);
    }
    for p in 0..points.len() as u32 {
        if cc.is_core[p as usize] {
            continue;
        }
        if let Some(ctl) = ctl {
            if ctl.should_stop() {
                break;
            }
        }
        let clusters = assign_border_clusters(points, cc, &component_of_rank, p);
        if !clusters.is_empty() {
            assignments[p as usize] = Assignment::Border(clusters);
        }
        if let Some(ctl) = ctl {
            ctl.stage_done(StageId::BorderAssign, 1);
        }
    }
    Clustering {
        assignments,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    #[test]
    fn core_cells_collects_only_core() {
        // Cluster of 3 at origin (MinPts 3) + 1 faraway noise point.
        let pts = vec![p2(0.0, 0.0), p2(0.5, 0.0), p2(0.0, 0.5), p2(50.0, 50.0)];
        let cc = CoreCells::build(&pts, params(1.0, 3));
        assert_eq!(cc.is_core, vec![true, true, true, false]);
        assert_eq!(cc.num_core_points(), 3);
        assert!(cc.num_core_cells() >= 1);
        // Every core point appears in exactly one core cell list.
        let all: Vec<u32> = cc.core_points_of.iter().flatten().copied().collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn connect_respects_edge_test() {
        // Two dense singleton-cell groups within ε of each other.
        let pts = vec![p2(0.0, 0.0), p2(0.0, 0.1), p2(0.9, 0.0), p2(0.9, 0.1)];
        let cc = CoreCells::build(&pts, params(1.0, 2));
        // With an always-false edge test the cells stay separate...
        let mut uf = connect_core_cells(&cc, |_, _| false);
        let expected_cells = cc.num_core_cells();
        assert_eq!(uf.num_components(), expected_cells);
        // ...and with an always-true test everything ε-adjacent merges.
        let mut uf2 = connect_core_cells(&cc, |_, _| true);
        assert_eq!(uf2.num_components(), 1);
        let _ = (&mut uf, &mut uf2);
    }

    #[test]
    fn assemble_produces_consistent_clustering() {
        let pts = vec![
            p2(0.0, 0.0),
            p2(0.5, 0.0),
            p2(0.0, 0.5),
            p2(1.4, 0.0), // border: within ε of core 1 but has only 2 neighbors
            p2(50.0, 50.0),
        ];
        let p = params(1.0, 3);
        let cc = CoreCells::build(&pts, p);
        let mut uf = connect_core_cells(&cc, |r1, r2| {
            crate::bcp::within_threshold_brute(
                &pts,
                &cc.core_points_of[r1],
                &cc.core_points_of[r2],
                p.eps(),
            )
        });
        let clustering = assemble_clustering(&pts, &cc, &mut uf);
        clustering.validate().unwrap();
        assert_eq!(clustering.num_clusters, 1);
        assert!(clustering.assignments[3].is_border());
        assert!(clustering.assignments[4].is_noise());
    }
}
