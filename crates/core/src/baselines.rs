//! Non-density baselines used for the paper's motivating comparison.
//!
//! Section 1 of the paper contrasts density-based clustering with k-means:
//! "the main advantage of density-based clustering (over methods such as
//! k-means) is its capability of discovering clusters with arbitrary shapes
//! (while k-means typically returns ball-like clusters)" — Figure 1. The
//! `examples/arbitrary_shapes.rs` demo and the `repro fig1` subcommand make
//! that claim executable, which needs a k-means to compare against.

use crate::validate::check_points;
use dbscan_geom::Point;
use rand::Rng;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KmeansResult<const D: usize> {
    /// Final centroids, `k` of them.
    pub centroids: Vec<Point<D>>,
    /// Per-point index of the owning centroid.
    pub labels: Vec<u32>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Lloyd's k-means with k-means++ seeding.
///
/// `k` is clamped to the number of points; the iteration stops at convergence
/// (no label changes) or after `max_iters`.
pub fn kmeans<const D: usize>(
    points: &[Point<D>],
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
) -> KmeansResult<D> {
    check_points(points);
    assert!(k >= 1, "k must be at least 1");
    let n = points.len();
    if n == 0 {
        return KmeansResult {
            centroids: Vec::new(),
            labels: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);

    // --- k-means++ seeding ---
    let mut centroids: Vec<Point<D>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)]);
    let mut dist_sq: Vec<f64> = points.iter().map(|p| p.dist_sq(&centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass is on already-chosen positions (duplicates);
            // fall back to uniform choice.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let c = points[next];
        centroids.push(c);
        for (i, p) in points.iter().enumerate() {
            dist_sq[i] = dist_sq[i].min(p.dist_sq(&c));
        }
    }

    // --- Lloyd iterations ---
    let mut labels = vec![0u32; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = p.dist_sq(centroid);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![[0.0f64; D]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = labels[i] as usize;
            counts[c] += 1;
            for d in 0..D {
                sums[c][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let mut coords = [0.0; D];
                for d in 0..D {
                    coords[d] = sums[c][d] / counts[c] as f64;
                }
                centroids[c] = Point(coords);
            }
            // Empty clusters keep their centroid (k-means++ makes this rare).
        }
    }

    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| p.dist_sq(&centroids[l as usize]))
        .sum();
    KmeansResult {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(p2((i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1));
            pts.push(p2(10.0 + (i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1));
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 100, &mut StdRng::seed_from_u64(1));
        // All even indices (left blob) share a label; all odd share the other.
        let left = r.labels[0];
        let right = r.labels[1];
        assert_ne!(left, right);
        for i in 0..pts.len() {
            assert_eq!(r.labels[i], if i % 2 == 0 { left } else { right });
        }
        assert!(r.inertia < 2.0, "inertia {}", r.inertia);
    }

    #[test]
    fn k_one_returns_mean() {
        let pts = vec![p2(0.0, 0.0), p2(2.0, 0.0)];
        let r = kmeans(&pts, 1, 50, &mut StdRng::seed_from_u64(2));
        assert_eq!(r.centroids.len(), 1);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-9);
        assert_eq!(r.labels, vec![0, 0]);
    }

    #[test]
    fn k_clamped_to_n_and_duplicates_handled() {
        let pts = vec![p2(1.0, 1.0); 5];
        let r = kmeans(&pts, 10, 50, &mut StdRng::seed_from_u64(3));
        assert_eq!(r.centroids.len(), 5);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn empty_input() {
        let r = kmeans::<2>(&[], 3, 10, &mut StdRng::seed_from_u64(4));
        assert!(r.labels.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let i1 = kmeans(&pts, 1, 100, &mut rng).inertia;
        let i2 = kmeans(&pts, 2, 100, &mut rng).inertia;
        let i4 = kmeans(&pts, 4, 100, &mut rng).inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }
}
