//! Time budgets, cooperative cancellation, and graceful degradation.
//!
//! A [`Budget`] pairs a monotonic-clock deadline with an atomic cancel flag
//! ([`CancelToken`]). The budget is threaded cooperatively through every
//! algorithm's main loops and the three parallel phases: workers poll
//! [`RunCtl::should_stop`] once per claimed task and once per bounded batch of
//! inner iterations, so cancellation latency is bounded by the cost of a
//! single task plus the polling stride, and is *measured* (the observed
//! overshoot past the budget edge is recorded in
//! [`DeadlineReport::cancel_latency_ns`]).
//!
//! What happens at the budget edge is decided by a [`DeadlinePolicy`]:
//!
//! - [`DeadlinePolicy::Abort`] — the run returns
//!   [`DbscanError::DeadlineExceeded`](crate::DbscanError::DeadlineExceeded)
//!   naming the phase, the elapsed time, and how many tasks were left.
//! - [`DeadlinePolicy::Degrade`] — the remaining *edge-phase* work switches
//!   from exact BCP tests to Lemma 5 approximate counting at a configured
//!   `degrade_rho`. By the Sandwich Theorem (Theorem 3 of the paper) an
//!   approximate edge test at ρ′ only errs inside the `(ε, ε(1+ρ′)]` slack
//!   band, and an exact answer is always a legal answer for the approximate
//!   rule — so a run that mixes exact edges (before the budget tripped) with
//!   ρ′-approximate edges (after) is still a valid ρ′-approximate clustering,
//!   sandwiched between exact DBSCAN at ε and at ε(1+ρ′). The number of
//!   degraded edges is recorded per run.
//! - [`DeadlinePolicy::Partial`] — the run finalizes the union-find as-is and
//!   returns the clusters computed so far, marked `complete: false`, with
//!   per-stage progress fractions.
//!
//! The module also houses the stall watchdog plumbing ([`Heartbeats`]): each
//! parallel worker beats a per-worker monotonic heartbeat after every claim,
//! and a coordinator-side watchdog thread trips the poison latch (PR 3's
//! recovery path) when the *stalest* live worker exceeds a configurable age.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use crate::error::{validate_rho, DbscanError};
use crate::types::DbscanParams;
use dbscan_geom::grid::{base_side, hierarchy_levels};
use dbscan_geom::Point;

/// Parse a human-friendly duration: a non-negative number with a mandatory
/// unit suffix `us`, `ms`, `s`, or `m` (e.g. `500ms`, `2s`, `1.5m`).
///
/// Fractional values are accepted (`0.25s` == `250ms`). A bare number with
/// the unit elided (`1.5`) is rejected — durations are never implicitly
/// seconds — and the error message names the offending token plus the
/// accepted suffixes so CLI callers can surface it verbatim (every duration
/// flag in the workspace routes through this one parser: `--deadline`,
/// `--stall-timeout`, and the server's `--drain-deadline` /
/// `--pressure-threshold`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let t = s.trim();
    // "ms" before "s" and "m": the longest suffix must win.
    let (digits, nanos_per_unit) = if let Some(d) = t.strip_suffix("ms") {
        (d, 1_000_000.0)
    } else if let Some(d) = t.strip_suffix("us") {
        (d, 1_000.0)
    } else if let Some(d) = t.strip_suffix('s') {
        (d, 1_000_000_000.0)
    } else if let Some(d) = t.strip_suffix('m') {
        (d, 60_000_000_000.0)
    } else {
        return Err(format!(
            "duration {t:?} needs a unit suffix (us, ms, s, or m)"
        ));
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("duration {t:?} has a non-numeric value"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration {t:?} must be non-negative and finite"));
    }
    let ns = value * nanos_per_unit;
    if ns > u64::MAX as f64 {
        return Err(format!("duration {t:?} overflows the nanosecond range"));
    }
    Ok(Duration::from_nanos(ns as u64))
}

/// Why a [`CancelToken`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The monotonic-clock budget ran out.
    Deadline,
    /// The stall watchdog declared the run wedged.
    Stall,
    /// An external caller requested cancellation.
    External,
    /// The process was asked to stop (SIGINT/SIGTERM or a server-side drain).
    Interrupted,
}

impl CancelReason {
    /// Stable lowercase name (used in traces and JSON).
    pub fn name(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Stall => "stall",
            CancelReason::External => "external",
            CancelReason::Interrupted => "interrupted",
        }
    }

    /// Whether this reason is a *hard* cancel: an explicit request to stop
    /// ([`External`](CancelReason::External) /
    /// [`Interrupted`](CancelReason::Interrupted)) always halts the run with
    /// [`DbscanError::Cancelled`](crate::DbscanError::Cancelled), regardless
    /// of the configured [`DeadlinePolicy`] — degrade/partial only soften
    /// *budget* expiry, never an operator's cancel.
    pub fn is_hard(self) -> bool {
        matches!(self, CancelReason::External | CancelReason::Interrupted)
    }
}

const STATE_LIVE: u8 = 0;
const STATE_DEADLINE: u8 = 1;
const STATE_STALL: u8 = 2;
const STATE_EXTERNAL: u8 = 3;
const STATE_INTERRUPTED: u8 = 4;

/// One-shot atomic cancel flag with a reason and a trip timestamp.
///
/// The first trip wins; later trips (from any thread) are ignored. The trip
/// timestamp is expressed in nanoseconds since the owning [`Budget`]'s start
/// instant, so observers can compute how far past the budget edge they first
/// *noticed* the cancellation — the measurable cancellation latency.
#[derive(Debug)]
pub struct CancelToken {
    state: AtomicU8,
    tripped_at_ns: AtomicU64,
}

impl CancelToken {
    fn new() -> Self {
        CancelToken {
            state: AtomicU8::new(STATE_LIVE),
            tripped_at_ns: AtomicU64::new(0),
        }
    }

    fn trip(&self, reason: u8, at_ns: u64) {
        // Store the timestamp before publishing the state so any thread that
        // observes the trip also observes a timestamp at or before it.
        self.tripped_at_ns.store(at_ns, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            STATE_LIVE,
            reason,
            Ordering::Release,
            Ordering::Relaxed,
        );
    }

    /// Like [`CancelToken::trip`], but a hard (explicit-cancel) reason also
    /// *escalates* over an earlier soft trip — e.g. an external cancel landing
    /// on a run already degraded by its deadline must still stop it. The first
    /// hard reason wins; only atomics, so safe from a signal handler.
    fn trip_hard(&self, reason: u8, at_ns: u64) {
        self.tripped_at_ns.store(at_ns, Ordering::Relaxed);
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            if cur == STATE_EXTERNAL || cur == STATE_INTERRUPTED {
                return;
            }
            match self.state.compare_exchange_weak(
                cur,
                reason,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// The reason the token tripped, or `None` while still live.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Acquire) {
            STATE_DEADLINE => Some(CancelReason::Deadline),
            STATE_STALL => Some(CancelReason::Stall),
            STATE_EXTERNAL => Some(CancelReason::External),
            STATE_INTERRUPTED => Some(CancelReason::Interrupted),
            _ => None,
        }
    }

    fn tripped_at_ns(&self) -> u64 {
        self.tripped_at_ns.load(Ordering::Relaxed)
    }
}

/// A monotonic-clock time budget with an embedded [`CancelToken`].
#[derive(Debug)]
pub struct Budget {
    start: Instant,
    limit: Option<Duration>,
    token: CancelToken,
}

impl Budget {
    /// A budget that never expires (the token can still be tripped manually).
    pub fn unlimited() -> Self {
        Budget {
            start: Instant::now(),
            limit: None,
            token: CancelToken::new(),
        }
    }

    /// A budget that expires `limit` after *now*.
    pub fn with_limit(limit: Duration) -> Self {
        Budget {
            start: Instant::now(),
            limit: Some(limit),
            token: CancelToken::new(),
        }
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// Time elapsed since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left before expiry (`None` for unlimited budgets; zero once
    /// expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.limit.map(|l| l.saturating_sub(self.start.elapsed()))
    }

    /// Trip the token for an external reason (e.g. a caller-side abort).
    pub fn cancel(&self) {
        self.token
            .trip_hard(STATE_EXTERNAL, self.start.elapsed().as_nanos() as u64);
    }

    /// Trip the token because the process is being asked to stop. Safe to
    /// call from a signal handler: the trip is two atomic stores and the
    /// trip timestamp is recorded as the budget start (cancel latency is not
    /// a meaningful quantity for interrupts), so no clock is read.
    pub fn interrupt(&self) {
        self.token.trip_hard(STATE_INTERRUPTED, 0);
    }

    /// The reason the budget's token tripped, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        self.token.reason()
    }

    /// Poll the budget: trips the token the first time the deadline passes,
    /// and returns the cancel reason if the token has tripped (now or
    /// earlier).
    pub fn check(&self) -> Option<CancelReason> {
        if let Some(r) = self.token.reason() {
            return Some(r);
        }
        if let Some(limit) = self.limit {
            if self.start.elapsed() >= limit {
                // Record the *budget edge* as the trip time, not the polling
                // instant: observed latency then measures overshoot past the
                // edge, which is the quantity the cancellation-latency bound
                // is about.
                self.token.trip(STATE_DEADLINE, limit.as_nanos() as u64);
                return self.token.reason();
            }
        }
        None
    }
}

/// What to do when the budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Return [`DbscanError::DeadlineExceeded`](crate::DbscanError::DeadlineExceeded).
    #[default]
    Abort,
    /// Switch remaining edge tests to Lemma 5 approximate counting.
    Degrade,
    /// Finalize the union-find as-is and return an incomplete clustering.
    Partial,
}

impl DeadlinePolicy {
    /// Stable lowercase name (matches the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            DeadlinePolicy::Abort => "abort",
            DeadlinePolicy::Degrade => "degrade",
            DeadlinePolicy::Partial => "partial",
        }
    }
}

impl FromStr for DeadlinePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "abort" => Ok(DeadlinePolicy::Abort),
            "degrade" => Ok(DeadlinePolicy::Degrade),
            "partial" => Ok(DeadlinePolicy::Partial),
            other => Err(format!(
                "unknown deadline policy {other:?} (expected abort, degrade, or partial)"
            )),
        }
    }
}

/// Deadline configuration carried on `ParConfig` and built by the CLI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// Wall-clock budget for the whole run; `None` disables the deadline.
    pub budget: Option<Duration>,
    /// What to do when the budget expires.
    pub policy: DeadlinePolicy,
    /// The ρ′ used for degraded edge tests under [`DeadlinePolicy::Degrade`].
    pub degrade_rho: f64,
    /// Stall watchdog threshold; `None` disables the watchdog.
    pub stall_timeout: Option<Duration>,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            budget: None,
            policy: DeadlinePolicy::Abort,
            degrade_rho: 1e-3,
            stall_timeout: None,
        }
    }
}

/// How a budgeted run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineOutcome {
    /// The run finished all work exactly within the budget.
    Exact,
    /// Some edge tests ran at `degrade_rho` instead of exactly.
    Degraded,
    /// The run was truncated; the clustering is an incomplete prefix.
    Partial,
}

impl DeadlineOutcome {
    /// Stable lowercase name (used in the stats envelope).
    pub fn name(self) -> &'static str {
        match self {
            DeadlineOutcome::Exact => "exact",
            DeadlineOutcome::Degraded => "degraded",
            DeadlineOutcome::Partial => "partial",
        }
    }
}

/// The three cancellable stages every algorithm reports progress for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Core-point labeling (range counting per point or per cell).
    Labeling,
    /// Core-cell connectivity (edge tests + union-find).
    EdgeTests,
    /// Border-point assignment / final assembly.
    BorderAssign,
}

impl StageId {
    /// Number of stages (the size of per-stage progress arrays).
    pub const COUNT: usize = 3;

    /// Stable snake_case name (matches `Phase` naming in the stats layer).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Labeling => "labeling",
            StageId::EdgeTests => "edge_tests",
            StageId::BorderAssign => "border_assign",
        }
    }
}

const STAGE_TOTAL_UNSET: u64 = u64::MAX;

/// Fresh per-stage progress slots, all marked "not begun".
fn fresh_progress() -> [[AtomicU64; 2]; StageId::COUNT] {
    std::array::from_fn(|_| [AtomicU64::new(0), AtomicU64::new(STAGE_TOTAL_UNSET)])
}

/// Shared per-run control block: budget, policy, degradation state, and
/// per-stage progress counters. One `RunCtl` is threaded (by reference)
/// through every loop of a budgeted run; an *unarmed* `RunCtl`
/// ([`RunCtl::unlimited`]) makes every check compile down to a single
/// boolean load so the unbudgeted hot path keeps its old shape.
#[derive(Debug)]
pub struct RunCtl {
    armed: bool,
    policy: DeadlinePolicy,
    degrade_rho: f64,
    stall_timeout: Option<Duration>,
    budget: Budget,
    /// Set the first time any checkpoint observes the tripped token.
    observed: AtomicBool,
    /// Set once the run has switched to degraded edge tests.
    degraded: AtomicBool,
    /// Set once the run has decided to truncate (partial policy).
    truncated: AtomicBool,
    degraded_edges: AtomicU64,
    cancel_latency_ns: AtomicU64,
    /// `[done, total]` per stage; `total == u64::MAX` means "not begun".
    progress: [[AtomicU64; 2]; StageId::COUNT],
}

impl RunCtl {
    /// A control block with no budget and no watchdog; every check is a
    /// cheap early-out.
    pub fn unlimited() -> Self {
        RunCtl {
            armed: false,
            policy: DeadlinePolicy::Abort,
            degrade_rho: 1e-3,
            stall_timeout: None,
            budget: Budget::unlimited(),
            observed: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            degraded_edges: AtomicU64::new(0),
            cancel_latency_ns: AtomicU64::new(0),
            progress: fresh_progress(),
        }
    }

    /// Build a control block from a [`DeadlineConfig`]. The block is armed
    /// when the config carries a budget or a stall timeout.
    pub fn new(config: &DeadlineConfig) -> Self {
        let armed = config.budget.is_some() || config.stall_timeout.is_some();
        RunCtl {
            armed,
            policy: config.policy,
            degrade_rho: config.degrade_rho,
            stall_timeout: config.stall_timeout,
            budget: match config.budget {
                Some(limit) => Budget::with_limit(limit),
                None => Budget::unlimited(),
            },
            observed: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            degraded_edges: AtomicU64::new(0),
            cancel_latency_ns: AtomicU64::new(0),
            progress: fresh_progress(),
        }
    }

    /// Like [`RunCtl::new`], but *always* armed, even without a budget or a
    /// stall timeout: every checkpoint pays one atomic load so an external
    /// [`RunCtl::cancel`] / [`RunCtl::interrupt`] is observed promptly. This
    /// is the job-boundary constructor for long-lived front ends (the
    /// `dbscan` CLI's SIGINT handling, the server's `cancel` verb and drain
    /// path), where a run with no deadline must still be stoppable.
    pub fn cancellable(config: &DeadlineConfig) -> Self {
        let mut ctl = Self::new(config);
        ctl.armed = true;
        ctl
    }

    /// Whether any deadline machinery is active for this run.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The run's budget (live even when unarmed, for elapsed-time queries).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured policy.
    pub fn policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// The ρ′ used for degraded edge tests.
    pub fn degrade_rho(&self) -> f64 {
        self.degrade_rho
    }

    /// The stall watchdog threshold, if configured.
    pub fn stall_timeout(&self) -> Option<Duration> {
        self.stall_timeout
    }

    /// Trip the budget's token for an external reason.
    pub fn cancel(&self) {
        self.budget.cancel();
    }

    /// Trip the budget's token because the process is shutting down
    /// (async-signal-safe; see [`Budget::interrupt`]).
    pub fn interrupt(&self) {
        self.budget.interrupt();
    }

    /// Whether the token tripped for a hard (explicit-cancel) reason; see
    /// [`CancelReason::is_hard`].
    fn hard_cancelled(&self) -> bool {
        self.budget.reason().is_some_and(CancelReason::is_hard)
    }

    fn check_cancelled(&self) -> Option<CancelReason> {
        let reason = self.budget.check()?;
        if !self.observed.swap(true, Ordering::AcqRel) {
            let latency = self
                .budget
                .elapsed()
                .as_nanos()
                .saturating_sub(self.budget.token.tripped_at_ns() as u128)
                as u64;
            self.cancel_latency_ns.fetch_max(latency, Ordering::Relaxed);
        }
        Some(reason)
    }

    /// The main cooperative checkpoint: returns `true` when the caller must
    /// stop claiming work. Under [`DeadlinePolicy::Degrade`] this returns
    /// `false` (work continues, but [`RunCtl::edge_degraded`] flips on);
    /// under `Partial` it latches truncation; under `Abort` it simply says
    /// stop (the driver converts to the typed error via
    /// [`RunCtl::deadline_error`]).
    #[inline]
    pub fn should_stop(&self) -> bool {
        if !self.armed {
            return false;
        }
        // Fast paths: once a sticky decision is made, skip the clock read so
        // repeated checkpoints stay cheap and don't inflate cancel latency.
        // A degraded run keeps watching the token (one atomic load) so a
        // hard cancel landing after degradation still stops it.
        if self.policy == DeadlinePolicy::Degrade && self.degraded.load(Ordering::Relaxed) {
            return self.hard_cancelled();
        }
        if self.truncated.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(reason) = self.check_cancelled() {
            if reason.is_hard() {
                // Explicit cancellation overrides the softening policies:
                // the driver surfaces DbscanError::Cancelled.
                return true;
            }
            match self.policy {
                DeadlinePolicy::Abort => true,
                DeadlinePolicy::Partial => {
                    self.truncated.store(true, Ordering::Relaxed);
                    true
                }
                DeadlinePolicy::Degrade => {
                    self.degraded.store(true, Ordering::Relaxed);
                    false
                }
            }
        } else {
            false
        }
    }

    /// Checkpoint for algorithms that have no approximate edge path (KDD'96
    /// flood fill, CIT'08 partitions): `Degrade` is treated as `Partial`
    /// there, so this stops — and latches truncation — on expiry regardless
    /// of policy (except `Abort`, which stops without latching).
    #[inline]
    pub fn should_stop_no_degrade(&self) -> bool {
        if !self.armed {
            return false;
        }
        if self.truncated.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(reason) = self.check_cancelled() {
            if !reason.is_hard() && self.policy != DeadlinePolicy::Abort {
                self.truncated.store(true, Ordering::Relaxed);
            }
            true
        } else {
            false
        }
    }

    /// Whether edge tests should run in degraded (Lemma 5) mode. Cheap:
    /// only reads the sticky flag set by [`RunCtl::should_stop`].
    #[inline]
    pub fn edge_degraded(&self) -> bool {
        self.armed && self.degraded.load(Ordering::Relaxed)
    }

    /// Record one edge test answered by the degraded path.
    #[inline]
    pub fn note_degraded_edge(&self) {
        self.degraded_edges.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether this run can ever degrade (policy is `Degrade` and armed) —
    /// used to decide whether to pre-validate `degrade_rho` and allocate
    /// approximate counters up front.
    pub fn may_degrade(&self) -> bool {
        self.armed && self.policy == DeadlinePolicy::Degrade
    }

    /// Whether the run must abort: some checkpoint observed the tripped
    /// token and either the policy is `Abort` or the cancel was hard
    /// (explicit — see [`CancelReason::is_hard`]). (A run that slips past
    /// its deadline but finishes before any checkpoint notices is allowed
    /// to succeed.)
    pub fn aborted(&self) -> bool {
        self.armed
            && self.observed.load(Ordering::Acquire)
            && (self.policy == DeadlinePolicy::Abort || self.hard_cancelled())
    }

    /// Whether the run was truncated under the `partial` policy.
    pub fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Declare a stage's total task count (idempotent per stage; the last
    /// call wins, which the sequential fallback path relies on to re-declare
    /// stages it reruns).
    pub fn stage_begin(&self, stage: StageId, total: u64) {
        let slot = &self.progress[stage as usize];
        slot[0].store(0, Ordering::Relaxed);
        slot[1].store(total, Ordering::Relaxed);
    }

    /// Record `n` completed tasks for a stage.
    #[inline]
    pub fn stage_done(&self, stage: StageId, n: u64) {
        self.progress[stage as usize][0].fetch_add(n, Ordering::Relaxed);
    }

    fn stage_progress(&self, stage: StageId) -> Option<(u64, u64)> {
        let slot = &self.progress[stage as usize];
        let total = slot[1].load(Ordering::Relaxed);
        if total == STAGE_TOTAL_UNSET {
            return None;
        }
        Some((slot[0].load(Ordering::Relaxed).min(total), total))
    }

    /// Build the typed abort error for a stage, using recorded progress to
    /// count remaining tasks. Hard cancels (external / interrupt) surface as
    /// [`DbscanError::Cancelled`] instead of a deadline error.
    pub fn deadline_error(&self, stage: StageId) -> DbscanError {
        if let Some(reason) = self.budget.reason().filter(|r| r.is_hard()) {
            return DbscanError::Cancelled {
                phase: stage.name(),
                reason,
            };
        }
        let remaining = match self.stage_progress(stage) {
            Some((done, total)) => total.saturating_sub(done),
            None => 0,
        };
        DbscanError::DeadlineExceeded {
            phase: stage.name(),
            elapsed: self.budget.elapsed(),
            remaining_tasks: remaining,
        }
    }

    /// Summarize the run for the caller / stats envelope.
    pub fn report(&self) -> DeadlineReport {
        let truncated = self.truncated.load(Ordering::Relaxed);
        let degraded_edges = self.degraded_edges.load(Ordering::Relaxed);
        let outcome = if truncated {
            DeadlineOutcome::Partial
        } else if self.degraded.load(Ordering::Relaxed) && degraded_edges > 0 {
            DeadlineOutcome::Degraded
        } else {
            DeadlineOutcome::Exact
        };
        let mut progress = [None; StageId::COUNT];
        for (i, stage) in [StageId::Labeling, StageId::EdgeTests, StageId::BorderAssign]
            .into_iter()
            .enumerate()
        {
            progress[i] = self.stage_progress(stage);
        }
        DeadlineReport {
            budget: self.budget.limit(),
            elapsed: self.budget.elapsed(),
            policy: self.policy,
            outcome,
            degrade_rho: if outcome == DeadlineOutcome::Degraded {
                Some(self.degrade_rho)
            } else {
                None
            },
            degraded_edges,
            cancel_latency_ns: self.cancel_latency_ns.load(Ordering::Relaxed),
            complete: !truncated,
            progress,
        }
    }
}

/// Summary of a budgeted run: outcome, degradation counts, measured
/// cancellation latency, and per-stage progress.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineReport {
    /// The configured budget, if any.
    pub budget: Option<Duration>,
    /// Wall-clock time the run actually took.
    pub elapsed: Duration,
    /// The configured policy.
    pub policy: DeadlinePolicy,
    /// How the run ended.
    pub outcome: DeadlineOutcome,
    /// The ρ′ used for degraded edges (present only when degraded).
    pub degrade_rho: Option<f64>,
    /// Number of edge tests answered by the approximate path.
    pub degraded_edges: u64,
    /// Observed overshoot past the budget edge at the first checkpoint that
    /// noticed the trip (0 when the budget never tripped).
    pub cancel_latency_ns: u64,
    /// `false` iff the clustering was truncated (partial policy).
    pub complete: bool,
    /// Per-stage `(done, total)` task counts, `None` for stages not begun.
    pub progress: [Option<(u64, u64)>; StageId::COUNT],
}

impl DeadlineReport {
    /// Render the `deadline` object of the `dbscan-stats/v7` envelope.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        match self.budget {
            Some(b) => s.push_str(&format!("\"budget_ns\":{}", b.as_nanos())),
            None => s.push_str("\"budget_ns\":null"),
        }
        s.push_str(&format!(",\"elapsed_ns\":{}", self.elapsed.as_nanos()));
        s.push_str(&format!(",\"policy\":\"{}\"", self.policy.name()));
        s.push_str(&format!(",\"outcome\":\"{}\"", self.outcome.name()));
        match self.degrade_rho {
            Some(r) => s.push_str(&format!(",\"degrade_rho\":{r}")),
            None => s.push_str(",\"degrade_rho\":null"),
        }
        s.push_str(&format!(",\"degraded_edges\":{}", self.degraded_edges));
        s.push_str(&format!(
            ",\"cancel_latency_ns\":{}",
            self.cancel_latency_ns
        ));
        s.push_str(&format!(",\"complete\":{}", self.complete));
        s.push_str(",\"progress\":{");
        for (i, stage) in [StageId::Labeling, StageId::EdgeTests, StageId::BorderAssign]
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":", stage.name()));
            match self.progress[i] {
                Some((done, total)) => {
                    s.push_str(&format!("{{\"done\":{done},\"total\":{total}}}"))
                }
                None => s.push_str("null"),
            }
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Display for DeadlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadline outcome {} after {:?} ({} degraded edges, cancel latency {}ns)",
            self.outcome.name(),
            self.elapsed,
            self.degraded_edges,
            self.cancel_latency_ns
        )
    }
}

const HEARTBEAT_DONE: u64 = u64::MAX;

/// Per-worker monotonic heartbeats feeding the stall watchdog.
///
/// Workers call [`Heartbeats::beat`] after each claim; a worker that exits
/// its loop calls [`Heartbeats::mark_done`] so the watchdog stops tracking
/// it. Ages are measured against a shared origin instant so a single
/// relaxed `u64` store per beat suffices.
#[derive(Debug)]
pub struct Heartbeats {
    origin: Instant,
    beats: Box<[AtomicU64]>,
}

impl Heartbeats {
    /// Heartbeat table for `workers` workers, all "just beaten" at creation.
    pub fn new(workers: usize) -> Self {
        Heartbeats {
            origin: Instant::now(),
            beats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record that worker `w` made progress just now.
    #[inline]
    pub fn beat(&self, w: usize) {
        if let Some(slot) = self.beats.get(w) {
            slot.store(
                self.origin.elapsed().as_nanos() as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Mark worker `w` as finished (the watchdog ignores it from now on).
    #[inline]
    pub fn mark_done(&self, w: usize) {
        if let Some(slot) = self.beats.get(w) {
            slot.store(HEARTBEAT_DONE, Ordering::Relaxed);
        }
    }

    /// Whether every worker has marked itself done.
    pub fn all_done(&self) -> bool {
        self.beats
            .iter()
            .all(|b| b.load(Ordering::Relaxed) == HEARTBEAT_DONE)
    }

    /// The live worker with the oldest heartbeat, and that heartbeat's age.
    /// `None` when all workers are done.
    pub fn stalest_age(&self) -> Option<(usize, Duration)> {
        let now = self.origin.elapsed().as_nanos() as u64;
        let mut stalest: Option<(usize, u64)> = None;
        for (w, slot) in self.beats.iter().enumerate() {
            let beat = slot.load(Ordering::Relaxed);
            if beat == HEARTBEAT_DONE {
                continue;
            }
            let age = now.saturating_sub(beat);
            if stalest.map(|(_, a)| age > a).unwrap_or(true) {
                stalest = Some((w, age));
            }
        }
        stalest.map(|(w, age)| (w, Duration::from_nanos(age)))
    }
}

/// Validate degrade parameters up front so a mid-run switch to the
/// approximate path cannot fail: checks `degrade_rho` against the usual ρ
/// validation and verifies every point's cell index is representable at the
/// deepest level of the `degrade_rho` Lemma 5 hierarchy (where an unchecked
/// lazy build would silently saturate). No-op unless the run may degrade.
pub(crate) fn precheck_degrade<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    ctl: &RunCtl,
) -> Result<(), DbscanError> {
    if !ctl.may_degrade() {
        return Ok(());
    }
    let rho = ctl.degrade_rho();
    validate_rho(params.eps(), rho)?;
    let leaf_side = base_side::<D>(params.eps()) / (1u64 << (hierarchy_levels(rho) - 1)) as f64;
    crate::validate::check_cell_range(points, leaf_side)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_duration_accepts_all_suffixes() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1m").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("250us").unwrap(), Duration::from_micros(250));
        assert_eq!(parse_duration("0.25s").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration(" 10ms ").unwrap(), Duration::from_millis(10));
    }

    #[test]
    fn parse_duration_rejects_bad_tokens_with_the_token_named() {
        for bad in ["10", "1.5", "abc", "-5s", "10h", ""] {
            let err = parse_duration(bad).unwrap_err();
            assert!(
                err.contains(&format!("{:?}", bad.trim())),
                "error {err:?} should name the offending token {bad:?}"
            );
        }
    }

    #[test]
    fn bare_numbers_are_rejected_with_the_suffix_list() {
        // `0.5s` and `250ms` parse; `1.5` with the unit elided must not be
        // guessed at — the message names the token and the accepted units.
        let err = parse_duration("1.5").unwrap_err();
        assert!(err.contains("\"1.5\""), "{err}");
        assert!(err.contains("unit suffix"), "{err}");
        assert!(err.contains("us, ms, s, or m"), "{err}");
    }

    #[test]
    fn interrupt_is_a_hard_cancel_under_every_policy() {
        for policy in [
            DeadlinePolicy::Abort,
            DeadlinePolicy::Degrade,
            DeadlinePolicy::Partial,
        ] {
            // No budget at all: only `cancellable` arms the checkpoints.
            let ctl = RunCtl::cancellable(&DeadlineConfig {
                policy,
                ..Default::default()
            });
            assert!(ctl.armed());
            assert!(!ctl.should_stop(), "policy {policy:?} stopped early");
            ctl.interrupt();
            assert!(ctl.should_stop(), "policy {policy:?} ignored interrupt");
            assert!(ctl.aborted(), "interrupt must abort under {policy:?}");
            match ctl.deadline_error(StageId::EdgeTests) {
                DbscanError::Cancelled { phase, reason } => {
                    assert_eq!(phase, "edge_tests");
                    assert_eq!(reason, CancelReason::Interrupted);
                }
                other => panic!("expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn hard_cancel_stops_an_already_degraded_run() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::ZERO),
            policy: DeadlinePolicy::Degrade,
            degrade_rho: 0.01,
            ..Default::default()
        });
        assert!(!ctl.should_stop(), "degrade keeps running");
        assert!(ctl.edge_degraded());
        ctl.cancel();
        assert!(ctl.should_stop(), "external cancel must stop a degraded run");
        assert!(ctl.aborted());
        assert!(matches!(
            ctl.deadline_error(StageId::EdgeTests),
            DbscanError::Cancelled {
                reason: CancelReason::External,
                ..
            }
        ));
    }

    #[test]
    fn unarmed_ctl_never_stops() {
        let ctl = RunCtl::unlimited();
        assert!(!ctl.armed());
        assert!(!ctl.should_stop());
        assert!(!ctl.should_stop_no_degrade());
        assert!(!ctl.edge_degraded());
        assert!(!ctl.aborted());
        let report = ctl.report();
        assert_eq!(report.outcome, DeadlineOutcome::Exact);
        assert!(report.complete);
    }

    #[test]
    fn zero_budget_abort_stops_and_reports_latency() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::ZERO),
            policy: DeadlinePolicy::Abort,
            ..Default::default()
        });
        ctl.stage_begin(StageId::EdgeTests, 10);
        ctl.stage_done(StageId::EdgeTests, 3);
        assert!(ctl.should_stop());
        assert!(ctl.aborted());
        let err = ctl.deadline_error(StageId::EdgeTests);
        match err {
            DbscanError::DeadlineExceeded {
                phase,
                remaining_tasks,
                ..
            } => {
                assert_eq!(phase, "edge_tests");
                assert_eq!(remaining_tasks, 7);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_degrade_keeps_running_in_degraded_mode() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::ZERO),
            policy: DeadlinePolicy::Degrade,
            degrade_rho: 0.01,
            ..Default::default()
        });
        assert!(!ctl.should_stop(), "degrade policy must not stop the run");
        assert!(ctl.edge_degraded());
        ctl.note_degraded_edge();
        ctl.note_degraded_edge();
        let report = ctl.report();
        assert_eq!(report.outcome, DeadlineOutcome::Degraded);
        assert_eq!(report.degraded_edges, 2);
        assert_eq!(report.degrade_rho, Some(0.01));
        assert!(report.complete);
    }

    #[test]
    fn zero_budget_partial_truncates() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::ZERO),
            policy: DeadlinePolicy::Partial,
            ..Default::default()
        });
        ctl.stage_begin(StageId::Labeling, 5);
        ctl.stage_done(StageId::Labeling, 2);
        assert!(ctl.should_stop());
        assert!(ctl.truncated());
        let report = ctl.report();
        assert_eq!(report.outcome, DeadlineOutcome::Partial);
        assert!(!report.complete);
        assert_eq!(report.progress[StageId::Labeling as usize], Some((2, 5)));
        assert_eq!(report.progress[StageId::EdgeTests as usize], None);
    }

    #[test]
    fn no_degrade_checkpoint_truncates_under_degrade_policy() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::ZERO),
            policy: DeadlinePolicy::Degrade,
            ..Default::default()
        });
        assert!(ctl.should_stop_no_degrade());
        assert!(ctl.truncated());
        assert_eq!(ctl.report().outcome, DeadlineOutcome::Partial);
    }

    #[test]
    fn external_cancel_trips_with_reason() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::from_secs(3600)),
            policy: DeadlinePolicy::Abort,
            ..Default::default()
        });
        assert!(!ctl.should_stop());
        ctl.cancel();
        assert!(ctl.should_stop());
        assert_eq!(ctl.budget().reason(), Some(CancelReason::External));
    }

    #[test]
    fn heartbeats_track_stalest_and_done() {
        let hb = Heartbeats::new(3);
        assert!(!hb.all_done());
        hb.beat(0);
        hb.beat(1);
        hb.beat(2);
        hb.mark_done(0);
        hb.mark_done(1);
        let (w, _age) = hb.stalest_age().expect("worker 2 is still live");
        assert_eq!(w, 2);
        hb.mark_done(2);
        assert!(hb.all_done());
        assert!(hb.stalest_age().is_none());
    }

    #[test]
    fn report_json_shape() {
        let ctl = RunCtl::new(&DeadlineConfig {
            budget: Some(Duration::from_millis(5)),
            policy: DeadlinePolicy::Degrade,
            degrade_rho: 0.5,
            ..Default::default()
        });
        ctl.stage_begin(StageId::EdgeTests, 4);
        ctl.stage_done(StageId::EdgeTests, 4);
        let json = ctl.report().to_json();
        assert!(json.contains("\"budget_ns\":5000000"), "{json}");
        assert!(json.contains("\"policy\":\"degrade\""), "{json}");
        assert!(json.contains("\"outcome\":\"exact\""), "{json}");
        assert!(
            json.contains("\"edge_tests\":{\"done\":4,\"total\":4}"),
            "{json}"
        );
        assert!(json.contains("\"labeling\":null"), "{json}");
    }
}
