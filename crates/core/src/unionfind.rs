//! Disjoint-set union (union-find): the sequential structure with path
//! halving and union by size, and a lock-free concurrent variant.
//!
//! [`UnionFind`] computes the connected components of the core-cell graph `G`
//! (Sections 2.2 / 3.2 / 4.4) and the cross-partition merge of the CIT08
//! baseline. Near-constant amortized time per operation.
//!
//! [`ConcurrentUnionFind`] is the shared-memory variant the parallel edge
//! phase unions into *while* edge tests are still running, so workers can
//! consult live connectivity and skip candidate pairs another worker already
//! joined — the short-circuit the old collect-then-union parallel design had
//! to give up. It follows the CAS-based design of Wang, Gu & Shun
//! ("Theoretically-Efficient and Practical Parallel DBSCAN", SIGMOD 2020):
//! `AtomicU32` parent pointers, union by index (the higher-id root is linked
//! under the lower-id one, so every link strictly decreases the linked root's
//! representative and the structure is trivially acyclic), and best-effort
//! CAS path halving during finds.

use std::sync::atomic::{AtomicU32, Ordering};

/// A disjoint-set forest over `0..len`.
pub struct UnionFind {
    /// Parent pointer per element; roots point to themselves.
    parent: Vec<u32>,
    /// Subtree size, meaningful at roots only.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Adopts a parent forest (e.g. a [`ConcurrentUnionFind`] snapshot),
    /// recomputing component count and sizes. The forest must be acyclic with
    /// roots pointing to themselves — true of any parent array produced by
    /// this module.
    pub fn from_parents(parent: Vec<u32>) -> Self {
        let n = parent.len();
        let mut uf = UnionFind {
            parent,
            size: vec![0; n],
            components: 0,
        };
        for x in 0..n as u32 {
            let r = uf.find(x);
            uf.size[r as usize] += 1;
            if r == x {
                uf.components += 1;
            }
        }
        uf
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every element to a compact component id in `0..k` (in order of first
    /// appearance by element index) and returns `(ids, k)`.
    pub fn compact_labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label_of_root[r as usize] == u32::MAX {
                label_of_root[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = label_of_root[r as usize];
        }
        (labels, next as usize)
    }
}

/// A lock-free disjoint-set forest shareable across threads.
///
/// Supports concurrent [`union`](ConcurrentUnionFind::union) and
/// [`same`](ConcurrentUnionFind::same) with no locks: linking CASes a root's
/// parent pointer (so only a current root is ever linked), and finds apply
/// best-effort CAS path halving. Union is by index — the higher-id root goes
/// under the lower-id one — which makes the final forest's component
/// partition (though not its exact shape) independent of thread timing: the
/// representative of every set is its minimum element.
///
/// `same` is *advisory under concurrency*: `true` is definitive (both
/// arguments reached a common node, so they are connected), while `false`
/// may be stale if another thread linked the two sets mid-query. The parallel
/// edge phase only uses a `true` to skip work that cannot change the
/// components, so a stale `false` merely costs a redundant (idempotent) edge
/// test.
pub struct ConcurrentUnionFind {
    /// Parent pointer per element; roots point to themselves.
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// A current root of `x`'s set, with best-effort CAS path halving.
    ///
    /// The returned node was a root at some instant during the call and is
    /// connected to `x`; a concurrent union may have linked it onward by the
    /// time the caller looks at it.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path halving: point x at its grandparent. Losing the race just
            // means someone else already compressed (or re-linked) — either
            // way the chain above `gp` is strictly shorter.
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::Release,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Whether `a` and `b` are known to be in the same set. `true` is
    /// definitive; `false` may be stale under concurrent unions (see the
    /// type docs).
    pub fn same(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets of `a` and `b`; returns `true` if this call performed
    /// the link. Each CAS that loses to a concurrent link increments
    /// `retries` (surfaced as [`Counter::UfCasRetries`]).
    ///
    /// [`Counter::UfCasRetries`]: crate::stats::Counter::UfCasRetries
    pub fn union(&self, a: u32, b: u32, retries: &mut u64) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Union by index: link the higher-id root under the lower-id one.
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(current) => {
                    // `hi` stopped being a root: someone linked it first.
                    // Restart from its new parent; every retry strictly
                    // lowers max(ra, rb), so the loop terminates.
                    *retries += 1;
                    ra = self.find(current);
                    rb = self.find(lo);
                }
            }
        }
    }

    /// Consumes the structure into its parent array (for
    /// [`UnionFind::from_parents`] once all workers have quiesced).
    pub fn into_parents(self) -> Vec<u32> {
        self.parent.into_iter().map(AtomicU32::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.num_components(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn compact_labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 4);
        uf.union(1, 5);
        uf.union(5, 2);
        let (labels, k) = uf.compact_labels();
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        // Labels are dense 0..k and first-appearance ordered.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[3], 2);
    }

    #[test]
    fn chain_unions_collapse_to_one() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }

    #[test]
    fn empty_union_find() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        let (labels, k) = uf.compact_labels();
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn concurrent_single_thread_semantics() {
        let cuf = ConcurrentUnionFind::new(5);
        assert_eq!(cuf.len(), 5);
        assert!(!cuf.is_empty());
        let mut retries = 0;
        assert!(cuf.union(0, 1, &mut retries));
        assert!(cuf.union(2, 3, &mut retries));
        assert!(!cuf.union(1, 0, &mut retries), "already merged");
        assert!(cuf.same(0, 1));
        assert!(!cuf.same(0, 2));
        assert!(cuf.union(1, 3, &mut retries));
        assert!(cuf.same(0, 2));
        assert_eq!(retries, 0, "uncontended unions never retry");
        // Union by index: every set's representative is its minimum element.
        assert_eq!(cuf.find(3), 0);
        assert_eq!(cuf.find(4), 4);
    }

    #[test]
    fn concurrent_snapshot_round_trips_through_sequential() {
        let cuf = ConcurrentUnionFind::new(6);
        let mut retries = 0;
        cuf.union(0, 4, &mut retries);
        cuf.union(1, 5, &mut retries);
        cuf.union(5, 2, &mut retries);
        let mut uf = UnionFind::from_parents(cuf.into_parents());
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.len(), 6);
        let (labels, k) = uf.compact_labels();
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
        assert_eq!(labels[3], 2);
    }

    #[test]
    fn from_parents_empty() {
        let uf = UnionFind::from_parents(Vec::new());
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }

    #[test]
    fn concurrent_chain_across_threads_collapses_to_one() {
        let n = 4_000u32;
        let cuf = ConcurrentUnionFind::new(n as usize);
        // Four threads racing on an interleaved chain: heavy CAS contention
        // near the shared low-id roots.
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let cuf = &cuf;
                s.spawn(move || {
                    let mut retries = 0;
                    for i in (w..n - 1).step_by(4) {
                        cuf.union(i, i + 1, &mut retries);
                    }
                });
            }
        });
        let mut uf = UnionFind::from_parents(cuf.into_parents());
        assert_eq!(uf.num_components(), 1);
        assert!(uf.same(0, n - 1));
    }
}
