//! Disjoint-set union (union-find) with path halving and union by size.
//!
//! Used to compute the connected components of the core-cell graph `G`
//! (Sections 2.2 / 3.2 / 4.4) and the cross-partition merge of the CIT08
//! baseline. Near-constant amortized time per operation.

/// A disjoint-set forest over `0..len`.
pub struct UnionFind {
    /// Parent pointer per element; roots point to themselves.
    parent: Vec<u32>,
    /// Subtree size, meaningful at roots only.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every element to a compact component id in `0..k` (in order of first
    /// appearance by element index) and returns `(ids, k)`.
    pub fn compact_labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label_of_root[r as usize] == u32::MAX {
                label_of_root[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = label_of_root[r as usize];
        }
        (labels, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.num_components(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn compact_labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 4);
        uf.union(1, 5);
        uf.union(5, 2);
        let (labels, k) = uf.compact_labels();
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        // Labels are dense 0..k and first-appearance ordered.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[3], 2);
    }

    #[test]
    fn chain_unions_collapse_to_one() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }

    #[test]
    fn empty_union_find() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        let (labels, k) = uf.compact_labels();
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }
}
