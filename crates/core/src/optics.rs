//! OPTICS (Ankerst, Breunig, Kriegel, Sander — SIGMOD'99), the paper's
//! reference point for ε selection.
//!
//! *DBSCAN Revisited* leans on OPTICS twice: Section 4.2 cites it for the
//! observation that "different ε values allow us to view the dataset from
//! various granularities" (the Figure 6 stability discussion), and the
//! sandwich theorem is exactly a statement about two nearby granularities.
//! OPTICS materializes the whole granularity spectrum at once: a walk order of
//! the points together with *reachability distances*, from which the DBSCAN
//! clustering at any ε′ ≤ ε can be read off with one linear scan.
//!
//! Implementation: the standard priority-queue expansion over a kd-tree for
//! the ε-range queries; O(n²) worst case like any OPTICS.

use crate::types::DbscanParams;
use crate::validate::check_points;
use dbscan_geom::Point;
use dbscan_index::KdTree;
use std::collections::BinaryHeap;

/// One entry of the OPTICS ordering.
#[derive(Clone, Copy, Debug)]
pub struct OpticsEntry {
    /// The point's index in the input slice.
    pub point: u32,
    /// Reachability distance when the point was reached (`INFINITY` for the
    /// first point of each connected region).
    pub reachability: f64,
    /// Core distance (distance to the MinPts-th neighbor), `INFINITY` if the
    /// point is not core at the generating ε.
    pub core_dist: f64,
}

/// The OPTICS output: a permutation of the points with reachability structure.
#[derive(Clone, Debug)]
pub struct OpticsOrdering {
    pub entries: Vec<OpticsEntry>,
    pub params: DbscanParams,
}

/// Max-heap entry flipped into a min-heap by reversing the comparison.
struct QueueEntry {
    reachability: f64,
    point: u32,
}
impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.reachability == other.reachability && self.point == other.point
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on index for determinism.
        other
            .reachability
            .total_cmp(&self.reachability)
            .then(other.point.cmp(&self.point))
    }
}

/// Runs OPTICS with generating radius `params.eps()` and density threshold
/// `params.min_pts()`.
pub fn optics<const D: usize>(points: &[Point<D>], params: DbscanParams) -> OpticsOrdering {
    check_points(points);
    let n = points.len();
    let eps = params.eps();
    let min_pts = params.min_pts();
    let tree = KdTree::build(points);

    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut entries = Vec::with_capacity(n);
    let mut neighbors: Vec<(u32, f64)> = Vec::new();

    let core_dist = |neighbors: &[(u32, f64)]| -> f64 {
        if neighbors.len() < min_pts {
            f64::INFINITY
        } else {
            // MinPts-th smallest distance (the point itself is included, as in
            // Definition 1's closed ball that counts p).
            let mut dists: Vec<f64> = neighbors.iter().map(|&(_, d)| d).collect();
            let (_, kth, _) = dists.select_nth_unstable_by(min_pts - 1, f64::total_cmp);
            kth.sqrt()
        }
    };

    for start in 0..n as u32 {
        if processed[start as usize] {
            continue;
        }
        // Seed a new region with the unprocessed point.
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        heap.push(QueueEntry {
            reachability: f64::INFINITY,
            point: start,
        });
        while let Some(QueueEntry {
            reachability,
            point,
        }) = heap.pop()
        {
            if processed[point as usize] {
                continue; // stale queue entry
            }
            processed[point as usize] = true;

            neighbors.clear();
            tree.for_each_within(&points[point as usize], eps, |id, d| {
                neighbors.push((id, d));
                true
            });
            let cd = core_dist(&neighbors);
            entries.push(OpticsEntry {
                point,
                reachability,
                core_dist: cd,
            });
            if !cd.is_finite() {
                continue; // non-core points do not expand
            }
            for &(q, d_sq) in &neighbors {
                if processed[q as usize] {
                    continue;
                }
                let new_reach = cd.max(d_sq.sqrt());
                if new_reach < reach[q as usize] {
                    reach[q as usize] = new_reach;
                    heap.push(QueueEntry {
                        reachability: new_reach,
                        point: q,
                    });
                }
            }
        }
    }
    OpticsOrdering { entries, params }
}

impl OpticsOrdering {
    /// Extracts the DBSCAN-style flat clustering at radius `eps_prime ≤ ε`
    /// (the classic `ExtractDBSCAN` of the OPTICS paper): returns one label
    /// per input point, `None` for noise.
    ///
    /// Cluster membership of *core* points matches exact DBSCAN at
    /// `(eps_prime, MinPts)`; border points are attached to the single cluster
    /// the walk reached them from (OPTICS, unlike Definition 3, does not
    /// multi-assign).
    pub fn extract_clusters(&self, eps_prime: f64) -> (Vec<Option<u32>>, usize) {
        assert!(
            eps_prime <= self.params.eps() * (1.0 + 1e-12),
            "can only extract at radii up to the generating eps"
        );
        let n = self.entries.len();
        let mut labels: Vec<Option<u32>> = vec![None; n];
        let mut current: Option<u32> = None;
        let mut next_label = 0u32;
        for e in &self.entries {
            if e.reachability > eps_prime {
                if e.core_dist <= eps_prime {
                    // Starts a new cluster.
                    current = Some(next_label);
                    next_label += 1;
                    labels[e.point as usize] = current;
                } else {
                    labels[e.point as usize] = None; // noise
                    current = None;
                }
            } else {
                labels[e.point as usize] = current;
            }
        }
        (labels, next_label as usize)
    }

    /// The reachability plot: `(point, reachability)` in walk order — valleys
    /// are clusters, peaks are separations. For plotting and ε selection.
    pub fn reachability_plot(&self) -> Vec<(u32, f64)> {
        self.entries
            .iter()
            .map(|e| (e.point, e.reachability))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::grid_exact;
    use crate::types::Assignment;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn blobs() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for b in 0..3 {
            let bx = b as f64 * 20.0;
            for i in 0..25 {
                pts.push(p2(bx + (i % 5) as f64 * 0.4, (i / 5) as f64 * 0.4));
            }
        }
        pts.push(p2(100.0, 100.0)); // noise
        pts
    }

    #[test]
    fn ordering_is_a_permutation() {
        let pts = blobs();
        let o = optics(&pts, params(2.0, 4));
        assert_eq!(o.entries.len(), pts.len());
        let mut seen: Vec<u32> = o.entries.iter().map(|e| e.point).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pts.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn extraction_matches_dbscan_cluster_count_at_multiple_radii() {
        let pts = blobs();
        let o = optics(&pts, params(25.0, 4));
        for eps_prime in [1.0, 2.0, 19.0, 21.0] {
            let (labels, k) = o.extract_clusters(eps_prime);
            let exact = grid_exact(&pts, params(eps_prime, 4));
            assert_eq!(k, exact.num_clusters, "eps'={eps_prime}");
            // Core points agree exactly on co-membership.
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    if let (Assignment::Core(a), Assignment::Core(b)) =
                        (&exact.assignments[i], &exact.assignments[j])
                    {
                        assert_eq!(
                            a == b,
                            labels[i] == labels[j],
                            "core co-membership differs at eps'={eps_prime} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn noise_stays_noise() {
        let pts = blobs();
        let o = optics(&pts, params(2.0, 4));
        let (labels, _) = o.extract_clusters(2.0);
        assert_eq!(labels[pts.len() - 1], None);
    }

    #[test]
    fn reachability_valleys_match_cluster_count() {
        // 3 blobs => the plot has 3 infinite/huge peaks (region starts).
        let pts = blobs();
        let o = optics(&pts, params(2.0, 4));
        let peaks = o
            .reachability_plot()
            .iter()
            .filter(|&&(_, r)| r > 2.0)
            .count();
        // 3 region starts + 1 noise point.
        assert_eq!(peaks, 4);
    }

    #[test]
    fn extraction_beyond_generating_eps_panics() {
        let pts = blobs();
        let o = optics(&pts, params(2.0, 4));
        let result = std::panic::catch_unwind(|| o.extract_clusters(3.0));
        assert!(result.is_err());
    }

    #[test]
    fn empty_and_single_point() {
        let o = optics::<2>(&[], params(1.0, 2));
        assert!(o.entries.is_empty());
        let o1 = optics(&[p2(0.0, 0.0)], params(1.0, 1));
        assert_eq!(o1.entries.len(), 1);
        let (labels, k) = o1.extract_clusters(1.0);
        assert_eq!(k, 1);
        assert_eq!(labels[0], Some(0));
    }
}
