//! Core-point labeling on the side-`ε/√d` grid (the "labeling process" of
//! Section 2.2, which carries over verbatim to d ≥ 3 in Section 3.2).

use crate::deadline::{RunCtl, StageId};
use crate::stats::{Counter, StatsSink};
use crate::types::DbscanParams;
use dbscan_geom::Point;
use dbscan_index::GridIndex;

/// Decides for every point whether it is a core point (Definition 1:
/// `|B(p, ε) ∩ P| ≥ MinPts`, counting `p` itself).
///
/// Cells holding at least `MinPts` points are all-core without any distance
/// computation (every same-cell pair is within ε by the grid's construction).
/// Points in sparser cells count their ε-ball by scanning the O(1) ε-neighbor
/// cells with an early stop at `MinPts`, which is what bounds the whole pass by
/// O(MinPts · n) expected time.
pub fn label_core_points<const D: usize>(
    points: &[Point<D>],
    grid: &GridIndex<D>,
    params: DbscanParams,
) -> Vec<bool> {
    let min_pts = params.min_pts();
    let mut is_core = vec![false; points.len()];
    for ci in 0..grid.num_cells() as u32 {
        let ids = grid.points_of(ci);
        if ids.len() >= min_pts {
            for &p in ids {
                is_core[p as usize] = true;
            }
        } else {
            for &p in ids {
                is_core[p as usize] = grid.count_within_eps(points, p, min_pts) >= min_pts;
            }
        }
    }
    is_core
}

/// Instrumented twin of [`label_core_points`]: additionally records
/// [`Counter::GridPointsExamined`] — the number of explicit distance
/// computations the neighborhood scans performed (the dense-cell shortcut and
/// the same-cell guarantee are free and not counted). Delegates to the
/// uncounted path when the sink is disabled, so [`crate::NoStats`] callers run
/// the exact pre-existing code.
pub fn label_core_points_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    grid: &GridIndex<D>,
    params: DbscanParams,
    stats: &S,
) -> Vec<bool> {
    if !S::ENABLED {
        return label_core_points(points, grid, params);
    }
    let min_pts = params.min_pts();
    let mut is_core = vec![false; points.len()];
    let mut examined = 0u64;
    let mut kernel_calls = 0u64;
    for ci in 0..grid.num_cells() as u32 {
        let ids = grid.points_of(ci);
        if ids.len() >= min_pts {
            for &p in ids {
                is_core[p as usize] = true;
            }
        } else {
            for &p in ids {
                is_core[p as usize] =
                    grid.count_within_eps_counted(points, p, min_pts, &mut examined) >= min_pts;
                kernel_calls += 1;
            }
        }
    }
    stats.add(Counter::GridPointsExamined, examined);
    stats.add(Counter::BlockKernelCalls, kernel_calls);
    is_core
}

/// Deadline-aware twin of [`label_core_points_instrumented`]: checkpoints the
/// run's budget once per cell and stops early under a truncating policy.
/// Labeling has no approximate fallback, so `degrade` continues exact here
/// (the switch only affects the edge phase); only `partial`/`abort` stop the
/// scan. Every verdict already written is final — a cell is either fully
/// labeled or untouched (`false` = treated as non-core), which is what makes
/// a truncated labeling a subset-consistent prefix. Delegates to the
/// existing paths when the control block is unarmed.
pub fn label_core_points_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    grid: &GridIndex<D>,
    params: DbscanParams,
    stats: &S,
    ctl: &RunCtl,
) -> Vec<bool> {
    if !ctl.armed() {
        return label_core_points_instrumented(points, grid, params, stats);
    }
    ctl.stage_begin(StageId::Labeling, grid.num_cells() as u64);
    let min_pts = params.min_pts();
    let mut is_core = vec![false; points.len()];
    let mut examined = 0u64;
    let mut kernel_calls = 0u64;
    for ci in 0..grid.num_cells() as u32 {
        if ctl.should_stop() {
            break;
        }
        let ids = grid.points_of(ci);
        if ids.len() >= min_pts {
            for &p in ids {
                is_core[p as usize] = true;
            }
        } else {
            for &p in ids {
                is_core[p as usize] =
                    grid.count_within_eps_counted(points, p, min_pts, &mut examined) >= min_pts;
                kernel_calls += 1;
            }
        }
        ctl.stage_done(StageId::Labeling, 1);
    }
    if S::ENABLED {
        stats.add(Counter::GridPointsExamined, examined);
        stats.add(Counter::BlockKernelCalls, kernel_calls);
    }
    is_core
}

/// Reference labeling by brute force — O(n²), used by tests and available for
/// validation of the grid path on small inputs.
pub fn label_core_points_brute<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
) -> Vec<bool> {
    let eps_sq = params.eps() * params.eps();
    points
        .iter()
        .map(|p| {
            points
                .iter()
                .filter(|q| p.dist_sq(q) <= eps_sq)
                .take(params.min_pts())
                .count()
                >= params.min_pts()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    /// The paper's Figure 2 example: two circles of radius ε, MinPts = 4.
    /// We reconstruct a configuration with the same qualitative structure.
    #[test]
    fn dense_cell_marks_all_core() {
        // Five coincident points with MinPts 4: all core without neighbor scans.
        let pts = vec![p2(1.0, 1.0); 5];
        let grid = GridIndex::build(&pts, 1.0);
        let labels = label_core_points(&pts, &grid, params(1.0, 4));
        assert!(labels.iter().all(|&c| c));
    }

    #[test]
    fn isolated_point_is_not_core() {
        let pts = vec![p2(0.0, 0.0), p2(100.0, 100.0)];
        let grid = GridIndex::build(&pts, 1.0);
        let labels = label_core_points(&pts, &grid, params(1.0, 2));
        assert_eq!(labels, vec![false, false]);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let pts = vec![p2(0.0, 0.0), p2(50.0, 0.0), p2(0.0, 50.0)];
        let grid = GridIndex::build(&pts, 1.0);
        let labels = label_core_points(&pts, &grid, params(1.0, 1));
        assert!(labels.iter().all(|&c| c));
    }

    #[test]
    fn boundary_distance_counts() {
        // Exactly MinPts = 2 points at distance exactly eps: both core
        // (closed ball).
        let pts = vec![p2(0.0, 0.0), p2(3.0, 4.0)];
        let grid = GridIndex::build(&pts, 5.0);
        let labels = label_core_points(&pts, &grid, params(5.0, 2));
        assert_eq!(labels, vec![true, true]);
    }

    #[test]
    fn grid_matches_brute_force_on_random_points() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 30.0
        };
        let pts: Vec<_> = (0..400).map(|_| p2(next(), next())).collect();
        for (eps, min_pts) in [(1.0, 3), (2.5, 5), (0.3, 2), (10.0, 50)] {
            let p = params(eps, min_pts);
            let grid = GridIndex::build(&pts, eps);
            assert_eq!(
                label_core_points(&pts, &grid, p),
                label_core_points_brute(&pts, p),
                "eps={eps} min_pts={min_pts}"
            );
        }
    }
}
