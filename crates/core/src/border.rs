//! Border-point assignment (Section 2.2, "Assigning Border Points").
//!
//! A non-core point `q` joins the cluster of every core point within distance ε.
//! Candidate core points can only live in `q`'s own cell or its ε-neighbor cells.
//! Two optimizations keep this cheap without changing the result:
//!
//! * all core points of one cell share a cluster (any two same-cell points are
//!   within ε, so same-cell core points are directly density-reachable), so a
//!   cell whose cluster is already collected is skipped outright;
//! * within a cell, scanning stops at the first core point within ε.

use crate::cells::CoreCells;
use dbscan_geom::kernels::any_within_block;
use dbscan_geom::Point;

/// Returns the sorted, deduplicated list of cluster ids owning a core point
/// within ε of the non-core point `q`. Empty means `q` is noise.
pub fn assign_border_clusters<const D: usize>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    component_of_rank: &[u32],
    q: u32,
) -> Vec<u32> {
    let eps_sq = cc.params.eps() * cc.params.eps();
    let q_pt = &points[q as usize];
    let own_cell = cc.grid.cell_of_point(q);

    let mut clusters: Vec<u32> = Vec::new();
    let consider = |cell: u32, clusters: &mut Vec<u32>| {
        let rank = cc.rank_of_cell[cell as usize];
        if rank == u32::MAX {
            return; // no core points in this cell
        }
        let cluster = component_of_rank[rank as usize];
        if clusters.contains(&cluster) {
            return; // this cluster is already attested
        }
        // Blocked scan over the cell's gathered core-point lanes — same
        // ∃-within-ε answer as the scalar id walk (identical accumulation
        // order; see `dbscan_geom::kernels`), early-exiting between blocks.
        if any_within_block(q_pt, &cc.core_block(rank as usize), eps_sq) {
            clusters.push(cluster);
        }
    };

    consider(own_cell, &mut clusters);
    for &nb in cc.grid.neighbors_of(own_cell) {
        consider(nb, &mut clusters);
    }
    clusters.sort_unstable();
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{connect_core_cells, CoreCells};
    use crate::types::DbscanParams;
    use dbscan_geom::point::p2;

    /// Rebuild the paper's Figure 2 topology: border point o10 belongs to two
    /// clusters at once.
    #[test]
    fn border_point_in_two_clusters() {
        // Left cluster: 4 points within ε of each other around (0, 0).
        // Right cluster: 4 points around (2.6, 0).
        // Bridge q at (1.3, 0): within ε=1.4 of exactly one core point on each
        // side, so its own ball holds 3 points (< MinPts 4) → border of both.
        let pts = vec![
            p2(0.0, 0.0),
            p2(-0.5, 0.0),
            p2(-0.2, 0.5),
            p2(-0.3, -0.4),
            p2(2.6, 0.0),
            p2(3.1, 0.0),
            p2(2.8, 0.5),
            p2(2.9, -0.4),
            p2(1.3, 0.0), // q
        ];
        let params = DbscanParams::new(1.4, 4).unwrap();
        let cc = CoreCells::build(&pts, params);
        assert!(!cc.is_core[8], "bridge point must not be core");
        let mut uf = connect_core_cells(&cc, |r1, r2| {
            crate::bcp::within_threshold_brute(
                &pts,
                &cc.core_points_of[r1],
                &cc.core_points_of[r2],
                params.eps(),
            )
        });
        let (labels, k) = uf.compact_labels();
        assert_eq!(k, 2, "two clusters expected");
        let clusters = assign_border_clusters(&pts, &cc, &labels, 8);
        assert_eq!(
            clusters.len(),
            2,
            "o10-style point belongs to both clusters"
        );
    }

    #[test]
    fn faraway_point_gets_no_clusters() {
        let pts = vec![p2(0.0, 0.0), p2(0.1, 0.0), p2(0.2, 0.0), p2(9.0, 9.0)];
        let params = DbscanParams::new(0.5, 3).unwrap();
        let cc = CoreCells::build(&pts, params);
        let mut uf = connect_core_cells(&cc, |_, _| true);
        let (labels, _) = uf.compact_labels();
        assert!(assign_border_clusters(&pts, &cc, &labels, 3).is_empty());
    }

    #[test]
    fn border_at_exact_eps_is_assigned() {
        // Core point at the origin with its other neighbors on the far side, so
        // that q = (3,4) sits at distance exactly 5 = ε from the core point but
        // has only 2 points in its own ball (< MinPts 4) → border, not core.
        let pts = vec![p2(0.0, 0.0), p2(-0.1, 0.0), p2(0.0, -0.1), p2(3.0, 4.0)];
        let params = DbscanParams::new(5.0, 4).unwrap();
        let cc = CoreCells::build(&pts, params);
        assert!(cc.is_core[0], "origin must be core (closed ball counts q)");
        assert!(!cc.is_core[3], "q must not be core");
        let mut uf = connect_core_cells(&cc, |_, _| true);
        let (labels, _) = uf.compact_labels();
        let clusters = assign_border_clusters(&pts, &cc, &labels, 3);
        assert_eq!(clusters.len(), 1, "exact-ε border point must be assigned");
    }
}
