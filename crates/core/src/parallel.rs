//! Multi-threaded variants of the paper's two grid algorithms.
//!
//! The paper's algorithms decompose into per-cell work (labeling, per-cell
//! structures, border assignment) and per-pair work (the ε-neighbor edge
//! tests of the core-cell graph `G`). Both are parallelized here over a
//! [`WorkQueue`] — a std-only self-scheduling task list, heaviest task first
//! (see [`crate::scheduler`]) — instead of the static contiguous chunking of
//! the earlier design, which load-imbalanced badly on skewed cell
//! populations.
//!
//! The edge phase is *fused*: one barrier-free stage performs lazy per-cell
//! structure builds (kd-trees / Lemma 5 counters, each built at most once via
//! [`OnceLock`] by whichever worker first needs it), the pair tests, and the
//! unions — into a lock-free [`ConcurrentUnionFind`]. Because unions land in
//! a structure every worker can read *live*, workers skip candidate pairs
//! whose cells another worker already joined, exactly like the sequential
//! path's `uf.same` short-circuit. [`Counter::EdgeTestsSkipped`] is therefore
//! nonzero in parallel runs again (its exact value is timing-dependent; the
//! evaluated-pair set it leaves behind always yields the same components).
//! An earlier design collected edges per chunk behind a barrier and unioned
//! them sequentially, and had to give that short-circuit up.
//!
//! Results are bit-identical to the sequential versions: the edge predicates
//! are deterministic, a skipped pair is by definition already connected (a
//! `same() == true` answer is definitive even mid-race), union by index makes
//! the final partition independent of thread timing, and
//! [`UnionFind::compact_labels`] assigns cluster ids by first appearance over
//! ranks, independent of forest shape.
//!
//! # Worker pool
//!
//! All three phases (labeling, the fused edge stage, border assignment) run
//! on a persistent [`WorkerPool`]: workers are spawned once — lazily through
//! the process-wide [`WorkerPool::global`] cache, or explicitly via
//! [`ParConfig::pool`] for callers that manage their own handle — and parked
//! on a condvar between phases. Successive phases are handed to the same
//! workers through the pool's epoch protocol; the per-phase [`WorkQueue`],
//! [`Heartbeats`], [`Poison`] latch, and [`RunCtl`] checkpoints all rebind
//! per phase exactly as they did when each phase spawned its own
//! `std::thread::scope`. (The earlier scoped design respawned `threads`
//! workers up to six times per clustering run; at n=20k that spawn overhead
//! alone exceeded the useful edge work by two orders of magnitude.)
//!
//! The `*_instrumented` entry points share one [`StatsSink`] across all
//! worker threads (its counters are relaxed atomics); workers accumulate
//! counts in locals and flush once per phase. Phase times are wall-clock
//! spans measured on the coordinating thread. The fused edge stage's span is
//! split three ways, mirroring the sequential connect loop: nanoseconds the
//! workers spent in lazy `OnceLock` structure builds go to
//! [`Phase::StructureBuild`], nanoseconds spent in `cuf.union` go to
//! [`Phase::UnionFind`], and the remainder is [`Phase::EdgeTests`]. The
//! build/union figures are *summed per-worker* time, so with more than one
//! worker they are attribution shares rather than exclusive wall-clock spans;
//! both are capped at the stage span so the disjoint-phases invariant (the
//! named phases never sum past [`Phase::Total`]) holds on any core count.
//!
//! # Fault isolation
//!
//! Every task a worker claims runs under [`std::panic::catch_unwind`]. A
//! panicking task poisons the run through a shared [`Poison`] latch: the
//! panicking worker records the first panic's task id and payload and stops;
//! the remaining workers observe the latch before their next claim and drain
//! cooperatively (no abort, no hang, no half-written output — stage results
//! are discarded wholesale on poison). The driver then surfaces
//! [`DbscanError::WorkerPanicked`] — or, under
//! [`RecoveryPolicy::FallbackSequential`], transparently re-runs the
//! sequential algorithm, which shares no state with the poisoned attempt and
//! therefore produces the exact sequential result. Both events are visible in
//! the stats report ([`Counter::WorkerPanics`],
//! [`Counter::SequentialFallbacks`]).
//!
//! The deterministic chaos hooks ([`FaultPlan`]) are compiled to no-ops
//! unless the `fault-injection` feature is on.
//!
//! # Deadlines and stalls
//!
//! Every stage is additionally a cooperative cancellation point: workers
//! consult the run's [`RunCtl`] before each claim, so a tripped time budget
//! stops the whole fleet within one task's worth of work (the queue is
//! closed by the first observer, which bounds how much the others can still
//! claim). Under [`DeadlinePolicy::Degrade`](crate::deadline::DeadlinePolicy)
//! the edge stage instead switches the remaining pair tests to the Lemma 5
//! approximate counters (see [`crate::deadline`] for why the mixed result is
//! still a legal ρ′-approximate clustering). A coordinator-side stall
//! watchdog — armed by [`DeadlineConfig::stall_timeout`] — watches per-worker
//! [`Heartbeats`]; a worker that stops beating past the threshold emits a
//! `stall` trace instant and poisons the run through the same latch a panic
//! uses, so stalls escalate to the existing [`RecoveryPolicy`] machinery.

use crate::algorithms::BcpStrategy;
use crate::bcp;
use crate::border::assign_border_clusters;
use crate::cells::{assemble_clustering_ctl, CoreCells};
use crate::deadline::{
    precheck_degrade, DeadlineConfig, DeadlineReport, Heartbeats, RunCtl, StageId,
};
use crate::error::{validate_rho, DbscanError, RecoveryPolicy, ResourceLimits};
use crate::faults::{FaultPlan, FaultSite};
use crate::labeling::label_core_points_ctl;
use crate::scheduler::{Poison, WorkQueue, WorkerPool};
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::trace::{hist::HistKind, EventName};
use crate::types::{Assignment, Clustering, DbscanParams};
use crate::unionfind::{ConcurrentUnionFind, UnionFind};
use dbscan_geom::grid::{base_side, hierarchy_levels};
use dbscan_geom::Point;
use dbscan_index::{ApproxRangeCounter, GridIndex, KdTree};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Configuration for the fallible `try_*_par` entry points: worker count,
/// what to do when a worker panics, resource budgets, and the (test-only)
/// fault-injection plan.
#[derive(Clone, Debug, Default)]
pub struct ParConfig {
    /// Worker threads; `None` defers to [`resolve_threads`].
    pub threads: Option<usize>,
    /// What to do when a worker panics mid-run.
    pub recovery: RecoveryPolicy,
    /// Resource budgets enforced before index builds.
    pub limits: ResourceLimits,
    /// Deterministic fault plan; a no-op unless the `fault-injection`
    /// feature is enabled.
    pub faults: FaultPlan,
    /// Time budget, expiry policy, and stall watchdog threshold.
    pub deadline: DeadlineConfig,
    /// Worker pool to run on. `None` (the default) shares the lazily-spawned
    /// process-wide [`WorkerPool::global`] pool for the resolved thread
    /// count; a caller that manages its own pool lifetime (e.g. a service
    /// tier pinning one pool across requests) passes a handle here, and its
    /// thread count overrides [`ParConfig::threads`].
    pub pool: Option<Arc<WorkerPool>>,
}

impl ParConfig {
    /// A config that only sets the worker count, like the infallible entry
    /// points' `threads` argument.
    pub fn with_threads(threads: Option<usize>) -> Self {
        ParConfig {
            threads,
            ..ParConfig::default()
        }
    }
}

/// Environment variable consulted when no explicit thread count is given.
/// Same convention as the resolved value: a positive integer is the worker
/// count, `0` means all available cores.
pub const THREADS_ENV: &str = "DBSCAN_THREADS";

/// Number of worker threads for the `*_par` entry points.
///
/// Resolution order: explicit `threads` argument, then the [`THREADS_ENV`]
/// environment variable, then all available cores. `Some(0)` (or an env value
/// of `0`) also means all available cores. An env value that does not parse
/// as an integer is ignored here — front ends (the CLI) are expected to
/// validate it and reject with a diagnostic before calling in.
pub fn resolve_threads(threads: Option<usize>) -> usize {
    let requested = threads.or_else(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    });
    match requested {
        // `available_parallelism` walks cgroup files on Linux — tens of
        // microseconds per call, which a pooled run pays on *every* launch.
        // The count is stable for the process lifetime, so resolve it once.
        None | Some(0) => *ALL_CORES
            .get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        Some(t) => t,
    }
}

static ALL_CORES: OnceLock<usize> = OnceLock::new();

/// The pool a run executes on: an explicit [`ParConfig::pool`] handle wins
/// (its thread count is authoritative); otherwise the process-wide shared
/// pool for the [`resolve_threads`] count.
fn resolve_pool(config: &ParConfig) -> Arc<WorkerPool> {
    config
        .pool
        .clone()
        .unwrap_or_else(|| WorkerPool::global(resolve_threads(config.threads)))
}

/// Runs one phase body on the pool, with the coordinator-side stall watchdog
/// scoped around it when [`RunCtl::stall_timeout`] is armed. The watchdog is
/// the one remaining per-phase thread spawn, and only on runs that opt into
/// stall detection; it exits as soon as every worker marks its heartbeat done
/// (which each phase body does before returning).
#[allow(clippy::too_many_arguments)]
fn run_pool_phase<S: StatsSink, F: Fn(usize) + Sync>(
    pool: &WorkerPool,
    ctl: &RunCtl,
    hb: &Heartbeats,
    poison: &Poison,
    queue: &WorkQueue,
    phase: &'static str,
    stats: &S,
    body: F,
) {
    if let Some(stall) = ctl.stall_timeout() {
        std::thread::scope(|s| {
            s.spawn(|| stall_watchdog(stall, hb, poison, queue, phase, stats));
            pool.run_phase(&body);
        });
    } else {
        pool.run_phase(&body);
    }
}

/// Converts a finished stage's [`Poison`] latch into the driver-level error,
/// recording the panic count ([`Counter::WorkerPanics`]) on the way out. The
/// error names every distinct phase that recorded a failure (normally just
/// this stage's, but a latch can outlive a stage in tests) and carries the
/// total failure count.
fn check_poison<S: StatsSink>(
    poison: &Poison,
    phase: &'static str,
    stats: &S,
) -> Result<(), DbscanError> {
    if let Some(summary) = poison.take_summary() {
        stats.add(Counter::WorkerPanics, summary.panic_count);
        let phases = if summary.phases.is_empty() {
            phase.to_string()
        } else {
            summary.phases
        };
        return Err(DbscanError::WorkerPanicked {
            phase: phases,
            task: summary.task,
            payload: summary.payload,
            panic_count: summary.panic_count,
        });
    }
    Ok(())
}

/// Coordinator-side stall watchdog: polls the per-worker [`Heartbeats`] at a
/// quarter of the threshold (clamped to [1ms, 25ms]) and, when some live
/// worker's last beat is older than `stall`, emits a [`EventName::Stall`]
/// trace instant, records a poison message (escalating to the run's
/// [`RecoveryPolicy`] exactly like a panic), and closes the queue so the
/// healthy workers drain promptly. It deliberately does *not* trip the
/// cancellation token: a stall is a fault, not a budget expiry, and the
/// fallback rerun should keep whatever budget remains.
fn stall_watchdog<S: StatsSink>(
    stall: Duration,
    hb: &Heartbeats,
    poison: &Poison,
    queue: &WorkQueue,
    phase: &'static str,
    stats: &S,
) {
    let poll = (stall / 4).clamp(Duration::from_millis(1), Duration::from_millis(25));
    loop {
        std::thread::sleep(poll);
        if hb.all_done() || poison.is_poisoned() || queue.is_closed() {
            return;
        }
        if let Some((w, age)) = hb.stalest_age() {
            if age >= stall {
                stats.trace_instant(
                    0,
                    EventName::Stall,
                    [w as u32, age.as_millis().min(u32::MAX as u128) as u32],
                );
                poison.record_message(
                    phase,
                    w as u32,
                    format!(
                        "stall watchdog: worker {w} made no progress for {age:?} \
                         (threshold {stall:?})"
                    ),
                );
                queue.close();
                return;
            }
        }
    }
}

/// Parallel core-point labeling: workers claim cells (weighted by point
/// count, heaviest first) from a shared [`WorkQueue`] and return the ids of
/// points they proved core; the caller scatters them. With an enabled sink
/// each worker accumulates its distance-computation and steal counts locally
/// and flushes them once ([`Counter::GridPointsExamined`],
/// [`Counter::TasksStolen`]). A panicking task poisons the run (the partial
/// results are discarded) and surfaces as [`DbscanError::WorkerPanicked`].
fn label_core_points_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    grid: &GridIndex<D>,
    params: DbscanParams,
    pool: &WorkerPool,
    faults: &FaultPlan,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Vec<bool>, DbscanError> {
    let threads = pool.threads();
    if threads <= 1 || grid.num_cells() < 2 * threads {
        return Ok(label_core_points_ctl(points, grid, params, stats, ctl));
    }
    if ctl.armed() {
        ctl.stage_begin(StageId::Labeling, grid.num_cells() as u64);
    }
    let min_pts = params.min_pts();
    let queue = WorkQueue::new(grid.cells().iter().map(|c| c.len() as u64), threads);
    let poison = Poison::new();
    let hb = Heartbeats::new(threads);
    let mut is_core = vec![false; points.len()];
    // Per-worker result slots (the pool shares one `Fn` body by reference, so
    // workers cannot return values through join handles). One uncontended
    // lock per worker per phase.
    let slots: Vec<Mutex<Vec<u32>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    run_pool_phase(pool, ctl, &hb, &poison, &queue, "labeling", stats, |w| {
        let mut core_ids = Vec::new();
        let mut examined = 0u64;
        let mut kernel_calls = 0u64;
        let mut stolen = 0u64;
        loop {
            if poison.is_poisoned() {
                // cooperative drain after a peer's panic
                stats.trace_instant(w + 1, EventName::PoisonTrip, [0, 0]);
                queue.close();
                break;
            }
            if ctl.should_stop() {
                // budget tripped: close so peers stop claiming too
                queue.close();
                break;
            }
            let Some(claim) = queue.claim(w) else {
                break;
            };
            hb.beat(w);
            let cell_id = claim.task;
            stolen += u64::from(claim.stolen);
            if claim.stolen {
                stats.trace_instant(w + 1, EventName::Steal, [cell_id, claim.home as u32]);
            }
            faults.maybe_steal_delay(claim.stolen);
            let t0 = stats.trace_start();
            let task = catch_unwind(AssertUnwindSafe(|| {
                faults.maybe_panic(FaultSite::Labeling, cell_id);
                let ids = grid.points_of(cell_id);
                if ids.len() >= min_pts {
                    core_ids.extend_from_slice(ids);
                } else {
                    for &p in ids {
                        let count = if S::ENABLED {
                            kernel_calls += 1;
                            grid.count_within_eps_counted(points, p, min_pts, &mut examined)
                        } else {
                            grid.count_within_eps(points, p, min_pts)
                        };
                        if count >= min_pts {
                            core_ids.push(p);
                        }
                    }
                }
            }));
            stats.trace_task_span(
                w + 1,
                EventName::TaskLabeling,
                t0,
                cell_id,
                grid.cell_population(cell_id) as u64,
                claim.stolen,
                claim.home,
            );
            if let Err(payload) = task {
                stats.trace_instant(w + 1, EventName::WorkerPanic, [cell_id, 0]);
                poison.record("labeling", cell_id, payload);
                break;
            }
            if ctl.armed() {
                ctl.stage_done(StageId::Labeling, 1);
            }
        }
        hb.mark_done(w);
        if S::ENABLED {
            stats.add(Counter::GridPointsExamined, examined);
            stats.add(Counter::BlockKernelCalls, kernel_calls);
            stats.add(Counter::TasksStolen, stolen);
        }
        *slots[w].lock().unwrap_or_else(|e| e.into_inner()) = core_ids;
    });
    check_poison(&poison, "labeling", stats)?;
    for slot in &slots {
        for &p in slot.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            is_core[p as usize] = true;
        }
    }
    Ok(is_core)
}

/// Builds [`CoreCells`] with parallel labeling. Phase attribution matches
/// [`CoreCells::build_instrumented`]: the grid build is [`Phase::GridBuild`],
/// labeling plus core-cell collection is [`Phase::Labeling`]. Input
/// validation, the index byte budget, and panic isolation all report through
/// the typed error.
fn build_core_cells_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    pool: &WorkerPool,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<CoreCells<D>, DbscanError> {
    crate::validate::check_points_finite(points)?;
    let grid_span = stats.now();
    let grid = GridIndex::try_build(points, params.eps(), config.limits.max_index_bytes)?;
    stats.finish(Phase::GridBuild, grid_span);
    let span = stats.now();
    let is_core =
        label_core_points_par(points, &grid, params, pool, &config.faults, stats, ctl)?;

    let mut core_cells = Vec::new();
    let mut rank_of_cell = vec![u32::MAX; grid.num_cells()];
    let mut core_points_of = Vec::new();
    for ci in 0..grid.num_cells() {
        let core_pts: Vec<u32> = grid
            .points_of(ci as u32)
            .iter()
            .copied()
            .filter(|&p| is_core[p as usize])
            .collect();
        if !core_pts.is_empty() {
            rank_of_cell[ci] = core_cells.len() as u32;
            core_cells.push(ci as u32);
            core_points_of.push(core_pts);
        }
    }
    stats.finish(Phase::Labeling, span);
    // Same layout and attribution as the sequential builder: the SoA gather
    // is a structure build, not labeling.
    let span = stats.now();
    let (core_soa, core_soa_start) = crate::cells::gather_core_soa(points, &core_points_of);
    stats.finish(Phase::StructureBuild, span);
    Ok(CoreCells {
        params,
        grid,
        is_core,
        core_cells,
        rank_of_cell,
        core_points_of,
        core_soa,
        core_soa_start,
    })
}

/// The fused edge phase: workers claim core cells from a [`WorkQueue`]
/// (weighted by [`CoreCells::edge_task_weight`], heaviest first), run the
/// read-only `edge_test` on each candidate pair, and union discovered edges
/// into a shared [`ConcurrentUnionFind`] *while testing continues* — so a
/// pair whose cells are already connected is skipped
/// ([`Counter::EdgeTestsSkipped`]), exactly like the sequential
/// short-circuit.
///
/// Every candidate pair counts one [`Counter::EdgeTests`] whether or not it
/// is skipped, exactly as the sequential loop counts them *before* its
/// `uf.same` check — so the sequential and parallel totals agree on identical
/// inputs. `edge_test` is expected to build any per-cell structure it needs
/// lazily and report nanoseconds spent doing so through `build_nanos` (see
/// the callers); the stage's wall span — including the final snapshot
/// conversion to a sequential [`UnionFind`] — is then split into
/// [`Phase::StructureBuild`] (reported builds), [`Phase::UnionFind`] (summed
/// `cuf.union` time), and [`Phase::EdgeTests`] (the remainder), mirroring the
/// sequential connect loop's three-way attribution. Both carve-outs are
/// capped at the span so the phases stay disjoint on any core count.
fn connect_par<const D: usize, S: StatsSink>(
    cc: &CoreCells<D>,
    pool: &WorkerPool,
    faults: &FaultPlan,
    stats: &S,
    ctl: &RunCtl,
    build_nanos: &AtomicU64,
    edge_test: impl Fn(usize, usize) -> bool + Sync,
) -> Result<UnionFind, DbscanError> {
    let threads = pool.threads();
    let m = cc.num_core_cells();
    if ctl.armed() {
        ctl.stage_begin(StageId::EdgeTests, m as u64);
    }
    let span = stats.now();
    // The weight pass re-enumerates every candidate pair — worth it only
    // when there is more than one claimant to balance across.
    let queue = if threads > 1 {
        WorkQueue::new((0..m).map(|r| cc.edge_task_weight(r)), threads)
    } else {
        WorkQueue::unweighted(m, threads)
    };
    let cuf = ConcurrentUnionFind::new(m);
    let poison = Poison::new();
    let hb = Heartbeats::new(threads);
    let union_nanos = AtomicU64::new(0);
    run_pool_phase(pool, ctl, &hb, &poison, &queue, "edge_tests", stats, |w| {
        let mut tests = 0u64;
        let mut skipped = 0u64;
        let mut edges = 0u64;
        let mut retries = 0u64;
        let mut stolen = 0u64;
        let mut unions_ns = 0u64;
        loop {
            if poison.is_poisoned() {
                // cooperative drain after a peer's panic
                stats.trace_instant(w + 1, EventName::PoisonTrip, [0, 0]);
                queue.close();
                break;
            }
            if ctl.should_stop() {
                // budget tripped: close so peers stop claiming too.
                // Under `degrade` this branch never fires — the edge
                // closure flips to the approximate path instead.
                queue.close();
                break;
            }
            let Some(claim) = queue.claim(w) else {
                break;
            };
            hb.beat(w);
            let r1 = claim.task;
            stolen += u64::from(claim.stolen);
            if claim.stolen {
                stats.trace_instant(w + 1, EventName::Steal, [r1, claim.home as u32]);
            }
            faults.maybe_steal_delay(claim.stolen);
            let retries_before = retries;
            let t0 = stats.trace_start();
            let task = catch_unwind(AssertUnwindSafe(|| {
                faults.maybe_panic(FaultSite::EdgeTests, r1);
                let r1 = r1 as usize;
                cc.for_candidate_partners(r1, |r2| {
                    tests += 1;
                    // A `true` from the concurrent structure is definitive
                    // even mid-race, so skipping can only drop a pair that
                    // is already redundant for connectivity.
                    if cuf.same(r1 as u32, r2 as u32) {
                        skipped += 1;
                    } else {
                        let e0 = stats.trace_start();
                        let hit = edge_test(r1, r2);
                        if let Some(e0) = e0 {
                            stats.trace_hist(
                                HistKind::EdgeTestNanos,
                                e0.elapsed().as_nanos() as u64,
                            );
                        }
                        if hit {
                            edges += 1;
                            if S::ENABLED {
                                let t = Instant::now();
                                cuf.union(r1 as u32, r2 as u32, &mut retries);
                                unions_ns += t.elapsed().as_nanos() as u64;
                            } else {
                                cuf.union(r1 as u32, r2 as u32, &mut retries);
                            }
                        }
                    }
                });
            }));
            if S::TRACE_ENABLED {
                stats.trace_task_span(
                    w + 1,
                    EventName::TaskEdge,
                    t0,
                    r1,
                    cc.edge_task_weight(r1 as usize),
                    claim.stolen,
                    claim.home,
                );
                let burst = retries - retries_before;
                if burst > 0 {
                    stats.trace_instant(
                        w + 1,
                        EventName::UfCasRetries,
                        [r1, burst.min(u32::MAX as u64) as u32],
                    );
                }
            }
            if let Err(payload) = task {
                stats.trace_instant(w + 1, EventName::WorkerPanic, [r1, 0]);
                poison.record("edge_tests", r1, payload);
                break;
            }
            if ctl.armed() {
                ctl.stage_done(StageId::EdgeTests, 1);
            }
        }
        hb.mark_done(w);
        if S::ENABLED {
            stats.add(Counter::EdgeTests, tests);
            stats.add(Counter::EdgeTestsSkipped, skipped);
            stats.add(Counter::EdgesFound, edges);
            stats.add(Counter::UnionOps, edges);
            stats.add(Counter::UfCasRetries, retries);
            stats.add(Counter::TasksStolen, stolen);
            union_nanos.fetch_add(unions_ns, Ordering::Relaxed);
        }
    });
    check_poison(&poison, "edge_tests", stats)?;
    let uf = UnionFind::from_parents(cuf.into_parents());
    if let Some(start) = span {
        // Same three-way split as the sequential connect loop (see
        // `connect_core_cells_instrumented`): lazy builds and unions are
        // carved out of the stage span, capped so the named phases can never
        // sum past it even when summed per-worker time exceeds wall clock.
        let total = start.elapsed().as_nanos() as u64;
        let builds = build_nanos.load(Ordering::Relaxed).min(total);
        let unions = union_nanos.load(Ordering::Relaxed).min(total - builds);
        let edge = total - builds - unions;
        stats.add_phase_nanos(Phase::UnionFind, unions);
        stats.add_phase_nanos(Phase::StructureBuild, builds);
        stats.add_phase_nanos(Phase::EdgeTests, edge);
        if S::TRACE_ENABLED {
            stats.trace_connect_spans(start, edge, unions, builds);
        }
    }
    Ok(uf)
}

/// Assembles the clustering with parallel border assignment: workers claim
/// grid cells (weighted by point count) and classify each cell's non-core
/// points. [`Phase::BorderAssign`], like the sequential assembler.
fn assemble_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
    pool: &WorkerPool,
    faults: &FaultPlan,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    let threads = pool.threads();
    if threads <= 1 {
        // One worker gains nothing from the claim/steal machinery; run the
        // sequential assembler (same final assignments — border writes are
        // per-point independent). Mirrors the labeling fallback above; like
        // there, per-task fault injection does not fire on this path.
        return Ok(assemble_clustering_ctl(points, cc, uf, stats, ctl));
    }
    if ctl.armed() {
        // Core scatter always completes; the budgeted tasks are the border
        // cells (totals are per-path task counts: cells here, points on the
        // sequential path).
        ctl.stage_begin(StageId::BorderAssign, cc.grid.num_cells() as u64);
    }
    let span = stats.now();
    let (component_of_rank, num_clusters) = uf.compact_labels();
    let mut assignments = vec![Assignment::Noise; points.len()];
    for (rank, core_pts) in cc.core_points_of.iter().enumerate() {
        let cluster = component_of_rank[rank];
        for &p in core_pts {
            assignments[p as usize] = Assignment::Core(cluster);
        }
    }
    let queue = WorkQueue::new(cc.grid.cells().iter().map(|c| c.len() as u64), threads);
    let poison = Poison::new();
    let hb = Heartbeats::new(threads);
    // Per-worker buffers of (border point, adjacent cluster ids) pairs.
    type BorderOut = Vec<(u32, Vec<u32>)>;
    let slots: Vec<Mutex<BorderOut>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    run_pool_phase(pool, ctl, &hb, &poison, &queue, "border_assign", stats, |w| {
        let component_of_rank = &component_of_rank;
        let mut out = Vec::new();
        let mut stolen = 0u64;
        loop {
            if poison.is_poisoned() {
                // cooperative drain after a peer's panic
                stats.trace_instant(w + 1, EventName::PoisonTrip, [0, 0]);
                queue.close();
                break;
            }
            if ctl.should_stop() {
                // budget tripped: close so peers stop claiming too
                queue.close();
                break;
            }
            let Some(claim) = queue.claim(w) else {
                break;
            };
            hb.beat(w);
            let cell_id = claim.task;
            stolen += u64::from(claim.stolen);
            if claim.stolen {
                stats.trace_instant(w + 1, EventName::Steal, [cell_id, claim.home as u32]);
            }
            faults.maybe_steal_delay(claim.stolen);
            let t0 = stats.trace_start();
            let task = catch_unwind(AssertUnwindSafe(|| {
                faults.maybe_panic(FaultSite::BorderAssign, cell_id);
                for &p in cc.grid.points_of(cell_id) {
                    if cc.is_core[p as usize] {
                        continue;
                    }
                    let clusters = assign_border_clusters(points, cc, component_of_rank, p);
                    if !clusters.is_empty() {
                        out.push((p, clusters));
                    }
                }
            }));
            stats.trace_task_span(
                w + 1,
                EventName::TaskBorder,
                t0,
                cell_id,
                cc.grid.cell_population(cell_id) as u64,
                claim.stolen,
                claim.home,
            );
            if let Err(payload) = task {
                stats.trace_instant(w + 1, EventName::WorkerPanic, [cell_id, 0]);
                poison.record("border_assign", cell_id, payload);
                break;
            }
            if ctl.armed() {
                ctl.stage_done(StageId::BorderAssign, 1);
            }
        }
        hb.mark_done(w);
        if S::ENABLED {
            stats.add(Counter::TasksStolen, stolen);
        }
        *slots[w].lock().unwrap_or_else(|e| e.into_inner()) = out;
    });
    check_poison(&poison, "border_assign", stats)?;
    for slot in slots {
        for (p, clusters) in slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            assignments[p as usize] = Assignment::Border(clusters);
        }
    }
    stats.finish(Phase::BorderAssign, span);
    Ok(Clustering {
        assignments,
        num_clusters,
    })
}

/// Parallel version of [`crate::algorithms::grid_exact`] (the paper's exact
/// algorithm). `threads = None` defers to [`resolve_threads`] (the
/// [`THREADS_ENV`] variable, else all available cores). Produces the same
/// clustering as the sequential version.
pub fn grid_exact_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    threads: Option<usize>,
) -> Clustering {
    grid_exact_par_instrumented(points, params, threads, &NoStats)
}

/// [`grid_exact_par`] with an observability sink (see [`crate::stats`]).
///
/// Per-pair counters mirror the sequential algorithm's: kd-trees are built
/// lazily inside the fused edge stage ([`Counter::KdTreeBuilds`] on first
/// use via [`OnceLock`], [`Counter::TreeCacheHits`] after), so
/// [`Counter::TreeFallbackBrute`] is structurally zero — there is no prebuilt
/// set to fall outside of. With [`NoStats`] every recording site compiles
/// away.
pub fn grid_exact_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    threads: Option<usize>,
    stats: &S,
) -> Clustering {
    try_grid_exact_par_instrumented(points, params, &ParConfig::with_threads(threads), stats)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`grid_exact_par`] with the default [`ParConfig`] knobs
/// exposed.
pub fn try_grid_exact_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
) -> Result<Clustering, DbscanError> {
    try_grid_exact_par_instrumented(points, params, config, &NoStats)
}

/// Fallible twin of [`grid_exact_par_instrumented`]; the infallible entry
/// points delegate here. Under [`RecoveryPolicy::FallbackSequential`] a
/// worker panic is absorbed: the run is retried on the sequential exact
/// algorithm (recorded as [`Counter::SequentialFallbacks`]); any other error
/// — and a panic under [`RecoveryPolicy::Fail`] — is returned.
pub fn try_grid_exact_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    let ctl = RunCtl::new(&config.deadline);
    grid_exact_par_run(points, params, config, stats, &ctl)
}

/// Deadline-aware twin of [`try_grid_exact_par_instrumented`]: runs under
/// [`ParConfig::deadline`] and additionally returns the [`DeadlineReport`]
/// (outcome, degraded-edge count, measured cancellation latency, per-stage
/// progress).
pub fn try_grid_exact_par_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(&config.deadline);
    let out = grid_exact_par_run(points, params, config, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Cancellation-aware parallel entry point taking an externally owned
/// [`RunCtl`], so a host (e.g. the service daemon) can interrupt or degrade
/// the run mid-flight. The sequential-fallback recovery path shares the same
/// `ctl`, so an interrupt lands regardless of which attempt is running.
pub fn try_grid_exact_par_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    grid_exact_par_run(points, params, config, stats, ctl)
}

fn grid_exact_par_run<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    match grid_exact_par_attempt(points, params, config, stats, ctl) {
        Err(DbscanError::WorkerPanicked { .. })
            if config.recovery == RecoveryPolicy::FallbackSequential =>
        {
            stats.bump(Counter::SequentialFallbacks);
            stats.trace_instant(0, EventName::SequentialFallback, [0, 0]);
            // The rerun shares the same RunCtl: whatever time budget remains
            // carries over, and the sequential pass re-declares its stage
            // totals via `stage_begin`.
            crate::algorithms::grid_exact_ctl(
                points,
                params,
                BcpStrategy::TreeAssisted,
                &config.limits,
                stats,
                ctl,
            )
        }
        other => other,
    }
}

fn grid_exact_par_attempt<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    let pool = resolve_pool(config);
    let cc = build_core_cells_par(points, params, &pool, config, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }
    let eps = params.eps();

    let trees: Vec<OnceLock<KdTree<D>>> =
        (0..cc.num_core_cells()).map(|_| OnceLock::new()).collect();
    let degrade_counters: Vec<OnceLock<ApproxRangeCounter<D>>> = if ctl.may_degrade() {
        (0..cc.num_core_cells()).map(|_| OnceLock::new()).collect()
    } else {
        Vec::new()
    };
    // Nanoseconds workers spend in lazy kd-tree builds, reported back to
    // `connect_par` so they land in Phase::StructureBuild (the sequential
    // path's `deferred` cell, made shareable across workers).
    let edge_builds = AtomicU64::new(0);
    let mut uf = connect_par(
        &cc,
        &pool,
        &config.faults,
        stats,
        ctl,
        &edge_builds,
        |r1, r2| {
            if ctl.edge_degraded() {
                ctl.note_degraded_edge();
                stats.bump(Counter::CounterDecisions);
                return crate::algorithms::degraded_edge_test_shared(
                    points,
                    &cc,
                    &degrade_counters,
                    ctl.degrade_rho(),
                    r1,
                    r2,
                    stats,
                );
            }
            let (a, b) = (&cc.core_points_of[r1], &cc.core_points_of[r2]);
            if a.len() * b.len() <= bcp::BRUTE_FORCE_LIMIT {
                stats.bump(Counter::BruteForceDecisions);
                stats.bump(Counter::BlockKernelCalls);
                return bcp::within_threshold_blocks(&cc.core_block(r1), &cc.core_block(r2), eps);
            }
            // Large pair: the same optimistic budgeted probe as the
            // sequential route — only an undecided probe builds a tree.
            stats.bump(Counter::BlockKernelCalls);
            if let Some(hit) =
                bcp::probe_within_threshold_blocks(&cc.core_block(r1), &cc.core_block(r2), eps)
            {
                stats.bump(Counter::BruteForceDecisions);
                return hit;
            }
            stats.bump(Counter::TreeProbeDecisions);
            // Probe the smaller side, tree on the larger (ties to the higher
            // rank) — the same designation the sequential lazy cache uses.
            let (probe, tree_rank) = if a.len() <= b.len() { (a, r2) } else { (b, r1) };
            // Cache-hit fast path: one `OnceLock::get` load and no clock
            // read, matching the cost of the sequential lazy cache's hit
            // branch. The clock is only touched when a build may happen.
            let tree = match trees[tree_rank].get() {
                Some(tree) => {
                    stats.bump(Counter::TreeCacheHits);
                    tree
                }
                None => {
                    let mut built = false;
                    let t0 = if S::ENABLED { Some(Instant::now()) } else { None };
                    let tree = trees[tree_rank].get_or_init(|| {
                        built = true;
                        let ids = &cc.core_points_of[tree_rank];
                        KdTree::build_entries(
                            ids.iter().map(|&i| (points[i as usize], i)).collect(),
                        )
                    });
                    if built {
                        stats.bump(Counter::KdTreeBuilds);
                        if let Some(t0) = t0 {
                            edge_builds.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                    } else {
                        // Another worker won the init race between `get` and
                        // `get_or_init`; from this task's view it is a hit.
                        stats.bump(Counter::TreeCacheHits);
                    }
                    tree
                }
            };
            if S::ENABLED {
                let mut nodes = 0u64;
                let hit = bcp::within_threshold_tree_counted(points, probe, tree, eps, &mut nodes);
                stats.add(Counter::IndexNodesVisited, nodes);
                hit
            } else {
                bcp::within_threshold_tree(points, probe, tree, eps)
            }
        },
    )?;
    if S::ENABLED {
        // Mirrors the sequential accounting: cells whose lazy kd-tree was
        // never initialized by any worker finished on the blocked kernel.
        let unbuilt = trees.iter().filter(|t| t.get().is_none()).count();
        stats.add(Counter::BruteForceCells, unbuilt as u64);
    }
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::EdgeTests));
    }
    let out = assemble_par(points, &cc, &mut uf, &pool, &config.faults, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    stats.finish(Phase::Total, total);
    Ok(out)
}

/// Parallel version of [`crate::algorithms::rho_approx`] (ρ-approximate
/// DBSCAN). `threads = None` defers to [`resolve_threads`].
pub fn rho_approx_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    threads: Option<usize>,
) -> Clustering {
    rho_approx_par_instrumented(points, params, rho, threads, &NoStats)
}

/// [`rho_approx_par`] with an observability sink (see [`crate::stats`]).
///
/// Lemma 5 counters are built lazily inside the fused edge stage
/// ([`Counter::CounterBuilds`], one per cell that actually serves as the
/// count side of a reached pair — the same set the sequential lazy build
/// materializes, minus pairs the live short-circuit skips); edge tests record
/// [`Counter::CounterDecisions`], [`Counter::CounterQueries`], and
/// [`Counter::IndexNodesVisited`]. With [`NoStats`] every recording site
/// compiles away.
pub fn rho_approx_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    threads: Option<usize>,
    stats: &S,
) -> Clustering {
    try_rho_approx_par_instrumented(points, params, rho, &ParConfig::with_threads(threads), stats)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`rho_approx_par`] with the default [`ParConfig`] knobs
/// exposed.
pub fn try_rho_approx_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
) -> Result<Clustering, DbscanError> {
    try_rho_approx_par_instrumented(points, params, rho, config, &NoStats)
}

/// Fallible twin of [`rho_approx_par_instrumented`]; the infallible entry
/// points delegate here. Under [`RecoveryPolicy::FallbackSequential`] a
/// worker panic is absorbed by retrying on the sequential ρ-approximate
/// algorithm (recorded as [`Counter::SequentialFallbacks`]).
pub fn try_rho_approx_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    let ctl = RunCtl::new(&config.deadline);
    rho_approx_par_run(points, params, rho, config, stats, &ctl)
}

/// Deadline-aware twin of [`try_rho_approx_par_instrumented`]: runs under
/// [`ParConfig::deadline`] and additionally returns the [`DeadlineReport`].
/// A degraded run answers some edges at ρ and the rest at the configured
/// `degrade_rho` ρ′, so the result is a legal max(ρ, ρ′)-approximate
/// clustering.
pub fn try_rho_approx_par_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(&config.deadline);
    let out = rho_approx_par_run(points, params, rho, config, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Cancellation-aware parallel ρ-approximate entry point; see
/// [`try_grid_exact_par_ctl`] for the contract.
pub fn try_rho_approx_par_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    rho_approx_par_run(points, params, rho, config, stats, ctl)
}

fn rho_approx_par_run<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    match rho_approx_par_attempt(points, params, rho, config, stats, ctl) {
        Err(DbscanError::WorkerPanicked { .. })
            if config.recovery == RecoveryPolicy::FallbackSequential =>
        {
            stats.bump(Counter::SequentialFallbacks);
            stats.trace_instant(0, EventName::SequentialFallback, [0, 0]);
            // Shares the RunCtl with the failed attempt — remaining budget
            // carries over (see `grid_exact_par_run`).
            crate::algorithms::rho_approx_ctl(points, params, rho, &config.limits, stats, ctl)
        }
        other => other,
    }
}

fn rho_approx_par_attempt<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    config: &ParConfig,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    validate_rho(params.eps(), rho)?;
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    let pool = resolve_pool(config);
    let cc = build_core_cells_par(points, params, &pool, config, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }
    // Same leaf-level representability and counter-budget pre-checks as the
    // sequential try path, so the lazy in-loop builds stay infallible.
    let leaf_side = base_side::<D>(params.eps()) / (1u64 << (hierarchy_levels(rho) - 1)) as f64;
    crate::validate::check_cell_range(points, leaf_side)?;
    if let Some(budget) = config.limits.max_index_bytes {
        let estimated =
            dbscan_index::counter::estimated_build_bytes::<D>(cc.num_core_points(), rho);
        if estimated > budget {
            return Err(DbscanError::ResourceLimit {
                structure: "approximate range counters",
                estimated_bytes: estimated,
                budget_bytes: budget,
            });
        }
    }
    let eps = params.eps();

    let counters: Vec<OnceLock<ApproxRangeCounter<D>>> =
        (0..cc.num_core_cells()).map(|_| OnceLock::new()).collect();
    // A second counter set at `degrade_rho` for edges answered after a
    // degrade trip (distinct from the ρ counters above).
    let degrade_counters: Vec<OnceLock<ApproxRangeCounter<D>>> = if ctl.may_degrade() {
        (0..cc.num_core_cells()).map(|_| OnceLock::new()).collect()
    } else {
        Vec::new()
    };
    // Lazy Lemma 5 counter builds report their nanoseconds here so the bench
    // phase columns stay comparable with the sequential path (whose
    // structure_build dominates the ρ-approximate profile).
    let edge_builds = AtomicU64::new(0);
    let mut uf = connect_par(
        &cc,
        &pool,
        &config.faults,
        stats,
        ctl,
        &edge_builds,
        |r1, r2| {
            stats.bump(Counter::CounterDecisions);
            if ctl.edge_degraded() {
                ctl.note_degraded_edge();
                return crate::algorithms::degraded_edge_test_shared(
                    points,
                    &cc,
                    &degrade_counters,
                    ctl.degrade_rho(),
                    r1,
                    r2,
                    stats,
                );
            }
            let (probe, count_side) = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len()
            {
                (r1, r2)
            } else {
                (r2, r1)
            };
            // Same cache-hit fast path as the exact closure: no clock read
            // unless this task may perform the build.
            let counter = match counters[count_side].get() {
                Some(counter) => counter,
                None => {
                    let mut built = false;
                    let t0 = if S::ENABLED { Some(Instant::now()) } else { None };
                    let counter = counters[count_side].get_or_init(|| {
                        built = true;
                        let pts: Vec<Point<D>> = cc.core_points_of[count_side]
                            .iter()
                            .map(|&i| points[i as usize])
                            .collect();
                        ApproxRangeCounter::build(&pts, eps, rho)
                    });
                    if built {
                        stats.bump(Counter::CounterBuilds);
                        if let Some(t0) = t0 {
                            edge_builds.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                    }
                    counter
                }
            };
            if S::ENABLED {
                let mut queries = 0u64;
                let mut visited = 0u64;
                let hit = cc.core_points_of[probe].iter().any(|&p| {
                    queries += 1;
                    counter.query_positive_counted(&points[p as usize], &mut visited)
                });
                stats.add(Counter::CounterQueries, queries);
                stats.add(Counter::IndexNodesVisited, visited);
                hit
            } else {
                cc.core_points_of[probe]
                    .iter()
                    .any(|&p| counter.query_positive(&points[p as usize]))
            }
        },
    )?;
    if S::ENABLED {
        // Approximate analogue of the exact path's accounting: cells whose
        // Lemma 5 counter no worker ever initialized.
        let unbuilt = counters.iter().filter(|c| c.get().is_none()).count();
        stats.add(Counter::BruteForceCells, unbuilt as u64);
    }
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::EdgeTests));
    }
    let out = assemble_par(points, &cc, &mut uf, &pool, &config.faults, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    stats.finish(Phase::Total, total);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{grid_exact, grid_exact_instrumented, rho_approx, BcpStrategy};
    use crate::cells::{assemble_clustering, connect_core_cells};
    use crate::labeling::label_core_points;
    use crate::stats::Stats;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn resolve_threads_explicit_zero_and_none() {
        let all = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1)), 1);
        // 0 means "all cores", not "clamp to one".
        assert_eq!(resolve_threads(Some(0)), all);
        // None defers to the environment / all cores; with the env var unset
        // in the test harness this is all cores. (The DBSCAN_THREADS path is
        // exercised through the CLI integration tests — a separate process —
        // because mutating the environment races with other test threads.)
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(resolve_threads(None), all);
        }
    }

    #[test]
    fn parallel_exact_matches_sequential() {
        for seed in [1u64, 2] {
            let pts = lcg_points(1_500, 30.0, seed);
            for (eps, min_pts) in [(1.0, 4), (2.5, 10)] {
                let p = params(eps, min_pts);
                let seq = grid_exact(&pts, p);
                for threads in [1, 2, 4, 7] {
                    let par = grid_exact_par(&pts, p, Some(threads));
                    assert_eq!(
                        par.assignments, seq.assignments,
                        "threads={threads} seed={seed}"
                    );
                    assert_eq!(par.num_clusters, seq.num_clusters);
                }
            }
        }
    }

    #[test]
    fn parallel_approx_matches_sequential() {
        let pts = lcg_points(1_500, 30.0, 3);
        let p = params(1.5, 5);
        for rho in [0.001, 0.1] {
            let seq = rho_approx(&pts, p, rho);
            let par = rho_approx_par(&pts, p, rho, Some(4));
            assert_eq!(par.assignments, seq.assignments, "rho={rho}");
        }
    }

    #[test]
    fn parallel_labeling_matches_sequential() {
        let pts = lcg_points(2_000, 40.0, 9);
        let p = params(1.0, 5);
        let grid = GridIndex::build(&pts, p.eps());
        let seq = label_core_points(&pts, &grid, p);
        for threads in [2, 3, 8] {
            assert_eq!(
                label_core_points_par(
                    &pts,
                    &grid,
                    p,
                    &WorkerPool::global(threads),
                    &FaultPlan::default(),
                    &NoStats,
                    &RunCtl::unlimited()
                )
                .unwrap(),
                seq
            );
        }
    }

    #[test]
    fn parallel_connect_matches_sequential_components() {
        let pts = lcg_points(1_000, 20.0, 5);
        let p = params(1.2, 4);
        let cc = CoreCells::build(&pts, p);
        let edge = |r1: usize, r2: usize| {
            bcp::within_threshold_brute(
                &pts,
                &cc.core_points_of[r1],
                &cc.core_points_of[r2],
                p.eps(),
            )
        };
        let mut seq_uf = connect_core_cells(&cc, edge);
        let mut par_uf = connect_par(
            &cc,
            &WorkerPool::global(4),
            &FaultPlan::default(),
            &NoStats,
            &RunCtl::unlimited(),
            &AtomicU64::new(0),
            edge,
        )
        .unwrap();
        let seq = assemble_clustering(&pts, &cc, &mut seq_uf);
        let par = assemble_clustering(&pts, &cc, &mut par_uf);
        assert_eq!(seq.assignments, par.assignments);
    }

    /// The fused stage restores the sequential path's two key counter
    /// properties: the candidate-pair enumeration is identical (EdgeTests
    /// agree exactly) and the live union-find short-circuit fires
    /// (EdgeTestsSkipped > 0), while lazy tree builds via `OnceLock` make the
    /// prebuild fallback structurally impossible.
    #[test]
    fn fused_edge_stage_skips_and_matches_sequential_counters() {
        // Dense blob (cells far above the brute-force product limit — with
        // the raised 16384 crossover that needs ~130+ core points per cell)
        // plus a sparse fringe (cells below it), so both edge-test routes
        // fire.
        let mut pts = lcg_points(6_000, 4.0, 11);
        pts.extend(lcg_points(2_000, 30.0, 12));
        let p = params(1.0, 4);

        let seq_stats = Stats::new();
        let seq = grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &seq_stats);
        let par_stats = Stats::new();
        let par = grid_exact_par_instrumented(&pts, p, Some(4), &par_stats);
        assert_eq!(seq.assignments, par.assignments);

        let sr = seq_stats.report();
        let pr = par_stats.report();
        assert!(
            pr.counter(Counter::TreeProbeDecisions) > 0,
            "test data must exercise the tree route"
        );
        assert!(
            pr.counter(Counter::BruteForceDecisions) > 0,
            "test data must exercise the brute route"
        );
        // Both paths enumerate the identical candidate-pair set...
        assert_eq!(
            sr.counter(Counter::EdgeTests),
            pr.counter(Counter::EdgeTests)
        );
        // ...and the parallel path prunes it through live connectivity.
        assert!(pr.counter(Counter::EdgeTestsSkipped) > 0);
        // Trees are built lazily on first use; no prebuild set to miss.
        assert_eq!(pr.counter(Counter::TreeFallbackBrute), 0);
        assert!(pr.counter(Counter::KdTreeBuilds) > 0);
        // Every union attempt stems from a discovered edge.
        assert_eq!(
            pr.counter(Counter::UnionOps),
            pr.counter(Counter::EdgesFound)
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            grid_exact_par::<2>(&[], params(1.0, 2), Some(4)).num_clusters,
            0
        );
        let one = rho_approx_par(&[p2(0.0, 0.0)], params(1.0, 1), 0.01, Some(16));
        assert_eq!(one.num_clusters, 1);
    }
}
