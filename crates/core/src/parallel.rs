//! Multi-threaded variants of the paper's two grid algorithms.
//!
//! The paper's algorithms are embarrassingly parallel in three of their four
//! phases, a fact the sequential analysis never needs but production use does:
//!
//! 1. **labeling** — each cell's core decisions are independent;
//! 2. **per-cell structures** — the kd-trees / Lemma 5 counters of different
//!    core cells are independent;
//! 3. **edge tests** — each ε-neighbor cell pair is independent (the sequential
//!    code skips pairs already connected through the union-find; the parallel
//!    code gives that short-circuit up in exchange for parallelism, so its
//!    [`Counter::EdgeTestsSkipped`] is always zero);
//! 4. **border assignment** — each non-core point is independent.
//!
//! Only the union-find pass over the discovered edges is sequential, and it is
//! O(#edges α). Implemented with `std::thread::scope` — no extra dependencies.
//! Results are bit-identical to the sequential versions (the edge predicates
//! are deterministic and the union order does not affect components).
//!
//! The `*_instrumented` entry points share one [`StatsSink`] across all worker
//! threads (its counters are relaxed atomics); workers accumulate counts in
//! locals and flush once per chunk. Phase times are wall-clock spans measured
//! on the coordinating thread, so a phase's seconds reflect elapsed time of
//! the parallel stage, not summed per-thread CPU time.

use crate::bcp;
use crate::border::assign_border_clusters;
use crate::cells::CoreCells;
use crate::labeling::label_core_points_instrumented;
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Assignment, Clustering, DbscanParams};
use crate::unionfind::UnionFind;
use dbscan_geom::Point;
use dbscan_index::{ApproxRangeCounter, GridIndex, KdTree};

/// Number of worker threads: explicit `threads`, or all available cores.
fn resolve_threads(threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Splits `0..n` into at most `k` contiguous chunks.
fn chunk_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Parallel core-point labeling: each thread labels a contiguous range of
/// cells and returns `(point, is_core)` records that the caller scatters.
/// With an enabled sink each worker accumulates its distance-computation
/// count locally and flushes it once as [`Counter::GridPointsExamined`].
fn label_core_points_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    grid: &GridIndex<D>,
    params: DbscanParams,
    threads: usize,
    stats: &S,
) -> Vec<bool> {
    if threads <= 1 || grid.num_cells() < 2 * threads {
        return label_core_points_instrumented(points, grid, params, stats);
    }
    let min_pts = params.min_pts();
    let ranges = chunk_ranges(grid.num_cells(), threads);
    let mut is_core = vec![false; points.len()];
    let chunks: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let range = range.clone();
                s.spawn(move || {
                    let mut core_ids = Vec::new();
                    let mut examined = 0u64;
                    for cell in &grid.cells()[range] {
                        if cell.points.len() >= min_pts {
                            core_ids.extend_from_slice(&cell.points);
                        } else {
                            for &p in &cell.points {
                                let count = if S::ENABLED {
                                    grid.count_within_eps_counted(points, p, min_pts, &mut examined)
                                } else {
                                    grid.count_within_eps(points, p, min_pts)
                                };
                                if count >= min_pts {
                                    core_ids.push(p);
                                }
                            }
                        }
                    }
                    if S::ENABLED {
                        stats.add(Counter::GridPointsExamined, examined);
                    }
                    core_ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ids in chunks {
        for p in ids {
            is_core[p as usize] = true;
        }
    }
    is_core
}

/// Builds [`CoreCells`] with parallel labeling. Phase attribution matches
/// [`CoreCells::build_instrumented`]: the grid build is [`Phase::GridBuild`],
/// labeling plus core-cell collection is [`Phase::Labeling`].
fn build_core_cells_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    threads: usize,
    stats: &S,
) -> CoreCells<D> {
    let grid = stats.time(Phase::GridBuild, || GridIndex::build(points, params.eps()));
    let span = stats.now();
    let is_core = label_core_points_par(points, &grid, params, threads, stats);

    let mut core_cells = Vec::new();
    let mut rank_of_cell = vec![u32::MAX; grid.num_cells()];
    let mut core_points_of = Vec::new();
    for (ci, cell) in grid.cells().iter().enumerate() {
        let core_pts: Vec<u32> = cell
            .points
            .iter()
            .copied()
            .filter(|&p| is_core[p as usize])
            .collect();
        if !core_pts.is_empty() {
            rank_of_cell[ci] = core_cells.len() as u32;
            core_cells.push(ci as u32);
            core_points_of.push(core_pts);
        }
    }
    stats.finish(Phase::Labeling, span);
    CoreCells {
        params,
        grid,
        is_core,
        core_cells,
        rank_of_cell,
        core_points_of,
    }
}

/// Collects the edges of the core-cell graph in parallel: each thread tests
/// the neighbor pairs of a contiguous rank range with the read-only
/// `edge_test`, then the union-find is built sequentially.
///
/// Every candidate pair counts one [`Counter::EdgeTests`], exactly as the
/// sequential loop counts them *before* its `uf.same` short-circuit — so the
/// sequential and parallel totals agree on identical inputs. The parallel
/// collection stage is [`Phase::EdgeTests`]; the sequential union pass is
/// [`Phase::UnionFind`].
fn connect_par<const D: usize, S: StatsSink>(
    cc: &CoreCells<D>,
    threads: usize,
    stats: &S,
    edge_test: impl Fn(usize, usize) -> bool + Sync,
) -> UnionFind {
    let m = cc.num_core_cells();
    let span = stats.now();
    let edges: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunk_ranges(m, threads)
            .into_iter()
            .map(|range| {
                let edge_test = &edge_test;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut tests = 0u64;
                    for r1 in range {
                        let cell1 = cc.core_cells[r1];
                        for &nb in cc.grid.neighbors_of(cell1) {
                            let r2 = cc.rank_of_cell[nb as usize];
                            if r2 == u32::MAX || (r2 as usize) <= r1 {
                                continue;
                            }
                            tests += 1;
                            if edge_test(r1, r2 as usize) {
                                out.push((r1 as u32, r2));
                            }
                        }
                    }
                    if S::ENABLED {
                        stats.add(Counter::EdgeTests, tests);
                        stats.add(Counter::EdgesFound, out.len() as u64);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    stats.finish(Phase::EdgeTests, span);

    let span = stats.now();
    let mut uf = UnionFind::new(m);
    let mut unions = 0u64;
    for chunk in edges {
        for (a, b) in chunk {
            uf.union(a, b);
            unions += 1;
        }
    }
    stats.add(Counter::UnionOps, unions);
    stats.finish(Phase::UnionFind, span);
    uf
}

/// Assembles the clustering with parallel border assignment
/// ([`Phase::BorderAssign`], like the sequential assembler).
fn assemble_par<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    uf: &mut UnionFind,
    threads: usize,
    stats: &S,
) -> Clustering {
    let span = stats.now();
    let (component_of_rank, num_clusters) = uf.compact_labels();
    let mut assignments = vec![Assignment::Noise; points.len()];
    for (rank, core_pts) in cc.core_points_of.iter().enumerate() {
        let cluster = component_of_rank[rank];
        for &p in core_pts {
            assignments[p as usize] = Assignment::Core(cluster);
        }
    }
    let borders: Vec<Vec<(u32, Vec<u32>)>> = std::thread::scope(|s| {
        let component_of_rank = &component_of_rank;
        let handles: Vec<_> = chunk_ranges(points.len(), threads)
            .into_iter()
            .map(|range| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for p in range {
                        if cc.is_core[p] {
                            continue;
                        }
                        let clusters =
                            assign_border_clusters(points, cc, component_of_rank, p as u32);
                        if !clusters.is_empty() {
                            out.push((p as u32, clusters));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for chunk in borders {
        for (p, clusters) in chunk {
            assignments[p as usize] = Assignment::Border(clusters);
        }
    }
    stats.finish(Phase::BorderAssign, span);
    Clustering {
        assignments,
        num_clusters,
    }
}

/// Whether the sequential algorithm's lazy cache could ever build a kd-tree
/// for core cell `r`: some ε-neighbor core-cell pair involving `r` exceeds
/// the brute-force limit **and** `r` is that pair's designated tree side —
/// the same side [`crate::algorithms::grid_exact`] picks (probe the smaller
/// side, tree on the larger; ties go to the higher rank).
///
/// This is the prebuild criterion for the parallel path. The earlier
/// heuristic (`len² > limit`) looked at a cell in isolation: it prebuilt
/// trees for cells that only ever probe (or have no over-limit partner at
/// all), wasting build work, and its divergence from the sequential pair
/// decision meant the two paths could not be compared structure-for-structure
/// in the stats. With the pair-aware criterion the prebuilt set equals the
/// set of cells the sequential run could lazily build, so the
/// [`Counter::TreeFallbackBrute`] fallback below never fires.
fn needs_prebuilt_tree<const D: usize>(cc: &CoreCells<D>, r: usize) -> bool {
    let len_r = cc.core_points_of[r].len();
    cc.grid.neighbors_of(cc.core_cells[r]).iter().any(|&nb| {
        let q = cc.rank_of_cell[nb as usize];
        if q == u32::MAX || q as usize == r {
            return false;
        }
        let q = q as usize;
        if len_r * cc.core_points_of[q].len() <= bcp::BRUTE_FORCE_LIMIT {
            return false;
        }
        let (r1, r2) = if r < q { (r, q) } else { (q, r) };
        let tree_rank = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len() {
            r2
        } else {
            r1
        };
        tree_rank == r
    })
}

/// Parallel version of [`crate::algorithms::grid_exact`] (the paper's exact
/// algorithm). `threads = None` uses all available cores. Produces the same
/// clustering as the sequential version.
pub fn grid_exact_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    threads: Option<usize>,
) -> Clustering {
    grid_exact_par_instrumented(points, params, threads, &NoStats)
}

/// [`grid_exact_par`] with an observability sink (see [`crate::stats`]).
///
/// The parallel tree prebuild is [`Phase::StructureBuild`]; per-pair decision
/// counters mirror the sequential algorithm's, except that the lazy-cache
/// counters ([`Counter::TreeCacheHits`]) stay zero — trees here are built
/// ahead of time — and [`Counter::TreeFallbackBrute`] counts pairs whose
/// designated tree was not prebuilt (zero by construction; a nonzero value is
/// a heuristic regression). With [`NoStats`] every recording site compiles
/// away.
pub fn grid_exact_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    threads: Option<usize>,
    stats: &S,
) -> Clustering {
    let total = stats.now();
    crate::validate::check_points(points);
    let threads = resolve_threads(threads);
    let cc = build_core_cells_par(points, params, threads, stats);
    let eps = params.eps();

    // Pre-build (in parallel) exactly the trees the sequential lazy cache
    // could build — see `needs_prebuilt_tree`.
    let span = stats.now();
    let trees: Vec<Option<KdTree<D>>> = std::thread::scope(|s| {
        let cc = &cc;
        let handles: Vec<_> = chunk_ranges(cc.num_core_cells(), threads)
            .into_iter()
            .map(|range| {
                s.spawn(move || {
                    range
                        .map(|r| {
                            if needs_prebuilt_tree(cc, r) {
                                let ids = &cc.core_points_of[r];
                                Some(KdTree::build_entries(
                                    ids.iter().map(|&i| (points[i as usize], i)).collect(),
                                ))
                            } else {
                                None
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    if S::ENABLED {
        let built = trees.iter().filter(|t| t.is_some()).count();
        stats.add(Counter::KdTreeBuilds, built as u64);
    }
    stats.finish(Phase::StructureBuild, span);

    let mut uf = connect_par(&cc, threads, stats, |r1, r2| {
        let (a, b) = (&cc.core_points_of[r1], &cc.core_points_of[r2]);
        if a.len() * b.len() <= bcp::BRUTE_FORCE_LIMIT {
            stats.bump(Counter::BruteForceDecisions);
            return bcp::within_threshold_brute(points, a, b, eps);
        }
        let (probe, tree_rank) = if a.len() <= b.len() { (a, r2) } else { (b, r1) };
        match &trees[tree_rank] {
            Some(tree) => {
                stats.bump(Counter::TreeProbeDecisions);
                if S::ENABLED {
                    let mut nodes = 0u64;
                    let hit =
                        bcp::within_threshold_tree_counted(points, probe, tree, eps, &mut nodes);
                    stats.add(Counter::IndexNodesVisited, nodes);
                    hit
                } else {
                    bcp::within_threshold_tree(points, probe, tree, eps)
                }
            }
            None => {
                stats.bump(Counter::TreeFallbackBrute);
                bcp::within_threshold_brute(points, a, b, eps)
            }
        }
    });
    let out = assemble_par(points, &cc, &mut uf, threads, stats);
    stats.finish(Phase::Total, total);
    out
}

/// Parallel version of [`crate::algorithms::rho_approx`] (ρ-approximate
/// DBSCAN). `threads = None` uses all available cores.
pub fn rho_approx_par<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    threads: Option<usize>,
) -> Clustering {
    rho_approx_par_instrumented(points, params, rho, threads, &NoStats)
}

/// [`rho_approx_par`] with an observability sink (see [`crate::stats`]).
///
/// The eager parallel counter builds are [`Phase::StructureBuild`] and
/// [`Counter::CounterBuilds`] (one per core cell — unlike the lazy sequential
/// build, which only materializes the count side of pairs it reaches); edge
/// tests record [`Counter::CounterDecisions`], [`Counter::CounterQueries`],
/// and [`Counter::IndexNodesVisited`]. With [`NoStats`] every recording site
/// compiles away.
pub fn rho_approx_par_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    threads: Option<usize>,
    stats: &S,
) -> Clustering {
    assert!(rho > 0.0, "rho must be positive");
    let total = stats.now();
    crate::validate::check_points(points);
    let threads = resolve_threads(threads);
    let cc = build_core_cells_par(points, params, threads, stats);
    let eps = params.eps();

    // Every core cell gets its counter (built in parallel): any cell may be
    // the count side of some pair, and building all of them keeps the stage
    // embarrassingly parallel.
    let span = stats.now();
    let counters: Vec<ApproxRangeCounter<D>> = std::thread::scope(|s| {
        let cc = &cc;
        let handles: Vec<_> = chunk_ranges(cc.num_core_cells(), threads)
            .into_iter()
            .map(|range| {
                s.spawn(move || {
                    range
                        .map(|r| {
                            let pts: Vec<Point<D>> = cc.core_points_of[r]
                                .iter()
                                .map(|&i| points[i as usize])
                                .collect();
                            ApproxRangeCounter::build(&pts, eps, rho)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    stats.add(Counter::CounterBuilds, counters.len() as u64);
    stats.finish(Phase::StructureBuild, span);

    let mut uf = connect_par(&cc, threads, stats, |r1, r2| {
        stats.bump(Counter::CounterDecisions);
        let (probe, counter) = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len() {
            (r1, r2)
        } else {
            (r2, r1)
        };
        if S::ENABLED {
            let mut queries = 0u64;
            let mut visited = 0u64;
            let hit = cc.core_points_of[probe].iter().any(|&p| {
                queries += 1;
                counters[counter].query_positive_counted(&points[p as usize], &mut visited)
            });
            stats.add(Counter::CounterQueries, queries);
            stats.add(Counter::IndexNodesVisited, visited);
            hit
        } else {
            cc.core_points_of[probe]
                .iter()
                .any(|&p| counters[counter].query_positive(&points[p as usize]))
        }
    });
    let out = assemble_par(points, &cc, &mut uf, threads, stats);
    stats.finish(Phase::Total, total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{grid_exact, grid_exact_instrumented, rho_approx, BcpStrategy};
    use crate::cells::{assemble_clustering, connect_core_cells};
    use crate::labeling::label_core_points;
    use crate::stats::Stats;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, k) in [(10, 3), (1, 5), (0, 4), (7, 7), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn parallel_exact_matches_sequential() {
        for seed in [1u64, 2] {
            let pts = lcg_points(1_500, 30.0, seed);
            for (eps, min_pts) in [(1.0, 4), (2.5, 10)] {
                let p = params(eps, min_pts);
                let seq = grid_exact(&pts, p);
                for threads in [1, 2, 4, 7] {
                    let par = grid_exact_par(&pts, p, Some(threads));
                    assert_eq!(
                        par.assignments, seq.assignments,
                        "threads={threads} seed={seed}"
                    );
                    assert_eq!(par.num_clusters, seq.num_clusters);
                }
            }
        }
    }

    #[test]
    fn parallel_approx_matches_sequential() {
        let pts = lcg_points(1_500, 30.0, 3);
        let p = params(1.5, 5);
        for rho in [0.001, 0.1] {
            let seq = rho_approx(&pts, p, rho);
            let par = rho_approx_par(&pts, p, rho, Some(4));
            assert_eq!(par.assignments, seq.assignments, "rho={rho}");
        }
    }

    #[test]
    fn parallel_labeling_matches_sequential() {
        let pts = lcg_points(2_000, 40.0, 9);
        let p = params(1.0, 5);
        let grid = GridIndex::build(&pts, p.eps());
        let seq = label_core_points(&pts, &grid, p);
        for threads in [2, 3, 8] {
            assert_eq!(
                label_core_points_par(&pts, &grid, p, threads, &NoStats),
                seq
            );
        }
    }

    #[test]
    fn parallel_connect_matches_sequential_components() {
        let pts = lcg_points(1_000, 20.0, 5);
        let p = params(1.2, 4);
        let cc = CoreCells::build(&pts, p);
        let edge = |r1: usize, r2: usize| {
            bcp::within_threshold_brute(
                &pts,
                &cc.core_points_of[r1],
                &cc.core_points_of[r2],
                p.eps(),
            )
        };
        let mut seq_uf = connect_core_cells(&cc, edge);
        let mut par_uf = connect_par(&cc, 4, &NoStats, edge);
        let seq = assemble_clustering(&pts, &cc, &mut seq_uf);
        let par = assemble_clustering(&pts, &cc, &mut par_uf);
        assert_eq!(seq.assignments, par.assignments);
    }

    /// Regression test for the prebuild heuristic: whenever the sequential
    /// algorithm serves a pair with a tree probe, the parallel path must find
    /// its prebuilt tree instead of silently degrading to brute force.
    #[test]
    fn parallel_takes_tree_route_whenever_sequential_does() {
        // Dense blob (cells far above the brute-force product limit) plus a
        // sparse fringe (cells below it), so both edge-test routes fire.
        let mut pts = lcg_points(6_000, 6.0, 11);
        pts.extend(lcg_points(2_000, 30.0, 12));
        let p = params(1.0, 4);

        let seq_stats = Stats::new();
        let seq = grid_exact_instrumented(&pts, p, BcpStrategy::TreeAssisted, &seq_stats);
        let par_stats = Stats::new();
        let par = grid_exact_par_instrumented(&pts, p, Some(4), &par_stats);
        assert_eq!(seq.assignments, par.assignments);

        let sr = seq_stats.report();
        let pr = par_stats.report();
        assert!(
            sr.counter(Counter::TreeProbeDecisions) > 0,
            "test data must exercise the tree route"
        );
        assert!(
            sr.counter(Counter::BruteForceDecisions) > 0,
            "test data must exercise the brute route"
        );
        // The fixed heuristic prebuilds every tree a pair can demand.
        assert_eq!(pr.counter(Counter::TreeFallbackBrute), 0);
        // Both paths enumerate the identical candidate-pair set.
        assert_eq!(
            sr.counter(Counter::EdgeTests),
            pr.counter(Counter::EdgeTests)
        );
        // Without the uf.same short-circuit the parallel path evaluates at
        // least every pair the sequential path evaluated.
        assert!(pr.counter(Counter::TreeProbeDecisions) >= sr.counter(Counter::TreeProbeDecisions));
        // ...and lazily-built sequential trees are a subset of the prebuilt
        // set (the short-circuit can only skip builds, never add them).
        assert!(pr.counter(Counter::KdTreeBuilds) >= sr.counter(Counter::KdTreeBuilds));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            grid_exact_par::<2>(&[], params(1.0, 2), None).num_clusters,
            0
        );
        let one = rho_approx_par(&[p2(0.0, 0.0)], params(1.0, 1), 0.01, Some(16));
        assert_eq!(one.num_clusters, 1);
    }
}
