//! Zero-overhead observability for the DBSCAN algorithms: per-phase wall
//! times and operation counters.
//!
//! The paper's running-time claims (Figures 11–13) attribute the cost of
//! OurExact/OurApprox to specific *phases* — grid building, core labeling,
//! per-cell structure builds, BCP edge tests, union-find, border assignment.
//! This module makes those phases measurable without touching the
//! uninstrumented hot path:
//!
//! * [`StatsSink`] is the collection interface. Every algorithm has an
//!   `*_instrumented` entry point generic over `S: StatsSink`; the public
//!   uninstrumented APIs delegate with [`NoStats`], whose
//!   `ENABLED = false` lets the optimizer erase every recording site (the
//!   branches are decided at monomorphization time, so the hot path stays
//!   branch-free).
//! * [`Stats`] is the real collector: relaxed atomic counters, so a single
//!   instance can aggregate across the worker threads of the parallel
//!   variants in [`crate::parallel`].
//! * [`StatsReport`] is an immutable snapshot with a stable JSON rendering
//!   (the `dbscan-stats/v7` schema documented in EXPERIMENTS.md; v2 = v1
//!   plus the [`Counter::TasksStolen`] / [`Counter::UfCasRetries`] scheduler
//!   and concurrency counters; v3 = v2 plus the [`Counter::WorkerPanics`] /
//!   [`Counter::SequentialFallbacks`] resilience counters and the envelope's
//!   `recovery` field; v4 = v3 plus the lossless integer `phases_ns`
//!   object and, on traced runs, the envelope's `histograms` /
//!   `events_dropped` members from [`crate::trace`]; v7 = v6 plus the
//!   [`Counter::BlockKernelCalls`] / [`Counter::BruteForceCells`] kernel
//!   counters and the envelope's `kernel_block` field).
//!
//! Phase attribution is disjoint: a nanosecond is counted in exactly one
//! phase, so phases sum to (at most) [`Phase::Total`]. In the sequential
//! algorithms, lazily built structures (the exact algorithm's kd-trees, the
//! approximate algorithm's counters) are built *inside* the edge loop but
//! their build time is re-attributed from [`Phase::EdgeTests`] to
//! [`Phase::StructureBuild`]. The parallel variants fuse structure builds,
//! edge tests, and unions into one barrier-free stage whose whole wall-clock
//! span lands in [`Phase::EdgeTests`] (their [`Phase::StructureBuild`] and
//! [`Phase::UnionFind`] report zero) — splitting per-thread time back out
//! would double-count wall-clock nanoseconds across workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The phases of the grid-based DBSCAN template (and their analogues in
/// KDD'96 and CIT08 — see the phase-mapping table in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Building the ε/√d grid (CIT08: the coarse partition + halo pass).
    GridBuild,
    /// Core-point labeling (KDD'96: the seed-expansion flood, whose region
    /// queries decide core status).
    Labeling,
    /// Per-cell kd-tree / approximate-counter builds; index builds for
    /// KDD'96 and CIT08.
    StructureBuild,
    /// Edge tests between ε-neighbor core cells (BCP predicates, NN probes,
    /// approximate-counter probes), excluding lazy builds and union-find.
    EdgeTests,
    /// Union-find operations over discovered edges (CIT08: the cross-partition
    /// merge).
    UnionFind,
    /// Border-point assignment / the final assembly pass.
    BorderAssign,
    /// End-to-end wall time of the algorithm, measured around everything
    /// else (so `Total` ≥ the sum of the other phases; the difference is
    /// unattributed glue).
    Total,
}

impl Phase {
    pub const COUNT: usize = 7;

    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::GridBuild,
        Phase::Labeling,
        Phase::StructureBuild,
        Phase::EdgeTests,
        Phase::UnionFind,
        Phase::BorderAssign,
        Phase::Total,
    ];

    /// Stable snake_case key used in the JSON schema and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::GridBuild => "grid_build",
            Phase::Labeling => "labeling",
            Phase::StructureBuild => "structure_build",
            Phase::EdgeTests => "edge_tests",
            Phase::UnionFind => "union_find",
            Phase::BorderAssign => "border_assign",
            Phase::Total => "total",
        }
    }
}

/// Operation counters. All are *counts of decisions or operations*, not
/// timings, so sequential and parallel runs of the same algorithm on the
/// same input are directly comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Candidate ε-neighbor core-cell pairs enumerated by the connect loop,
    /// counted *before* the union-find short-circuit — identical between
    /// sequential and parallel runs on the same input.
    EdgeTests,
    /// Candidate pairs skipped because the union-find already connected
    /// them — the sequential connect loop's `uf.same` short-circuit, and the
    /// parallel workers' live consultation of the concurrent union-find.
    /// (Parallel counts are timing-dependent: a pair is skipped if some
    /// worker joined its cells first.)
    EdgeTestsSkipped,
    /// Edge tests that returned true (an edge of the core-cell graph `G`).
    EdgesFound,
    /// Edge tests decided by the early-exit brute-force scan.
    BruteForceDecisions,
    /// Edge tests decided by probing a per-cell kd-tree.
    TreeProbeDecisions,
    /// Edge tests decided by a full BCP computation
    /// ([`crate::algorithms::BcpStrategy::FullBcp`] / `FullBruteBcp`).
    FullBcpDecisions,
    /// Edge tests decided by the Lemma 5 approximate counter (ρ-approximate
    /// algorithm).
    CounterDecisions,
    /// Historical (kept for schema stability): the old parallel exact path
    /// pre-built kd-trees from a heuristic and counted pairs whose designated
    /// tree was missing here. Trees are now built on demand inside the edge
    /// tasks, so this is structurally zero.
    TreeFallbackBrute,
    /// kd-trees built (per-cell trees, and the on-the-fly indexes of the
    /// KDD'96 wrappers and CIT08 partitions).
    KdTreeBuilds,
    /// Tree-probe decisions served by an already-built (cached) tree.
    TreeCacheHits,
    /// Lemma 5 approximate counters built.
    CounterBuilds,
    /// Approximate-counter point queries (`query_positive` calls).
    CounterQueries,
    /// Region queries issued through a [`dbscan_index::RangeIndex`]
    /// (KDD'96 and CIT08's local runs).
    RangeQueries,
    /// Total points returned by those region queries — the Θ(n²) lower-bound
    /// witness of the paper's footnote 1.
    RangePointsReturned,
    /// Index nodes visited while answering counted probes and region
    /// queries (kd-tree/R-tree nodes; the linear scan counts points).
    IndexNodesVisited,
    /// Points examined by the grid labeling step's neighborhood counting.
    GridPointsExamined,
    /// Union-find `union` calls.
    UnionOps,
    /// Scheduler tasks a worker claimed outside its static home segment —
    /// exactly the work the old contiguous-chunk split would have placed on
    /// a different (possibly still busy) thread. Zero means static chunking
    /// would have balanced; positive counts measure rescued skew. See
    /// [`crate::scheduler`].
    TasksStolen,
    /// Failed root-link CAS attempts in the concurrent union-find (each one
    /// lost a race to another worker's link and restarted). A contention
    /// gauge for the parallel connect phase.
    UfCasRetries,
    /// Worker tasks that panicked inside a parallel stage and were caught by
    /// the stage's `catch_unwind` envelope (see [`crate::scheduler::Poison`]).
    /// Nonzero only when something actually went wrong — or when the
    /// `fault-injection` harness was told to make it go wrong.
    WorkerPanics,
    /// Parallel runs that were transparently re-executed sequentially under
    /// [`crate::RecoveryPolicy::FallbackSequential`] after a worker panic.
    SequentialFallbacks,
    /// Kernel-backed distance-primitive dispatches from instrumented paths:
    /// one per counted neighborhood scan in labeling and one per blocked
    /// brute-force BCP predicate in the edge phase (see
    /// `dbscan_geom::kernels`). Zero on paths that never touch a blocked
    /// kernel (e.g. `FullBcp` strategies).
    BlockKernelCalls,
    /// Core cells that finished the edge phase without ever building their
    /// heavy per-cell structure (kd-tree in the exact algorithm, Lemma 5
    /// counter in the approximate one) — every pair touching them was
    /// decided by the blocked brute-force kernel, skipped, or never
    /// enumerated. The raised brute-force crossover shows up here: a
    /// shrinking `structure_build` phase is explained by a growing
    /// `brute_force_cells`.
    BruteForceCells,
}

impl Counter {
    pub const COUNT: usize = 23;

    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::EdgeTests,
        Counter::EdgeTestsSkipped,
        Counter::EdgesFound,
        Counter::BruteForceDecisions,
        Counter::TreeProbeDecisions,
        Counter::FullBcpDecisions,
        Counter::CounterDecisions,
        Counter::TreeFallbackBrute,
        Counter::KdTreeBuilds,
        Counter::TreeCacheHits,
        Counter::CounterBuilds,
        Counter::CounterQueries,
        Counter::RangeQueries,
        Counter::RangePointsReturned,
        Counter::IndexNodesVisited,
        Counter::GridPointsExamined,
        Counter::UnionOps,
        Counter::TasksStolen,
        Counter::UfCasRetries,
        Counter::WorkerPanics,
        Counter::SequentialFallbacks,
        Counter::BlockKernelCalls,
        Counter::BruteForceCells,
    ];

    /// Stable snake_case key used in the JSON schema and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EdgeTests => "edge_tests",
            Counter::EdgeTestsSkipped => "edge_tests_skipped",
            Counter::EdgesFound => "edges_found",
            Counter::BruteForceDecisions => "brute_force_decisions",
            Counter::TreeProbeDecisions => "tree_probe_decisions",
            Counter::FullBcpDecisions => "full_bcp_decisions",
            Counter::CounterDecisions => "counter_decisions",
            Counter::TreeFallbackBrute => "tree_fallback_brute",
            Counter::KdTreeBuilds => "kd_tree_builds",
            Counter::TreeCacheHits => "tree_cache_hits",
            Counter::CounterBuilds => "counter_builds",
            Counter::CounterQueries => "counter_queries",
            Counter::RangeQueries => "range_queries",
            Counter::RangePointsReturned => "range_points_returned",
            Counter::IndexNodesVisited => "index_nodes_visited",
            Counter::GridPointsExamined => "grid_points_examined",
            Counter::UnionOps => "union_ops",
            Counter::TasksStolen => "tasks_stolen",
            Counter::UfCasRetries => "uf_cas_retries",
            Counter::WorkerPanics => "worker_panics",
            Counter::SequentialFallbacks => "sequential_fallbacks",
            Counter::BlockKernelCalls => "block_kernel_calls",
            Counter::BruteForceCells => "brute_force_cells",
        }
    }
}

/// Collection interface threaded through the `*_instrumented` entry points.
///
/// `ENABLED` is an associated *const*, so with [`NoStats`] every recording
/// site folds to nothing at monomorphization time — the uninstrumented
/// public APIs compile to the same code they had before this layer existed.
///
/// [`crate::trace::TraceSink`] is a supertrait, so every `S: StatsSink`
/// entry point also accepts trace events; [`NoStats`] and [`Stats`] carry
/// disabled trace impls, and [`crate::trace::TracedStats`] enables both
/// layers at once. The [`StatsSink::time`]/[`StatsSink::finish`] helpers
/// below feed each phase measurement to *both* layers from a single
/// `elapsed()` reading, so phase spans in a trace agree exactly with the
/// stats phase nanos.
pub trait StatsSink: crate::trace::TraceSink {
    const ENABLED: bool;

    /// Adds `n` to counter `c`.
    fn add(&self, c: Counter, n: u64);

    /// Adds wall time to a phase.
    fn add_phase_nanos(&self, p: Phase, nanos: u64);

    /// Increments counter `c` by one.
    #[inline(always)]
    fn bump(&self, c: Counter) {
        if Self::ENABLED {
            self.add(c, 1);
        }
    }

    /// Runs `f`, attributing its wall time to phase `p` (free when disabled:
    /// no `Instant::now` is ever taken).
    #[inline(always)]
    fn time<T>(&self, p: Phase, f: impl FnOnce() -> T) -> T {
        if Self::ENABLED {
            let start = Instant::now();
            let out = f();
            let nanos = start.elapsed().as_nanos() as u64;
            self.add_phase_nanos(p, nanos);
            if Self::TRACE_ENABLED {
                self.trace_span_from(0, crate::trace::EventName::of_phase(p), start, nanos);
            }
            out
        } else {
            f()
        }
    }

    /// `Instant::now()` only when enabled — for spans that cannot be closed
    /// over with [`StatsSink::time`].
    #[inline(always)]
    fn now(&self) -> Option<Instant> {
        if Self::ENABLED {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened with [`StatsSink::now`].
    #[inline(always)]
    fn finish(&self, p: Phase, start: Option<Instant>) {
        if let Some(start) = start {
            let nanos = start.elapsed().as_nanos() as u64;
            self.add_phase_nanos(p, nanos);
            if Self::TRACE_ENABLED {
                self.trace_span_from(0, crate::trace::EventName::of_phase(p), start, nanos);
            }
        }
    }
}

/// The no-op collector behind every uninstrumented public API.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoStats;

impl StatsSink for NoStats {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&self, _c: Counter, _n: u64) {}

    #[inline(always)]
    fn add_phase_nanos(&self, _p: Phase, _nanos: u64) {}
}

/// The real collector: relaxed atomics, shareable across the worker threads
/// of the parallel variants.
#[derive(Debug, Default)]
pub struct Stats {
    counters: [AtomicU64; Counter::COUNT],
    phase_nanos: [AtomicU64; Phase::COUNT],
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Current accumulated nanoseconds of one phase.
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phase_nanos[p as usize].load(Ordering::Relaxed)
    }

    /// Immutable snapshot for reporting.
    pub fn report(&self) -> StatsReport {
        let mut counters = [0u64; Counter::COUNT];
        for (slot, a) in counters.iter_mut().zip(&self.counters) {
            *slot = a.load(Ordering::Relaxed);
        }
        let mut phase_nanos = [0u64; Phase::COUNT];
        for (slot, a) in phase_nanos.iter_mut().zip(&self.phase_nanos) {
            *slot = a.load(Ordering::Relaxed);
        }
        StatsReport {
            counters,
            phase_nanos,
        }
    }
}

impl StatsSink for Stats {
    const ENABLED: bool = true;

    #[inline]
    fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn add_phase_nanos(&self, p: Phase, nanos: u64) {
        self.phase_nanos[p as usize].fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Immutable snapshot of a [`Stats`] collector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsReport {
    counters: [u64; Counter::COUNT],
    phase_nanos: [u64; Phase::COUNT],
}

impl StatsReport {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phase_nanos[p as usize]
    }

    pub fn phase_secs(&self, p: Phase) -> f64 {
        self.phase_nanos(p) as f64 / 1e9
    }

    /// The sum that the edge-test decomposition invariant checks against:
    /// every enumerated candidate pair is either skipped or decided by
    /// exactly one mechanism.
    pub fn decision_sum(&self) -> u64 {
        self.counter(Counter::EdgeTestsSkipped)
            + self.counter(Counter::BruteForceDecisions)
            + self.counter(Counter::TreeProbeDecisions)
            + self.counter(Counter::FullBcpDecisions)
            + self.counter(Counter::CounterDecisions)
            + self.counter(Counter::TreeFallbackBrute)
    }

    /// JSON object `{"grid_build_s": ..., ...}` — phase wall times in
    /// seconds, keys suffixed `_s`, stable order of [`Phase::ALL`].
    pub fn phases_json(&self) -> String {
        let mut out = String::from("{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}_s\":{:.9}", p.name(), self.phase_secs(*p)));
        }
        out.push('}');
        out
    }

    /// JSON object `{"grid_build": ..., ...}` — phase wall times as exact
    /// integer nanoseconds, keys *without* suffix, stable order of
    /// [`Phase::ALL`]. The lossless sibling of [`StatsReport::phases_json`]:
    /// the seconds keys stay for human scanning, the nanos are what scripts
    /// should diff.
    pub fn phases_ns_json(&self) -> String {
        let mut out = String::from("{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", p.name(), self.phase_nanos(*p)));
        }
        out.push('}');
        out
    }

    /// JSON object `{"edge_tests": ..., ...}` — counters, stable order of
    /// [`Counter::ALL`].
    pub fn counters_json(&self) -> String {
        let mut out = String::from("{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.counter(*c)));
        }
        out.push('}');
        out
    }

    /// Standalone JSON rendering:
    /// `{"phases": {...}, "phases_ns": {...}, "counters": {...}}` —
    /// seconds for humans, integer nanos for scripts. The CLI wraps this in
    /// the full `dbscan-stats/v7` envelope.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"phases\":{},\"phases_ns\":{},\"counters\":{}}}",
            self.phases_json(),
            self.phases_ns_json(),
            self.counters_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "Phase::ALL order must match discriminants");
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(
                *c as usize, i,
                "Counter::ALL order must match discriminants"
            );
        }
        // Names are unique (they become JSON keys).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn stats_records_and_reports() {
        let s = Stats::new();
        s.bump(Counter::EdgeTests);
        s.add(Counter::EdgeTests, 2);
        s.add_phase_nanos(Phase::GridBuild, 1_500_000_000);
        let r = s.report();
        assert_eq!(r.counter(Counter::EdgeTests), 3);
        assert_eq!(r.counter(Counter::UnionOps), 0);
        assert!((r.phase_secs(Phase::GridBuild) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nostats_time_still_runs_closure() {
        let sink = NoStats;
        let v = sink.time(Phase::Total, || 41 + 1);
        assert_eq!(v, 42);
        assert!(sink.now().is_none());
    }

    #[test]
    fn stats_is_shareable_across_threads() {
        let s = Stats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.bump(Counter::UnionOps);
                    }
                });
            }
        });
        assert_eq!(s.counter(Counter::UnionOps), 4000);
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let s = Stats::new();
        s.add(Counter::EdgeTests, 7);
        s.add_phase_nanos(Phase::Labeling, 1_234_567_891);
        let j = s.report().to_json();
        assert!(j.starts_with("{\"phases\":{\"grid_build_s\":"));
        assert!(j.contains("\"edge_tests\":7"));
        assert!(j.ends_with("}}"));
        // Every phase key is present with the _s suffix.
        for p in Phase::ALL {
            assert!(j.contains(&format!("\"{}_s\":", p.name())), "{}", p.name());
        }
        for c in Counter::ALL {
            assert!(j.contains(&format!("\"{}\":", c.name())), "{}", c.name());
        }
        // The nanos sibling carries exact integers (no float formatting).
        assert!(j.contains("\"phases_ns\":{\"grid_build\":0,"));
        assert!(j.contains("\"labeling\":1234567891"));
    }
}
