//! Std-only work-stealing task scheduler for the parallel DBSCAN phases.
//!
//! The parallel layer used to split every phase into `threads` *static
//! contiguous chunks* of cells. On the skewed cell populations the paper's
//! seed-spreader data produces (a few cells holding most of the points), a
//! static split routinely hands one worker the dense core of the dataset and
//! leaves the rest idle — the phase then runs at the speed of its unluckiest
//! chunk. [`WorkQueue`] replaces that with *self-scheduling over a
//! priority-ordered task list*:
//!
//! * tasks (cells, or per-cell bundles of ε-neighbor pair tests) are sorted
//!   heaviest-first by a caller-supplied weight (point count, or the
//!   Σ|a|·|b| brute-force cost bound of a cell's candidate pairs);
//! * workers claim tasks one at a time through a single shared atomic index —
//!   a worker that finishes early immediately claims the next-heaviest
//!   unclaimed task instead of idling at a chunk barrier.
//!
//! This is the classic guided/self-scheduling scheme (the degenerate but
//! effective end of work stealing: one global deque, steals are `fetch_add`s),
//! chosen over per-worker deques because it needs nothing beyond
//! `AtomicUsize` — no extra dependencies, consistent with the workspace's
//! offline `*-compat` policy — and because the heaviest-first order bounds
//! the finish-time spread by the weight of a single task.
//!
//! **Steal accounting.** For observability, each worker is assigned a *home
//! segment*: the contiguous slice of the priority order that static chunking
//! would have given it. A claim that lands outside the claimer's home segment
//! is counted as *stolen* ([`Counter::TasksStolen`] — see [`crate::stats`]):
//! it is exactly the work the old static split would have placed on a
//! different (possibly still busy) thread. A perfectly balanced workload
//! reports zero steals; skew shows up as a positive count.
//!
//! [`Counter::TasksStolen`]: crate::stats::Counter::TasksStolen

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Splits `0..n` into at most `k` contiguous, gap-free ranges.
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A priority-ordered task list consumed through a shared atomic claim index.
///
/// Task ids are `0..weights.len()` (`u32`); iteration order is heaviest
/// weight first (ties by ascending id, so the order — though not the
/// claim timing — is deterministic).
pub struct WorkQueue {
    /// Task ids, heaviest first.
    order: Vec<u32>,
    /// Position in `order` of the next unclaimed task.
    next: AtomicUsize,
    /// Home-segment boundaries for steal accounting: worker `w` of the
    /// construction-time worker count owns positions `bounds[w]..bounds[w+1]`.
    bounds: Vec<usize>,
    /// Set by [`WorkQueue::close`]; once observed, `claim` returns `None`.
    closed: AtomicBool,
}

impl WorkQueue {
    /// Builds a queue over tasks `0..weights.len()` for `workers` claimants.
    pub fn new(weights: impl IntoIterator<Item = u64>, workers: usize) -> Self {
        let weights: Vec<u64> = weights.into_iter().collect();
        let mut order: Vec<u32> = (0..weights.len() as u32).collect();
        // Heaviest-first ordering only matters for balancing tasks *across*
        // claimants; a single worker drains the list in any order, so skip
        // the sort (it is pure overhead on the threads=1 path).
        if workers > 1 {
            order.sort_by_key(|&t| (std::cmp::Reverse(weights[t as usize]), t));
        }

        let workers = workers.max(1);
        let mut bounds = vec![0usize; workers + 1];
        for (w, range) in chunk_ranges(order.len(), workers).into_iter().enumerate() {
            bounds[w + 1] = range.end;
        }
        // `chunk_ranges` caps the chunk count at the task count; surplus
        // workers own an empty segment at the end.
        for w in 1..=workers {
            bounds[w] = bounds[w].max(bounds[w - 1]);
        }
        WorkQueue {
            order,
            next: AtomicUsize::new(0),
            bounds,
            closed: AtomicBool::new(false),
        }
    }

    /// Builds a queue over `num_tasks` tasks in natural order, skipping the
    /// weight pass entirely. Callers' weight functions can cost a full pass
    /// over the task graph (e.g. [`edge_task_weight`] enumerates every
    /// candidate pair), which buys nothing when `workers == 1` — a single
    /// claimant drains the queue in any order.
    ///
    /// [`edge_task_weight`]: crate::cells::CoreCells::edge_task_weight
    pub fn unweighted(num_tasks: usize, workers: usize) -> Self {
        Self::new(std::iter::repeat_n(0, num_tasks), workers)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the queue was built over zero tasks.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Closes the queue: every [`WorkQueue::claim`] that *begins* after
    /// `close` returns will yield `None`, for every worker.
    ///
    /// This is the drain mechanism for poison and cancellation: the first
    /// worker to observe a tripped poison latch or an expired budget closes
    /// the queue, and the remaining workers fall out of their claim loops at
    /// their next claim instead of racing through the rest of the task list.
    /// The store is `Release` and the load in `claim` is `Acquire`, so the
    /// happens-before edge guarantees promptness; a claim already *in flight*
    /// when `close` is called may still hand out one task per worker — the
    /// inherent race of cooperative cancellation — but never more.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`WorkQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Claims the next unclaimed task for `worker`, or `None` when the list
    /// is exhausted or the queue has been [closed](WorkQueue::close).
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let pos = self.next.fetch_add(1, Ordering::Relaxed);
        if pos >= self.order.len() {
            return None;
        }
        let stolen = pos < self.bounds[worker] || pos >= self.bounds[worker + 1];
        // Last segment whose start is ≤ pos. Empty segments share their start
        // with the following non-empty one, so the owner found is the worker
        // whose (non-empty) home actually contains the position.
        let home = self.bounds.partition_point(|&b| b <= pos) - 1;
        Some(Claim {
            task: self.order[pos],
            stolen,
            home,
        })
    }
}

/// One claimed task: the id, whether the claim fell outside the claimer's
/// home segment (a "steal" — see the module docs), and which worker's home
/// segment held the claimed position (the task's would-be owner under static
/// chunking — trace events report it so steal patterns are attributable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Claim {
    pub task: u32,
    pub stolen: bool,
    pub home: usize,
}

/// First-panic latch shared by the workers of one parallel stage.
///
/// Every task body runs under `std::panic::catch_unwind`; a worker whose task
/// panics records the failure here and stops claiming, and the *other*
/// workers observe [`Poison::is_poisoned`] before each claim and drain
/// cooperatively — no `JoinHandle::join` ever propagates a panic, no thread is
/// torn down mid-update, and the driver converts the recorded first failure
/// into [`crate::DbscanError::WorkerPanicked`] (or falls back sequentially,
/// per [`crate::RecoveryPolicy`]).
#[derive(Default)]
pub struct Poison {
    poisoned: AtomicBool,
    panics: AtomicU64,
    state: Mutex<PoisonState>,
}

#[derive(Default)]
struct PoisonState {
    /// First recorded `(task, payload)` — the failure the error reports.
    first: Option<(u32, String)>,
    /// Every distinct phase name a failure was recorded under, in first-seen
    /// order. Multi-panic chaos runs can poison more than one phase (e.g. a
    /// labeling panic racing an edge-phase stall), and reporting only the
    /// first would under-describe the blast radius.
    phases: Vec<&'static str>,
}

impl Poison {
    /// A fresh, unpoisoned latch.
    pub fn new() -> Self {
        Poison::default()
    }

    /// Whether any worker has recorded a failure. Checked by workers before
    /// each claim; once true, the stage's result will be discarded, so
    /// remaining tasks are skipped rather than executed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Records a panic of `task` in `phase` with the given unwind payload.
    /// The first recorded failure wins the latch; later ones bump the count
    /// and contribute their phase name to the aggregate.
    pub fn record(&self, phase: &'static str, task: u32, payload: Box<dyn Any + Send>) {
        self.record_message(phase, task, panic_message(payload.as_ref()));
    }

    /// Records a non-panic failure (e.g. a stall-watchdog trip) as if it
    /// were a panic with the given message.
    pub fn record_message(&self, phase: &'static str, task: u32, message: String) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.first.is_none() {
            state.first = Some((task, message));
        }
        if !state.phases.contains(&phase) {
            state.phases.push(phase);
        }
        drop(state);
        self.poisoned.store(true, Ordering::Release);
    }

    /// Total number of recorded failures (≥ 1 iff poisoned).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Drains the latch into a summary: the first failure, all distinct
    /// phase names (joined with `+`, first-seen order), and the total count.
    /// Call after all workers have been joined; `None` if never poisoned.
    pub fn take_summary(&self) -> Option<PoisonSummary> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (task, payload) = state.first.take()?;
        let phases = std::mem::take(&mut state.phases).join("+");
        Some(PoisonSummary {
            task,
            payload,
            phases,
            panic_count: self.panic_count(),
        })
    }
}

/// Aggregate view of a tripped [`Poison`] latch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonSummary {
    /// The task id of the first recorded failure.
    pub task: u32,
    /// The first failure's message.
    pub payload: String,
    /// All distinct phase names failures were recorded under, `+`-joined.
    pub phases: String,
    /// Total number of recorded failures.
    pub panic_count: u64,
}

/// A persistent worker pool: `threads` OS threads spawned once and parked on
/// a condvar between phases, replacing the spawn-per-phase-per-run
/// `std::thread::scope` driver that dominated small-n parallel runs (at
/// n=20k the three phases' six-fold thread spawning dwarfed the 16µs of
/// useful edge work — see BENCH_core.json v1 vs v2).
///
/// # Phase handoff protocol
///
/// Submission is an *epoch bump under the state mutex*: [`WorkerPool::run_phase`]
/// stores the job, increments `epoch`, and `notify_all`s the work condvar.
/// Workers wait with the classic predicate loop — re-checking
/// `epoch != seen_epoch` under the same mutex after every wakeup — so a phase
/// submitted *while* a worker is parking cannot be missed: either the worker
/// observes the new epoch before it waits, or the wait is entered before the
/// notify and the notify wakes it. There is no window where the flag is set
/// between the check and the sleep, because both happen under the mutex.
///
/// # Completion barrier and borrowed closures
///
/// `run_phase` blocks on a second condvar until every worker has decremented
/// `remaining` to zero. That barrier is what makes the lifetime-erased
/// [`Job`] pointer sound: the phase closure lives in `run_phase`'s frame, and
/// no worker can still hold the pointer once `remaining == 0` (each worker
/// decrements only after its call into the closure has returned).
///
/// # Panics
///
/// Phase bodies are expected to contain their own panics (the parallel layer
/// runs every task under `catch_unwind` and routes failures through
/// [`Poison`]). As a backstop, the worker loop catches anything that still
/// escapes, stores the first payload, and `run_phase` re-raises it on the
/// coordinator after the barrier — a panic can never tear down a pool thread
/// or wedge a later phase.
///
/// # One-thread pools
///
/// A pool built with `threads == 1` spawns no OS thread at all: `run_phase`
/// runs the body inline on the coordinator (worker index 0). Single-threaded
/// "parallel" runs therefore pay zero handoff cost — on a single-core host
/// the parallel entry points are within noise of the sequential ones.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serializes concurrent `run_phase` callers sharing one pool (e.g. two
    /// clustering runs handed the same handle): phases run back-to-back, not
    /// interleaved over the same workers.
    phase_lock: Mutex<()>,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Workers wait here for the next epoch (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for `remaining == 0`.
    done_cv: Condvar,
}

#[derive(Default)]
struct PoolState {
    /// Bumped once per submitted phase; workers run a job exactly once per
    /// epoch they observe.
    epoch: u64,
    /// The current phase's erased closure; `None` between phases.
    job: Option<Job>,
    /// Workers that have not yet finished the current phase.
    remaining: usize,
    /// First payload of a panic that escaped a phase body, re-raised by
    /// `run_phase`.
    panic: Option<Box<dyn Any + Send>>,
    /// Set by `Drop`; parked workers exit instead of waiting.
    shutdown: bool,
}

/// A lifetime-erased phase closure: a monomorphized call shim plus a pointer
/// into the coordinator's frame. Sound because `run_phase` does not return
/// until every worker has finished calling through it (see [`WorkerPool`]).
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const (), usize),
    data: *const (),
}

// The pointee is a `F: Fn(usize) + Sync` borrowed for the duration of the
// phase; sending the pointer to the workers is exactly the `&F: Send`
// guarantee `Sync` provides.
unsafe impl Send for Job {}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to ≥ 1). The threads park
    /// immediately and live until the pool is dropped. `threads == 1` spawns
    /// nothing — see the type-level docs.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|w| {
                    let inner = Arc::clone(&inner);
                    std::thread::Builder::new()
                        .name(format!("dbscan-worker-{w}"))
                        .spawn(move || worker_loop(&inner, w))
                        .expect("failed to spawn pool worker")
                })
                .collect()
        };
        WorkerPool {
            inner,
            handles,
            threads,
            phase_lock: Mutex::new(()),
        }
    }

    /// Worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one phase: every worker calls `body(worker_index)` exactly once,
    /// and `run_phase` returns only after all calls have finished (the
    /// completion barrier). Re-raises the first panic that escaped a body.
    ///
    /// The body is shared by reference across workers, so per-worker state
    /// belongs *inside* the closure (locals) or in per-worker slots the
    /// closure indexes with its worker argument.
    pub fn run_phase<F: Fn(usize) + Sync>(&self, body: &F) {
        if self.threads == 1 {
            // Inline fast path: no handoff, panics propagate natively.
            body(0);
            return;
        }
        unsafe fn shim<F: Fn(usize) + Sync>(data: *const (), worker: usize) {
            // SAFETY: `data` was erased from `&F` by `run_phase`, which is
            // still blocked on the completion barrier, so the borrow is live.
            let body = unsafe { &*(data as *const F) };
            body(worker);
        }
        let _phase = lock(&self.phase_lock);
        let mut st = lock(&self.inner.state);
        st.job = Some(Job {
            call: shim::<F>,
            data: (body as *const F).cast(),
        });
        st.remaining = self.threads;
        st.epoch += 1;
        self.inner.work_cv.notify_all();
        while st.remaining > 0 {
            st = self
                .inner
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }

    /// Process-wide pool cache, keyed by thread count: entry points that are
    /// not handed an explicit pool share one lazily-spawned pool per distinct
    /// worker count. Cached pools are never torn down (their parked threads
    /// cost nothing); explicit [`WorkerPool::new`] handles shut down on drop.
    pub fn global(threads: usize) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<Vec<Arc<WorkerPool>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
        let mut pools = lock(pools);
        if let Some(p) = pools.iter().find(|p| p.threads() == threads.max(1)) {
            return Arc::clone(p);
        }
        let p = Arc::new(WorkerPool::new(threads));
        pools.push(Arc::clone(&p));
        p
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &PoolInner, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the coordinator is blocked on the completion barrier until
        // this worker decrements `remaining` below, so the closure behind
        // `job.data` outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, worker) }));
        let mut st = lock(&inner.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            inner.done_cv.notify_all();
        }
    }
}

/// Renders an unwind payload as text: `panic!` with a literal yields `&str`,
/// formatted panics yield `String`; anything else gets a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, k) in [(10, 3), (1, 5), (0, 4), (7, 7), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn claims_every_task_heaviest_first() {
        let q = WorkQueue::new([5u64, 40, 10, 40, 0], 2);
        let mut seen = Vec::new();
        while let Some(c) = q.claim(0) {
            seen.push(c.task);
        }
        // Ties (the two weight-40 tasks) break by ascending id.
        assert_eq!(seen, vec![1, 3, 2, 0, 4]);
        assert!(q.claim(0).is_none(), "exhausted queue stays exhausted");
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn single_worker_never_steals() {
        let q = WorkQueue::new((0..20).map(|i| i as u64), 1);
        while let Some(c) = q.claim(0) {
            assert!(!c.stolen);
            assert_eq!(c.home, 0);
        }
    }

    #[test]
    fn claims_outside_home_segment_count_as_steals() {
        // 4 tasks, 2 workers: home segments are positions 0..2 and 2..4.
        let q = WorkQueue::new([0u64; 4], 2);
        let c = q.claim(0).unwrap();
        assert!(!c.stolen, "position 0 is worker 0's home");
        assert_eq!(c.home, 0);
        let c = q.claim(1).unwrap();
        assert!(c.stolen, "position 1 belongs to worker 0, claimed by worker 1");
        assert_eq!(c.home, 0);
        let c = q.claim(1).unwrap();
        assert!(!c.stolen, "position 2 is worker 1's home");
        assert_eq!(c.home, 1);
        let c = q.claim(0).unwrap();
        assert!(c.stolen, "position 3 belongs to worker 1, claimed by worker 0");
        assert_eq!(c.home, 1);
    }

    #[test]
    fn empty_and_surplus_workers() {
        let q = WorkQueue::new([], 4);
        assert!(q.is_empty());
        assert!(q.claim(3).is_none());
        // More workers than tasks: trailing workers own empty segments and
        // every claim they make is a steal from a worker that owns tasks.
        let q = WorkQueue::new([1u64, 1], 4);
        let c = q.claim(3).unwrap();
        assert!(c.stolen);
        assert_eq!(c.home, 0);
        let c = q.claim(2).unwrap();
        assert!(c.stolen);
        assert_eq!(c.home, 1);
        assert!(q.claim(0).is_none());
    }

    #[test]
    fn poison_latch_keeps_first_panic_and_counts_all() {
        let p = Poison::new();
        assert!(!p.is_poisoned());
        assert_eq!(p.panic_count(), 0);
        p.record("edge_tests", 7, Box::new("first boom"));
        p.record("edge_tests", 3, Box::new("second boom".to_string()));
        p.record("labeling", 1, Box::new("third boom"));
        assert!(p.is_poisoned());
        assert_eq!(p.panic_count(), 3);
        let s = p.take_summary().unwrap();
        assert_eq!(s.task, 7);
        assert_eq!(s.payload, "first boom");
        assert_eq!(s.phases, "edge_tests+labeling");
        assert_eq!(s.panic_count, 3);
        assert!(p.take_summary().is_none(), "summary drains the latch");
    }

    #[test]
    fn poison_latch_records_stall_messages() {
        let p = Poison::new();
        p.record_message("border_assign", 2, "stall watchdog: worker 2 wedged".into());
        assert!(p.is_poisoned());
        let s = p.take_summary().unwrap();
        assert_eq!(s.phases, "border_assign");
        assert_eq!(s.payload, "stall watchdog: worker 2 wedged");
        assert_eq!(s.panic_count, 1);
    }

    #[test]
    fn closed_queue_claims_nothing() {
        let q = WorkQueue::new([1u64, 2, 3], 2);
        assert!(!q.is_closed());
        assert!(q.claim(0).is_some());
        q.close();
        assert!(q.is_closed());
        assert!(q.claim(0).is_none());
        assert!(q.claim(1).is_none(), "close applies to every worker");
    }

    /// Loom-style interleaving check for the close/claim happens-before
    /// contract: a claim that *begins* after `close` has returned must yield
    /// `None`. Three claimer threads spin against a closer that publishes a
    /// marker flag (Release) immediately after closing; claimers read the
    /// marker (Acquire) *before* each claim, so any task handed out after
    /// the marker was visible is a genuine ordering violation.
    #[test]
    fn no_claim_succeeds_after_close_returns() {
        for _round in 0..200 {
            let q = WorkQueue::new((0..64).map(|_| 1u64), 4);
            let closed_seen = AtomicBool::new(false);
            std::thread::scope(|s| {
                for w in 0..3 {
                    let q = &q;
                    let closed_seen = &closed_seen;
                    s.spawn(move || loop {
                        let saw_close = closed_seen.load(Ordering::Acquire);
                        match q.claim(w) {
                            Some(_) if saw_close => {
                                panic!("claim begun after close() returned got a task")
                            }
                            Some(_) => std::hint::spin_loop(),
                            None => break,
                        }
                    });
                }
                s.spawn(|| {
                    std::hint::spin_loop();
                    q.close();
                    closed_seen.store(true, Ordering::Release);
                });
            });
        }
    }

    #[test]
    fn pool_runs_every_worker_exactly_once_per_phase() {
        let pool = WorkerPool::new(4);
        for _phase in 0..50 {
            let calls: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            pool.run_phase(&|w| {
                calls[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, c) in calls.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "worker {w}");
            }
        }
    }

    #[test]
    fn pool_barrier_makes_borrowed_results_visible() {
        // The completion barrier is the soundness argument for the erased
        // closure pointer: after run_phase returns, every worker's writes to
        // coordinator-frame state must be visible.
        let pool = WorkerPool::new(3);
        let mut totals = [0u64; 3];
        let slots: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        for round in 1..=10u64 {
            pool.run_phase(&|w| {
                *slots[w].lock().unwrap() = round * (w as u64 + 1);
            });
            for (w, slot) in slots.iter().enumerate() {
                totals[w] += *slot.lock().unwrap();
            }
        }
        assert_eq!(totals, [55, 110, 165]);
    }

    #[test]
    fn pool_single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let coordinator = std::thread::current().id();
        let mut ran_on = None;
        let ran = Mutex::new(&mut ran_on);
        pool.run_phase(&|w| {
            assert_eq!(w, 0);
            **ran.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(ran_on, Some(coordinator), "threads=1 must not hand off");
    }

    #[test]
    fn pool_reraises_escaped_panic_and_survives() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_phase(&|w| {
                if w == 0 {
                    panic!("escaped phase panic");
                }
            });
        }))
        .unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "escaped phase panic");
        // The pool must still be fully usable: no dead worker, no stuck epoch.
        let calls = AtomicU64::new(0);
        pool.run_phase(&|_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_global_caches_by_thread_count() {
        let a = WorkerPool::global(2);
        let b = WorkerPool::global(2);
        assert!(Arc::ptr_eq(&a, &b), "same count must share one pool");
        let c = WorkerPool::global(3);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(WorkerPool::global(0).threads(), 1, "count clamps to ≥ 1");
    }

    #[test]
    fn pool_drop_joins_workers() {
        let before = std::fs::read_dir("/proc/self/task").map(|d| d.count());
        {
            let pool = WorkerPool::new(4);
            pool.run_phase(&|_| {});
        }
        // Linux-only observability; skip silently elsewhere.
        if let (Ok(before), Ok(after)) = (
            before,
            std::fs::read_dir("/proc/self/task").map(|d| d.count()),
        ) {
            assert!(
                after <= before,
                "dropping the pool must join its threads ({before} -> {after})"
            );
        }
    }

    #[test]
    fn panic_message_handles_payload_kinds() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42u32), "<non-string panic payload>");
    }

    #[test]
    fn concurrent_claims_partition_the_tasks() {
        let q = WorkQueue::new((0..1000).map(|_| 1u64), 4);
        let chunks: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|w| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(c) = q.claim(w) {
                            mine.push(c.task);
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u32> = chunks.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<u32>>());
    }
}
