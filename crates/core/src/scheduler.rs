//! Std-only work-stealing task scheduler for the parallel DBSCAN phases.
//!
//! The parallel layer used to split every phase into `threads` *static
//! contiguous chunks* of cells. On the skewed cell populations the paper's
//! seed-spreader data produces (a few cells holding most of the points), a
//! static split routinely hands one worker the dense core of the dataset and
//! leaves the rest idle — the phase then runs at the speed of its unluckiest
//! chunk. [`WorkQueue`] replaces that with *self-scheduling over a
//! priority-ordered task list*:
//!
//! * tasks (cells, or per-cell bundles of ε-neighbor pair tests) are sorted
//!   heaviest-first by a caller-supplied weight (point count, or the
//!   Σ|a|·|b| brute-force cost bound of a cell's candidate pairs);
//! * workers claim tasks one at a time through a single shared atomic index —
//!   a worker that finishes early immediately claims the next-heaviest
//!   unclaimed task instead of idling at a chunk barrier.
//!
//! This is the classic guided/self-scheduling scheme (the degenerate but
//! effective end of work stealing: one global deque, steals are `fetch_add`s),
//! chosen over per-worker deques because it needs nothing beyond
//! `AtomicUsize` — no extra dependencies, consistent with the workspace's
//! offline `*-compat` policy — and because the heaviest-first order bounds
//! the finish-time spread by the weight of a single task.
//!
//! **Steal accounting.** For observability, each worker is assigned a *home
//! segment*: the contiguous slice of the priority order that static chunking
//! would have given it. A claim that lands outside the claimer's home segment
//! is counted as *stolen* ([`Counter::TasksStolen`] — see [`crate::stats`]):
//! it is exactly the work the old static split would have placed on a
//! different (possibly still busy) thread. A perfectly balanced workload
//! reports zero steals; skew shows up as a positive count.
//!
//! [`Counter::TasksStolen`]: crate::stats::Counter::TasksStolen

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Splits `0..n` into at most `k` contiguous, gap-free ranges.
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A priority-ordered task list consumed through a shared atomic claim index.
///
/// Task ids are `0..weights.len()` (`u32`); iteration order is heaviest
/// weight first (ties by ascending id, so the order — though not the
/// claim timing — is deterministic).
pub struct WorkQueue {
    /// Task ids, heaviest first.
    order: Vec<u32>,
    /// Position in `order` of the next unclaimed task.
    next: AtomicUsize,
    /// Home-segment boundaries for steal accounting: worker `w` of the
    /// construction-time worker count owns positions `bounds[w]..bounds[w+1]`.
    bounds: Vec<usize>,
}

impl WorkQueue {
    /// Builds a queue over tasks `0..weights.len()` for `workers` claimants.
    pub fn new(weights: impl IntoIterator<Item = u64>, workers: usize) -> Self {
        let weights: Vec<u64> = weights.into_iter().collect();
        let mut order: Vec<u32> = (0..weights.len() as u32).collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(weights[t as usize]), t));

        let workers = workers.max(1);
        let mut bounds = vec![0usize; workers + 1];
        for (w, range) in chunk_ranges(order.len(), workers).into_iter().enumerate() {
            bounds[w + 1] = range.end;
        }
        // `chunk_ranges` caps the chunk count at the task count; surplus
        // workers own an empty segment at the end.
        for w in 1..=workers {
            bounds[w] = bounds[w].max(bounds[w - 1]);
        }
        WorkQueue {
            order,
            next: AtomicUsize::new(0),
            bounds,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the queue was built over zero tasks.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Claims the next unclaimed task for `worker`, or `None` when the list
    /// is exhausted.
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        let pos = self.next.fetch_add(1, Ordering::Relaxed);
        if pos >= self.order.len() {
            return None;
        }
        let stolen = pos < self.bounds[worker] || pos >= self.bounds[worker + 1];
        // Last segment whose start is ≤ pos. Empty segments share their start
        // with the following non-empty one, so the owner found is the worker
        // whose (non-empty) home actually contains the position.
        let home = self.bounds.partition_point(|&b| b <= pos) - 1;
        Some(Claim {
            task: self.order[pos],
            stolen,
            home,
        })
    }
}

/// One claimed task: the id, whether the claim fell outside the claimer's
/// home segment (a "steal" — see the module docs), and which worker's home
/// segment held the claimed position (the task's would-be owner under static
/// chunking — trace events report it so steal patterns are attributable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Claim {
    pub task: u32,
    pub stolen: bool,
    pub home: usize,
}

/// First-panic latch shared by the workers of one parallel stage.
///
/// Every task body runs under `std::panic::catch_unwind`; a worker whose task
/// panics records the failure here and stops claiming, and the *other*
/// workers observe [`Poison::is_poisoned`] before each claim and drain
/// cooperatively — no `JoinHandle::join` ever propagates a panic, no thread is
/// torn down mid-update, and the driver converts the recorded first failure
/// into [`crate::DbscanError::WorkerPanicked`] (or falls back sequentially,
/// per [`crate::RecoveryPolicy`]).
#[derive(Default)]
pub struct Poison {
    poisoned: AtomicBool,
    panics: AtomicU64,
    first: Mutex<Option<(u32, String)>>,
}

impl Poison {
    /// A fresh, unpoisoned latch.
    pub fn new() -> Self {
        Poison::default()
    }

    /// Whether any worker has recorded a panic. Checked by workers before
    /// each claim; once true, the stage's result will be discarded, so
    /// remaining tasks are skipped rather than executed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Records a panic of `task` with the given unwind payload. The first
    /// recorded panic wins the latch; later ones only bump the count.
    pub fn record(&self, task: u32, payload: Box<dyn Any + Send>) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.first.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some((task, panic_message(payload.as_ref())));
        }
        drop(slot);
        self.poisoned.store(true, Ordering::Release);
    }

    /// Total number of recorded panics (≥ 1 iff poisoned).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// The first recorded `(task, payload)`, if any. Call after all workers
    /// have been joined.
    pub fn take_first(&self) -> Option<(u32, String)> {
        self.first
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }
}

/// Renders an unwind payload as text: `panic!` with a literal yields `&str`,
/// formatted panics yield `String`; anything else gets a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, k) in [(10, 3), (1, 5), (0, 4), (7, 7), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn claims_every_task_heaviest_first() {
        let q = WorkQueue::new([5u64, 40, 10, 40, 0], 2);
        let mut seen = Vec::new();
        while let Some(c) = q.claim(0) {
            seen.push(c.task);
        }
        // Ties (the two weight-40 tasks) break by ascending id.
        assert_eq!(seen, vec![1, 3, 2, 0, 4]);
        assert!(q.claim(0).is_none(), "exhausted queue stays exhausted");
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn single_worker_never_steals() {
        let q = WorkQueue::new((0..20).map(|i| i as u64), 1);
        while let Some(c) = q.claim(0) {
            assert!(!c.stolen);
            assert_eq!(c.home, 0);
        }
    }

    #[test]
    fn claims_outside_home_segment_count_as_steals() {
        // 4 tasks, 2 workers: home segments are positions 0..2 and 2..4.
        let q = WorkQueue::new([0u64; 4], 2);
        let c = q.claim(0).unwrap();
        assert!(!c.stolen, "position 0 is worker 0's home");
        assert_eq!(c.home, 0);
        let c = q.claim(1).unwrap();
        assert!(c.stolen, "position 1 belongs to worker 0, claimed by worker 1");
        assert_eq!(c.home, 0);
        let c = q.claim(1).unwrap();
        assert!(!c.stolen, "position 2 is worker 1's home");
        assert_eq!(c.home, 1);
        let c = q.claim(0).unwrap();
        assert!(c.stolen, "position 3 belongs to worker 1, claimed by worker 0");
        assert_eq!(c.home, 1);
    }

    #[test]
    fn empty_and_surplus_workers() {
        let q = WorkQueue::new([], 4);
        assert!(q.is_empty());
        assert!(q.claim(3).is_none());
        // More workers than tasks: trailing workers own empty segments and
        // every claim they make is a steal from a worker that owns tasks.
        let q = WorkQueue::new([1u64, 1], 4);
        let c = q.claim(3).unwrap();
        assert!(c.stolen);
        assert_eq!(c.home, 0);
        let c = q.claim(2).unwrap();
        assert!(c.stolen);
        assert_eq!(c.home, 1);
        assert!(q.claim(0).is_none());
    }

    #[test]
    fn poison_latch_keeps_first_panic_and_counts_all() {
        let p = Poison::new();
        assert!(!p.is_poisoned());
        assert_eq!(p.panic_count(), 0);
        p.record(7, Box::new("first boom"));
        p.record(3, Box::new("second boom".to_string()));
        assert!(p.is_poisoned());
        assert_eq!(p.panic_count(), 2);
        assert_eq!(p.take_first(), Some((7, "first boom".to_string())));
    }

    #[test]
    fn panic_message_handles_payload_kinds() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42u32), "<non-string panic payload>");
    }

    #[test]
    fn concurrent_claims_partition_the_tasks() {
        let q = WorkQueue::new((0..1000).map(|_| 1u64), 4);
        let chunks: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|w| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(c) = q.claim(w) {
                            mine.push(c.task);
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u32> = chunks.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<u32>>());
    }
}
