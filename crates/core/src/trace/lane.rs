//! Bounded per-worker event lanes: preallocated slots, lock-free append,
//! drop-on-full with an explicit counter.
//!
//! A [`TraceLane`] is the storage behind one timeline track of the
//! [`Tracer`](super::Tracer). Each lane has **one writer at a time** — the
//! recorder hands lane `0` to the coordinating (sequential) thread and lane
//! `w + 1` to parallel worker `w`, and a stage's workers are joined before
//! the coordinator records again — so an append is a handful of relaxed
//! stores plus one release bump of the length. There is no allocation, no
//! lock, and no retry loop on the hot path; every word is an atomic, so even
//! a misuse that aimed two writers at one lane could corrupt at most the
//! contents of a slot, never memory safety. A full lane *drops* the event and
//! counts it ([`TraceLane::dropped`]) instead of blocking or growing: earlier
//! events stay intact, and the exporters surface the loss as
//! `events_dropped`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One recorded event, packed into four words (32 bytes):
/// `[ts_ns, dur_ns, meta, args]`. The meta/args encodings are owned by
/// [`super::Tracer`]; the lane only stores and replays them.
pub(crate) type RawEvent = [u64; 4];

/// A fixed-capacity, single-writer, lock-free event buffer.
pub struct TraceLane {
    slots: Box<[[AtomicU64; 4]]>,
    /// Number of fully-written slots. The writer publishes a slot with a
    /// release store here; readers acquire it before decoding.
    len: AtomicUsize,
    /// Events discarded because the lane was full.
    dropped: AtomicU64,
}

impl TraceLane {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceLane {
            slots: (0..capacity).map(|_| [const { AtomicU64::new(0) }; 4]).collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event, or drops it (bumping the drop counter) when the
    /// lane is full. Never blocks, never allocates.
    #[inline]
    pub(crate) fn push(&self, ev: RawEvent) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[i];
        for (word, &v) in slot.iter().zip(ev.iter()) {
            word.store(v, Ordering::Relaxed);
        }
        self.len.store(i + 1, Ordering::Release);
    }

    /// Number of recorded (published) events.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because the lane was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Decodes the published events, oldest first.
    pub(crate) fn events(&self) -> Vec<RawEvent> {
        let n = self.len();
        self.slots[..n]
            .iter()
            .map(|slot| {
                let mut ev = [0u64; 4];
                for (v, word) in ev.iter_mut().zip(slot.iter()) {
                    *v = word.load(Ordering::Relaxed);
                }
                ev
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let lane = TraceLane::new(4);
        lane.push([1, 2, 3, 4]);
        lane.push([5, 6, 7, 8]);
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.events(), vec![[1, 2, 3, 4], [5, 6, 7, 8]]);
        assert_eq!(lane.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_without_corrupting() {
        let lane = TraceLane::new(2);
        lane.push([10, 0, 0, 0]);
        lane.push([20, 0, 0, 0]);
        lane.push([30, 0, 0, 0]);
        lane.push([40, 0, 0, 0]);
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.dropped(), 2);
        // The first two events are intact.
        assert_eq!(lane.events()[0][0], 10);
        assert_eq!(lane.events()[1][0], 20);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let lane = TraceLane::new(0);
        lane.push([1, 1, 1, 1]);
        assert!(lane.is_empty());
        assert_eq!(lane.dropped(), 1);
    }
}
