//! Log2-bucketed histograms for the latency/size distributions the aggregate
//! counters cannot show: task wall times, per-edge BCP test times, and
//! neighbor-list sizes.
//!
//! Bucket `b` counts values in `[2^b, 2^(b+1))` (bucket 0 additionally holds
//! the value 0), so 64 buckets cover the whole `u64` range; recording is one
//! relaxed `fetch_add` plus a min/max update, cheap enough for per-edge
//! sites. Rendered into the `histograms` section of the `dbscan-stats/v7`
//! envelope and the `repro trace` summary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (covers all of `u64`).
pub const NUM_BUCKETS: usize = 64;

/// The distributions the tracer collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistKind {
    /// Wall time of one parallel task (labeling / edge / border), nanoseconds.
    TaskNanos,
    /// Wall time of one edge test (BCP predicate, NN probe, or counter
    /// probe), nanoseconds.
    EdgeTestNanos,
    /// Result size of one region query (KDD'96 and the CIT08 local runs) —
    /// the per-query view of `range_points_returned`.
    NeighborListLen,
}

impl HistKind {
    pub const COUNT: usize = 3;

    pub const ALL: [HistKind; HistKind::COUNT] = [
        HistKind::TaskNanos,
        HistKind::EdgeTestNanos,
        HistKind::NeighborListLen,
    ];

    /// Stable snake_case key used in the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::TaskNanos => "task_nanos",
            HistKind::EdgeTestNanos => "edge_test_nanos",
            HistKind::NeighborListLen => "neighbor_list_len",
        }
    }
}

/// Bucket index of a value: `floor(log2(v))`, with 0 mapped to bucket 0.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Lower bound of bucket `b` (the value the JSON renders as the bucket key).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << b
    }
}

/// One atomic histogram per [`HistKind`], shareable across worker threads.
pub struct Histograms {
    buckets: Box<[AtomicU64]>, // HistKind::COUNT * NUM_BUCKETS, flat
    mins: [AtomicU64; HistKind::COUNT],
    maxs: [AtomicU64; HistKind::COUNT],
}

impl Default for Histograms {
    fn default() -> Self {
        Self::new()
    }
}

impl Histograms {
    pub fn new() -> Self {
        Histograms {
            buckets: (0..HistKind::COUNT * NUM_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            mins: [const { AtomicU64::new(u64::MAX) }; HistKind::COUNT],
            maxs: [const { AtomicU64::new(0) }; HistKind::COUNT],
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, kind: HistKind, value: u64) {
        let k = kind as usize;
        self.buckets[k * NUM_BUCKETS + bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.mins[k].fetch_min(value, Ordering::Relaxed);
        self.maxs[k].fetch_max(value, Ordering::Relaxed);
    }

    /// Immutable snapshot of one distribution.
    pub fn snapshot(&self, kind: HistKind) -> HistSnapshot {
        let k = kind as usize;
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for b in 0..NUM_BUCKETS {
            let c = self.buckets[k * NUM_BUCKETS + b].load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_floor(b), c));
                count += c;
            }
        }
        let min = self.mins[k].load(Ordering::Relaxed);
        HistSnapshot {
            count,
            min: if count == 0 { 0 } else { min },
            max: self.maxs[k].load(Ordering::Relaxed),
            buckets,
        }
    }

    /// The `histograms` JSON object of the `dbscan-stats/v7` envelope: one
    /// member per [`HistKind::ALL`] entry (present even when empty, for
    /// schema stability), each with `count`, `min`, `max`, and the sparse
    /// `buckets` array of `[bucket_lower_bound, count]` pairs in ascending
    /// bucket order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, kind) in HistKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.snapshot(*kind);
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"buckets\":[",
                kind.name(),
                s.count,
                s.min,
                s.max
            ));
            for (j, (floor, c)) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{floor},{c}]"));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Decoded view of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// `(bucket_lower_bound, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(10), 1024);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histograms::new();
        for v in [0, 1, 5, 5, 1024] {
            h.record(HistKind::TaskNanos, v);
        }
        let s = h.snapshot(HistKind::TaskNanos);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets, vec![(0, 2), (4, 2), (1024, 1)]);
        // Other kinds stay empty.
        let e = h.snapshot(HistKind::EdgeTestNanos);
        assert_eq!(e.count, 0);
        assert_eq!((e.min, e.max), (0, 0));
        assert!(e.buckets.is_empty());
    }

    #[test]
    fn json_has_all_kinds_and_stable_shape() {
        let h = Histograms::new();
        h.record(HistKind::NeighborListLen, 7);
        let j = h.to_json();
        for kind in HistKind::ALL {
            assert!(j.contains(&format!("\"{}\":{{\"count\":", kind.name())));
        }
        assert!(j.contains("\"neighbor_list_len\":{\"count\":1,\"min\":7,\"max\":7,\"buckets\":[[4,1]]}"));
    }
}
