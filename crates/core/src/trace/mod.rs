//! Event-level tracing: per-worker timelines behind the same
//! zero-overhead-when-disabled discipline as [`crate::stats`].
//!
//! The aggregate phase/counter layer answers *how much*; this module answers
//! *when and on which worker*. It records two event shapes into bounded
//! per-worker ring buffers ([`lane::TraceLane`]):
//!
//! * **spans** — phase spans on the coordinator timeline (lane 0, one per
//!   [`Phase`] measurement the stats layer takes) and per-task spans on the
//!   worker timelines (lane `w + 1` for worker `w`), carrying the task id,
//!   its payload size (cell population or pair-cost weight), the claiming
//!   worker's home segment, and whether the claim was a steal;
//! * **instants** — point events for steals, `uf_cas_retries` bursts,
//!   poison-latch trips, worker panics, and sequential fallbacks.
//!
//! The recording interface is [`TraceSink`], mirroring [`StatsSink`]: an
//! associated `const TRACE_ENABLED` decides every site at monomorphization
//! time. [`NoTrace`] is the canonical disabled sink; [`StatsSink`] has
//! [`TraceSink`] as a supertrait, with [`NoStats`] and [`Stats`] carrying
//! disabled impls — so every existing `S: StatsSink` entry point accepts a
//! tracing sink without a signature change, and uninstrumented runs compile
//! to the exact pre-trace code. [`TracedStats`] bundles a [`Stats`] with a
//! [`Tracer`] and enables both.
//!
//! Buffers are bounded and never block the hot path: a full lane drops the
//! event and bumps `events_dropped` (visible in the v4 stats envelope and
//! both exporters). Log2 duration/size histograms ([`hist::Histograms`])
//! ride along. Export to Chrome trace-event JSON or folded flamegraph stacks
//! via [`export`].

pub mod export;
pub mod hist;
pub mod lane;

use crate::stats::{NoStats, Phase, Stats, StatsSink};
use hist::{HistKind, Histograms};
use lane::{RawEvent, TraceLane};
use std::time::Instant;

/// Default per-lane capacity in events (32 bytes each → 2 MiB per lane).
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// The name of a recorded event. Span names first (the seven phases share
/// the [`Phase`] discriminants, then the three parallel task kinds), instant
/// names after.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventName {
    PhaseGridBuild,
    PhaseLabeling,
    PhaseStructureBuild,
    PhaseEdgeTests,
    PhaseUnionFind,
    PhaseBorderAssign,
    PhaseTotal,
    /// One claimed labeling task (a grid cell).
    TaskLabeling,
    /// One claimed edge task (a core cell's candidate-pair bundle).
    TaskEdge,
    /// One claimed border-assignment task (a grid cell).
    TaskBorder,
    /// A claim outside the claimer's home segment.
    Steal,
    /// A task whose unions lost ≥ 1 root-link CAS race (arg1 = retry count).
    UfCasRetries,
    /// A worker observed the poison latch and drained.
    PoisonTrip,
    /// A task panicked and was caught by the stage envelope.
    WorkerPanic,
    /// The driver re-ran the algorithm sequentially after a worker panic.
    SequentialFallback,
    /// The stall watchdog saw a worker make no progress past the threshold
    /// (arg0 = worker, arg1 = heartbeat age in milliseconds).
    Stall,
}

impl EventName {
    pub const COUNT: usize = 16;

    /// The span name recording a [`Phase`] measurement.
    pub fn of_phase(p: Phase) -> EventName {
        match p {
            Phase::GridBuild => EventName::PhaseGridBuild,
            Phase::Labeling => EventName::PhaseLabeling,
            Phase::StructureBuild => EventName::PhaseStructureBuild,
            Phase::EdgeTests => EventName::PhaseEdgeTests,
            Phase::UnionFind => EventName::PhaseUnionFind,
            Phase::BorderAssign => EventName::PhaseBorderAssign,
            Phase::Total => EventName::PhaseTotal,
        }
    }

    /// The phase a phase-span name records, if it is one.
    pub fn as_phase(self) -> Option<Phase> {
        Phase::ALL.into_iter().find(|&p| EventName::of_phase(p) == self)
    }

    /// Stable snake_case label used by both exporters. Phase spans reuse the
    /// [`Phase::name`] keys so traces and stats JSON line up.
    pub fn label(self) -> &'static str {
        match self {
            EventName::PhaseGridBuild => "grid_build",
            EventName::PhaseLabeling => "labeling",
            EventName::PhaseStructureBuild => "structure_build",
            EventName::PhaseEdgeTests => "edge_tests",
            EventName::PhaseUnionFind => "union_find",
            EventName::PhaseBorderAssign => "border_assign",
            EventName::PhaseTotal => "total",
            EventName::TaskLabeling => "task_labeling",
            EventName::TaskEdge => "task_edge",
            EventName::TaskBorder => "task_border",
            EventName::Steal => "steal",
            EventName::UfCasRetries => "uf_cas_retries",
            EventName::PoisonTrip => "poison_trip",
            EventName::WorkerPanic => "worker_panic",
            EventName::SequentialFallback => "sequential_fallback",
            EventName::Stall => "stall",
        }
    }

    /// Whether this name records a span (`ph: "X"`) rather than an instant.
    pub fn is_span(self) -> bool {
        (self as usize) <= EventName::TaskBorder as usize
    }

    /// JSON keys of the two packed `u32` args, for the Chrome exporter.
    pub(crate) fn arg_keys(self) -> [Option<&'static str>; 2] {
        match self {
            EventName::TaskLabeling | EventName::TaskEdge | EventName::TaskBorder => {
                [Some("task"), Some("payload")]
            }
            EventName::Steal => [Some("task"), Some("home")],
            EventName::UfCasRetries => [Some("task"), Some("retries")],
            EventName::WorkerPanic => [Some("task"), None],
            EventName::Stall => [Some("worker"), Some("age_ms")],
            _ => [None, None],
        }
    }

    fn from_u8(v: u8) -> Option<EventName> {
        const ALL: [EventName; EventName::COUNT] = [
            EventName::PhaseGridBuild,
            EventName::PhaseLabeling,
            EventName::PhaseStructureBuild,
            EventName::PhaseEdgeTests,
            EventName::PhaseUnionFind,
            EventName::PhaseBorderAssign,
            EventName::PhaseTotal,
            EventName::TaskLabeling,
            EventName::TaskEdge,
            EventName::TaskBorder,
            EventName::Steal,
            EventName::UfCasRetries,
            EventName::PoisonTrip,
            EventName::WorkerPanic,
            EventName::SequentialFallback,
            EventName::Stall,
        ];
        ALL.get(v as usize).copied()
    }
}

/// One decoded event of a [`TraceSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timeline track: 0 = coordinator, `w + 1` = parallel worker `w`.
    pub lane: u32,
    /// Start (spans) or occurrence (instants) time, nanoseconds since the
    /// tracer's origin.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    pub name: EventName,
    /// First packed argument (task id for task spans and most instants).
    pub arg0: u32,
    /// Second packed argument (payload size, home segment, or retry count).
    pub arg1: u32,
    /// Task spans: the claim fell outside the worker's home segment.
    pub stolen: bool,
    /// Task spans: the worker whose home segment held the claimed position
    /// (saturated at 255).
    pub home: u8,
}

impl TraceEvent {
    /// End of the span (`ts + dur`); equals `ts_ns` for instants.
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }

    fn encode(&self) -> RawEvent {
        let meta = (self.name as u64) << 8
            | u64::from(self.stolen) << 16
            | (self.home as u64) << 24
            | (self.lane as u64) << 32;
        let args = self.arg0 as u64 | (self.arg1 as u64) << 32;
        [self.ts_ns, self.dur_ns, meta, args]
    }

    fn decode(lane: u32, raw: RawEvent) -> Option<TraceEvent> {
        let name = EventName::from_u8((raw[2] >> 8) as u8)?;
        Some(TraceEvent {
            lane,
            ts_ns: raw[0],
            dur_ns: raw[1],
            name,
            arg0: raw[3] as u32,
            arg1: (raw[3] >> 32) as u32,
            stolen: (raw[2] >> 16) & 1 == 1,
            home: (raw[2] >> 24) as u8,
        })
    }
}

/// Decoded, export-ready view of a finished [`Tracer`].
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// All events, sorted by `(lane, ts, descending dur)` so a lane's spans
    /// appear outermost-first.
    pub events: Vec<TraceEvent>,
    /// Number of lanes the tracer was built with (including empty ones).
    pub num_lanes: usize,
    /// Events dropped across all lanes because a buffer was full.
    pub events_dropped: u64,
}

/// The event recorder: an origin timestamp, one bounded [`TraceLane`] per
/// timeline, and the shared [`Histograms`]. Shareable across worker threads
/// (all state is atomic); each lane expects a single writer at a time (see
/// [`lane`]).
pub struct Tracer {
    origin: Instant,
    lanes: Box<[TraceLane]>,
    hists: Histograms,
}

impl Tracer {
    /// A tracer with `lanes` timelines (clamped to ≥ 1) of
    /// [`DEFAULT_LANE_CAPACITY`] events each. Use one lane for sequential
    /// runs, `threads + 1` for parallel ones.
    pub fn new(lanes: usize) -> Self {
        Tracer::with_capacity(lanes, DEFAULT_LANE_CAPACITY)
    }

    /// [`Tracer::new`] with an explicit per-lane event capacity.
    pub fn with_capacity(lanes: usize, events_per_lane: usize) -> Self {
        Tracer {
            origin: Instant::now(),
            lanes: (0..lanes.max(1))
                .map(|_| TraceLane::new(events_per_lane))
                .collect(),
            hists: Histograms::new(),
        }
    }

    /// Number of timelines.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds from the tracer's origin to `t` (0 for instants that
    /// precede it).
    #[inline]
    pub fn ts_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Nanoseconds from the tracer's origin to now.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    #[inline]
    fn lane(&self, lane: usize) -> &TraceLane {
        // Out-of-range lanes (a caller sized the tracer below its worker
        // count) clamp to the last lane rather than panicking mid-stage.
        &self.lanes[lane.min(self.lanes.len() - 1)]
    }

    /// Records a span on `lane`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        lane: usize,
        name: EventName,
        ts_ns: u64,
        dur_ns: u64,
        args: [u32; 2],
        stolen: bool,
        home: u8,
    ) {
        self.lane(lane).push(
            TraceEvent {
                lane: lane as u32,
                ts_ns,
                dur_ns,
                name,
                arg0: args[0],
                arg1: args[1],
                stolen,
                home,
            }
            .encode(),
        );
    }

    /// Records an instant event on `lane`, timestamped now.
    #[inline]
    pub fn instant(&self, lane: usize, name: EventName, args: [u32; 2]) {
        self.span(lane, name, self.now_ns(), 0, args, false, 0);
    }

    /// Records one histogram observation.
    #[inline]
    pub fn record_hist(&self, kind: HistKind, value: u64) {
        self.hists.record(kind, value);
    }

    /// The shared histograms.
    pub fn histograms(&self) -> &Histograms {
        &self.hists
    }

    /// Total events dropped across all lanes.
    pub fn events_dropped(&self) -> u64 {
        self.lanes.iter().map(TraceLane::dropped).sum()
    }

    /// Decodes every lane into an export-ready snapshot. Call after the
    /// traced run finished (worker threads joined).
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events = Vec::new();
        for (li, lane) in self.lanes.iter().enumerate() {
            events.extend(
                lane.events()
                    .into_iter()
                    .filter_map(|raw| TraceEvent::decode(li as u32, raw)),
            );
        }
        events.sort_by_key(|e| (e.lane, e.ts_ns, std::cmp::Reverse(e.dur_ns)));
        TraceSnapshot {
            events,
            num_lanes: self.lanes.len(),
            events_dropped: self.events_dropped(),
        }
    }
}

/// Recording interface for trace events, threaded through the same generic
/// parameter as [`StatsSink`] (its supertrait bound). `TRACE_ENABLED` is an
/// associated const, so with a disabled sink ([`NoTrace`], [`NoStats`], or a
/// plain [`Stats`]) every helper below folds to nothing at monomorphization
/// time and the hot path is untouched.
pub trait TraceSink: Sync {
    const TRACE_ENABLED: bool;

    /// The recorder, when tracing is live.
    fn tracer(&self) -> Option<&Tracer>;

    /// `Instant::now()` only when tracing — the start of a prospective span.
    #[inline(always)]
    fn trace_start(&self) -> Option<Instant> {
        if Self::TRACE_ENABLED {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records a span of `dur_ns` that began at `start` on `lane`.
    #[inline(always)]
    fn trace_span_from(&self, lane: usize, name: EventName, start: Instant, dur_ns: u64) {
        if Self::TRACE_ENABLED {
            if let Some(t) = self.tracer() {
                t.span(lane, name, t.ts_of(start), dur_ns, [0, 0], false, 0);
            }
        }
    }

    /// Records a parallel task span (and its wall time into the
    /// [`HistKind::TaskNanos`] histogram). `payload` saturates at `u32::MAX`,
    /// `home` at 255.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn trace_task_span(
        &self,
        lane: usize,
        name: EventName,
        start: Option<Instant>,
        task: u32,
        payload: u64,
        stolen: bool,
        home: usize,
    ) {
        if Self::TRACE_ENABLED {
            if let (Some(start), Some(t)) = (start, self.tracer()) {
                let dur = start.elapsed().as_nanos() as u64;
                t.span(
                    lane,
                    name,
                    t.ts_of(start),
                    dur,
                    [task, payload.min(u32::MAX as u64) as u32],
                    stolen,
                    home.min(255) as u8,
                );
                t.record_hist(HistKind::TaskNanos, dur);
            }
        }
    }

    /// Records an instant event, timestamped now.
    #[inline(always)]
    fn trace_instant(&self, lane: usize, name: EventName, args: [u32; 2]) {
        if Self::TRACE_ENABLED {
            if let Some(t) = self.tracer() {
                t.instant(lane, name, args);
            }
        }
    }

    /// Records one histogram observation.
    #[inline(always)]
    fn trace_hist(&self, kind: HistKind, value: u64) {
        if Self::TRACE_ENABLED {
            if let Some(t) = self.tracer() {
                t.record_hist(kind, value);
            }
        }
    }

    /// Renders the sequential connect loop's three-way time attribution (see
    /// [`crate::cells::connect_core_cells_instrumented`]) as three
    /// consecutive coordinator sub-spans laid out from the loop's start —
    /// synthetic placement, exact durations, so per-phase span totals equal
    /// the stats phase nanos.
    #[inline(always)]
    fn trace_connect_spans(&self, start: Instant, edge_ns: u64, union_ns: u64, structure_ns: u64) {
        if Self::TRACE_ENABLED {
            if let Some(t) = self.tracer() {
                let base = t.ts_of(start);
                if edge_ns > 0 {
                    t.span(0, EventName::PhaseEdgeTests, base, edge_ns, [0, 0], false, 0);
                }
                if union_ns > 0 {
                    t.span(
                        0,
                        EventName::PhaseUnionFind,
                        base + edge_ns,
                        union_ns,
                        [0, 0],
                        false,
                        0,
                    );
                }
                if structure_ns > 0 {
                    t.span(
                        0,
                        EventName::PhaseStructureBuild,
                        base + edge_ns + union_ns,
                        structure_ns,
                        [0, 0],
                        false,
                        0,
                    );
                }
            }
        }
    }
}

/// The canonical disabled recorder: every [`TraceSink`] site compiles away.
/// ([`NoStats`] and [`Stats`] carry the same disabled impl, so existing
/// stats-only callers are unaffected by the trace layer.)
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const TRACE_ENABLED: bool = false;

    #[inline(always)]
    fn tracer(&self) -> Option<&Tracer> {
        None
    }
}

impl TraceSink for NoStats {
    const TRACE_ENABLED: bool = false;

    #[inline(always)]
    fn tracer(&self) -> Option<&Tracer> {
        None
    }
}

impl TraceSink for Stats {
    const TRACE_ENABLED: bool = false;

    #[inline(always)]
    fn tracer(&self) -> Option<&Tracer> {
        None
    }
}

/// A [`Stats`] collector paired with a live [`Tracer`]: the sink the CLI and
/// `repro trace` pass to the `*_instrumented` entry points when `--trace` is
/// on. Implements [`StatsSink`] (delegating to `stats`) and a *recording*
/// [`TraceSink`].
#[derive(Default)]
pub struct TracedStats {
    pub stats: Stats,
    pub tracer: Tracer,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(1)
    }
}

impl TracedStats {
    /// A traced collector with `lanes` timelines (1 for sequential runs,
    /// `threads + 1` for parallel ones).
    pub fn new(lanes: usize) -> Self {
        TracedStats {
            stats: Stats::new(),
            tracer: Tracer::new(lanes),
        }
    }

    /// [`TracedStats::new`] with an explicit per-lane event capacity.
    pub fn with_capacity(lanes: usize, events_per_lane: usize) -> Self {
        TracedStats {
            stats: Stats::new(),
            tracer: Tracer::with_capacity(lanes, events_per_lane),
        }
    }
}

impl StatsSink for TracedStats {
    const ENABLED: bool = true;

    #[inline]
    fn add(&self, c: crate::stats::Counter, n: u64) {
        self.stats.add(c, n);
    }

    #[inline]
    fn add_phase_nanos(&self, p: Phase, nanos: u64) {
        self.stats.add_phase_nanos(p, nanos);
    }
}

impl TraceSink for TracedStats {
    const TRACE_ENABLED: bool = true;

    #[inline]
    fn tracer(&self) -> Option<&Tracer> {
        Some(&self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip_through_lane_encoding() {
        let ev = TraceEvent {
            lane: 3,
            ts_ns: 123_456_789,
            dur_ns: 42,
            name: EventName::TaskEdge,
            arg0: 17,
            arg1: 9_001,
            stolen: true,
            home: 2,
        };
        let decoded = TraceEvent::decode(3, ev.encode()).unwrap();
        assert_eq!(decoded, ev);
    }

    #[test]
    fn name_table_is_consistent() {
        for i in 0..EventName::COUNT {
            let n = EventName::from_u8(i as u8).unwrap();
            assert_eq!(n as usize, i);
        }
        assert!(EventName::from_u8(EventName::COUNT as u8).is_none());
        for p in Phase::ALL {
            let n = EventName::of_phase(p);
            assert!(n.is_span());
            assert_eq!(n.as_phase(), Some(p));
            assert_eq!(n.label(), p.name());
        }
        assert!(!EventName::Steal.is_span());
        assert!(EventName::TaskBorder.is_span());
    }

    #[test]
    fn tracer_records_spans_and_instants() {
        let t = Tracer::with_capacity(2, 16);
        let start = Instant::now();
        t.span(0, EventName::PhaseTotal, t.ts_of(start), 1_000, [0, 0], false, 0);
        t.instant(1, EventName::Steal, [7, 1]);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.num_lanes, 2);
        assert_eq!(snap.events_dropped, 0);
        assert_eq!(snap.events[0].name, EventName::PhaseTotal);
        assert_eq!(snap.events[1].lane, 1);
        assert_eq!(snap.events[1].arg0, 7);
        assert_eq!(snap.events[1].dur_ns, 0);
    }

    #[test]
    fn lane_index_clamps_instead_of_panicking() {
        let t = Tracer::with_capacity(1, 4);
        t.instant(9, EventName::PoisonTrip, [0, 0]);
        assert_eq!(t.snapshot().events.len(), 1);
        assert_eq!(t.snapshot().events[0].lane, 0);
    }

    #[test]
    fn disabled_sinks_record_nothing() {
        assert!(NoTrace.tracer().is_none());
        assert!(TraceSink::tracer(&NoStats).is_none());
        assert!(TraceSink::tracer(&Stats::new()).is_none());
        assert!(NoTrace.trace_start().is_none());
        // A disabled helper call is a no-op, not a panic.
        NoTrace.trace_hist(HistKind::TaskNanos, 1);
        NoTrace.trace_instant(0, EventName::Steal, [0, 0]);
    }

    #[test]
    fn traced_stats_records_both_layers() {
        use crate::stats::Counter;
        let ts = TracedStats::new(1);
        ts.bump(Counter::EdgeTests);
        let span = ts.now().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        ts.finish(Phase::Total, Some(span));
        assert_eq!(ts.stats.report().counter(Counter::EdgeTests), 1);
        let snap = ts.tracer.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, EventName::PhaseTotal);
        assert_eq!(snap.events[0].dur_ns, ts.stats.report().phase_nanos(Phase::Total));
    }
}
