//! Trace exporters: Chrome trace-event JSON (open in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)) and folded-stack flamegraph text
//! (pipe into `flamegraph.pl` or inferno).
//!
//! Both operate on a decoded [`TraceSnapshot`], so they are pure functions
//! of recorded data — no clocks, no I/O.

use super::{TraceEvent, TraceSnapshot};

/// Lane display name: `coordinator` for lane 0, `worker-N` for lane `N + 1`.
fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "coordinator".to_string()
    } else {
        format!("worker-{}", lane - 1)
    }
}

fn push_args(out: &mut String, ev: &TraceEvent) {
    let keys = ev.name.arg_keys();
    let mut first = true;
    out.push_str(",\"args\":{");
    for (key, val) in keys.iter().zip([ev.arg0, ev.arg1]) {
        if let Some(key) = key {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{key}\":{val}"));
        }
    }
    if ev.name.is_span() && ev.name.as_phase().is_none() {
        // Task spans additionally carry the scheduler's placement facts.
        if !first {
            out.push(',');
        }
        out.push_str(&format!("\"home\":{},\"stolen\":{}", ev.home, ev.stolen));
    }
    out.push('}');
}

/// Renders the snapshot as a Chrome trace-event JSON array: one `pid` (1,
/// named `dbscan`), one `tid` per lane (named via `thread_name` metadata
/// events — `coordinator`, `worker-0`, …), complete spans (`ph: "X"`) for
/// phase/task spans and thread-scoped instants (`ph: "i"`) for point events.
/// Timestamps/durations are microseconds with nanosecond precision, per the
/// trace-event format.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    chrome_trace_json_capped(snap, usize::MAX).0
}

/// Tail room reserved for the `events_dropped`/`events_omitted` markers and
/// the closing bracket, so a capped render is always complete JSON.
const CAP_TAIL_RESERVE: usize = 320;

/// [`chrome_trace_json`] with a byte budget, for in-memory consumers that
/// return the trace inline (the service tier's per-request trace capture).
/// Metadata records are always emitted; timeline events are appended in
/// order until the budget would be exceeded, and every event past that point
/// is counted instead. A non-zero second return means the render was
/// truncated — a global `events_omitted` instant marks it inside the trace
/// too. The output is valid JSON either way, and an uncapped call
/// (`max_bytes = usize::MAX`) is byte-identical to [`chrome_trace_json`].
pub fn chrome_trace_json_capped(snap: &TraceSnapshot, max_bytes: usize) -> (String, u64) {
    let budget = max_bytes.saturating_sub(CAP_TAIL_RESERVE);
    let mut out = String::from("[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"dbscan\"}}",
    );
    for lane in 0..snap.num_lanes {
        out.push_str(&format!(
            ",{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            lane_name(lane as u32)
        ));
    }
    let mut omitted = 0u64;
    for ev in &snap.events {
        if omitted > 0 {
            // Keep a coherent timeline prefix: once one event is cut, count
            // the rest instead of cherry-picking whichever still fits.
            omitted += 1;
            continue;
        }
        let ts = ev.ts_ns as f64 / 1_000.0;
        let cat = if ev.name.as_phase().is_some() {
            "phase"
        } else if ev.name.is_span() {
            "task"
        } else {
            "event"
        };
        let mut piece = format!(
            ",{{\"name\":\"{}\",\"cat\":\"{cat}\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3}",
            ev.name.label(),
            ev.lane
        );
        if ev.name.is_span() {
            piece.push_str(&format!(",\"ph\":\"X\",\"dur\":{:.3}", ev.dur_ns as f64 / 1_000.0));
        } else {
            piece.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        push_args(&mut piece, ev);
        piece.push('}');
        if out.len() + piece.len() > budget {
            omitted += 1;
            continue;
        }
        out.push_str(&piece);
    }
    if snap.events_dropped > 0 {
        // Surface loss inside the trace itself, not only in the stats JSON.
        out.push_str(&format!(
            ",{{\"name\":\"events_dropped\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\
             \"pid\":1,\"tid\":0,\"ts\":0,\"args\":{{\"count\":{}}}}}",
            snap.events_dropped
        ));
    }
    if omitted > 0 {
        out.push_str(&format!(
            ",{{\"name\":\"events_omitted\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\
             \"pid\":1,\"tid\":0,\"ts\":0,\"args\":{{\"count\":{omitted}}}}}",
        ));
    }
    out.push(']');
    (out, omitted)
}

/// Renders the snapshot as folded flamegraph stacks: one
/// `lane;outer;inner count` line per distinct span path, where the count is
/// the path's **self** time in nanoseconds (duration minus contained child
/// spans). Instants are skipped. Lines are sorted for stable output.
pub fn folded_stacks(snap: &TraceSnapshot) -> String {
    use std::collections::BTreeMap;
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut i = 0;
    while i < snap.events.len() {
        let lane = snap.events[i].lane;
        let mut j = i;
        while j < snap.events.len() && snap.events[j].lane == lane {
            j += 1;
        }
        // Events are sorted (ts, Reverse(dur)) within the lane, so a simple
        // containment stack recovers the nesting.
        let mut stack: Vec<(&TraceEvent, u64)> = Vec::new(); // (span, child time)
        let close = |stack: &mut Vec<(&TraceEvent, u64)>,
                         folded: &mut BTreeMap<String, u64>,
                         upto: u64| {
            while let Some(&(top, child_ns)) = stack.last() {
                if top.end_ns() > upto {
                    break;
                }
                stack.pop();
                let mut path = lane_name(lane);
                for (anc, _) in stack.iter() {
                    path.push(';');
                    path.push_str(anc.name.label());
                }
                path.push(';');
                path.push_str(top.name.label());
                *folded.entry(path).or_insert(0) += top.dur_ns.saturating_sub(child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.1 += top.dur_ns;
                }
            }
        };
        for ev in &snap.events[i..j] {
            if !ev.name.is_span() {
                continue;
            }
            close(&mut stack, &mut folded, ev.ts_ns);
            stack.push((ev, 0));
        }
        close(&mut stack, &mut folded, u64::MAX);
        i = j;
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventName, Tracer};
    use std::time::Instant;

    fn sample_snapshot() -> TraceSnapshot {
        let t = Tracer::with_capacity(2, 32);
        let start = Instant::now();
        let base = t.ts_of(start);
        // Coordinator: total span containing a labeling span.
        t.span(0, EventName::PhaseTotal, base, 10_000, [0, 0], false, 0);
        t.span(0, EventName::PhaseLabeling, base + 1_000, 4_000, [0, 0], false, 0);
        // Worker 0: two task spans, one stolen, plus a steal instant.
        t.span(1, EventName::TaskEdge, base, 2_000, [3, 40], false, 1);
        t.span(1, EventName::TaskEdge, base + 2_500, 1_500, [7, 10], true, 0);
        t.instant(1, EventName::Steal, [7, 0]);
        t.snapshot()
    }

    #[test]
    fn chrome_export_has_metadata_spans_and_instants() {
        let j = chrome_trace_json(&sample_snapshot());
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert!(j.contains("\"name\":\"process_name\""));
        assert!(j.contains("\"args\":{\"name\":\"coordinator\"}"));
        assert!(j.contains("\"args\":{\"name\":\"worker-0\"}"));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"name\":\"task_edge\""));
        assert!(j.contains("\"stolen\":true"));
        assert!(j.contains("\"name\":\"steal\""));
        // No dropped marker when nothing was dropped.
        assert!(!j.contains("events_dropped"));
    }

    #[test]
    fn chrome_export_marks_dropped_events() {
        let t = Tracer::with_capacity(1, 1);
        t.instant(0, EventName::Steal, [0, 0]);
        t.instant(0, EventName::Steal, [1, 0]);
        let j = chrome_trace_json(&t.snapshot());
        assert!(j.contains("\"name\":\"events_dropped\""));
        assert!(j.contains("\"count\":1"));
    }

    #[test]
    fn capped_chrome_export_truncates_to_valid_json() {
        let snap = sample_snapshot();
        let (full, omitted) = chrome_trace_json_capped(&snap, usize::MAX);
        assert_eq!(omitted, 0);
        assert_eq!(full, chrome_trace_json(&snap), "uncapped must be byte-identical");

        // A budget with room for the metadata but not the events: every
        // timeline event is cut, the marker records how many, and the result
        // still parses (balanced brackets, no dangling comma).
        let (capped, omitted) = chrome_trace_json_capped(&snap, 400);
        assert_eq!(omitted, snap.events.len() as u64);
        assert!(capped.starts_with('[') && capped.ends_with(']'));
        assert!(capped.contains("\"name\":\"events_omitted\""));
        assert!(capped.contains(&format!("\"count\":{omitted}")));
        assert!(!capped.contains("\"cat\":\"task\""));
        assert!(capped.len() <= 400 + CAP_TAIL_RESERVE);

        // A budget that fits some events keeps a strict prefix.
        let (partial, omitted) = chrome_trace_json_capped(&snap, full.len() - 50);
        assert!(omitted > 0 && (omitted as usize) < snap.events.len());
        assert!(partial.contains("\"name\":\"total\""), "prefix keeps the first span");
    }

    #[test]
    fn folded_stacks_nest_and_account_self_time() {
        let txt = folded_stacks(&sample_snapshot());
        let lines: Vec<&str> = txt.lines().collect();
        // total has 10_000 - 4_000 (labeling child) = 6_000 self ns.
        assert!(lines.contains(&"coordinator;total 6000"));
        assert!(lines.contains(&"coordinator;total;labeling 4000"));
        // Both worker task spans fold into one path; instants are skipped.
        assert!(lines.contains(&"worker-0;task_edge 3500"));
        assert_eq!(lines.len(), 3);
    }
}
