//! Bichromatic closest-pair (BCP) computations between the core points of two
//! ε-neighbor cells.
//!
//! Section 3.2 computes each candidate edge of the core-cell graph `G` by solving
//! BCP on the two cells' core-point sets with the (purely theoretical) algorithm
//! of Agarwal et al. \[1\]. As discussed in DESIGN.md, we substitute a practical
//! routine: for the edge decision only the *predicate* "is the BCP distance ≤ ε?"
//! is needed, so small set pairs use the blocked early-exit scan
//! ([`within_threshold_blocks`]), and larger pairs get an optimistic budgeted
//! round of the same scan ([`probe_within_threshold_blocks`]) before falling
//! back to probing a kd-tree built over the bigger set — between ε-neighbor
//! core cells an edge usually exists and the probe decides it long before a
//! tree build would pay off. The full closest pair is also exposed
//! ([`closest_pair`]) for completeness and for validating the predicate.

use dbscan_geom::kernels::{self, SoaBlock};
use dbscan_geom::Point;
use dbscan_index::KdTree;

/// Below this product of set sizes, the early-exit blocked scan beats building
/// or probing a tree. Raised from 1024 when the edge predicate moved to the
/// blocked SoA kernel ([`within_threshold_blocks`]): streaming ≤64-wide
/// coordinate blocks is cheap enough that even ~128×128 pairs finish before a
/// kd-tree build over one side pays off (measured on the `repro bench`
/// ss3d/ss5d matrix; see EXPERIMENTS.md, "Kernel architecture").
pub const BRUTE_FORCE_LIMIT: usize = 16384;

/// Distance-evaluation budget of the optimistic probe that large pairs get
/// before the tree route builds anything ([`probe_within_threshold_blocks`]):
/// one crossover's worth of blocked-scan work. Between ε-neighbor *core*
/// cells an edge almost always exists and the blocked kernel's between-chunk
/// early exit finds it within the first few chunks, so spending ≤ one
/// [`BRUTE_FORCE_LIMIT`] of evaluations up front converts nearly every
/// would-be kd-tree build into a cheap streaming scan; the rare undecided
/// pair pays one bounded probe extra and then proceeds exactly as before.
pub const PROBE_EVAL_BUDGET: usize = BRUTE_FORCE_LIMIT;

/// The exact bichromatic closest pair between `a_ids` and `b_ids` (ids into
/// `points`): returns `(a, b, dist_sq)`, or `None` if either set is empty.
pub fn closest_pair<const D: usize>(
    points: &[Point<D>],
    a_ids: &[u32],
    b_ids: &[u32],
) -> Option<(u32, u32, f64)> {
    if a_ids.is_empty() || b_ids.is_empty() {
        return None;
    }
    if a_ids.len() * b_ids.len() <= BRUTE_FORCE_LIMIT {
        return closest_pair_brute(points, a_ids, b_ids);
    }
    // Probe a tree on the larger set with every point of the smaller set.
    let (probe, tree_side) = if a_ids.len() <= b_ids.len() {
        (a_ids, b_ids)
    } else {
        (b_ids, a_ids)
    };
    let tree = KdTree::build_entries(tree_side.iter().map(|&i| (points[i as usize], i)).collect());
    let mut best: Option<(u32, u32, f64)> = None;
    let mut bound = f64::INFINITY;
    for &p in probe {
        if let Some((q, d)) = tree.nearest_within_impl(&points[p as usize], bound.sqrt()) {
            if best.is_none() || d < best.unwrap().2 {
                best = Some((p, q, d));
                bound = d;
            }
        }
    }
    // Normalize orientation: first id from `a_ids`' side.
    best.map(|(p, q, d)| {
        if a_ids.len() <= b_ids.len() {
            (p, q, d)
        } else {
            (q, p, d)
        }
    })
}

/// Brute-force exact BCP (the oracle for tests).
pub fn closest_pair_brute<const D: usize>(
    points: &[Point<D>],
    a_ids: &[u32],
    b_ids: &[u32],
) -> Option<(u32, u32, f64)> {
    let mut best: Option<(u32, u32, f64)> = None;
    for &a in a_ids {
        let pa = &points[a as usize];
        for &b in b_ids {
            let d = pa.dist_sq(&points[b as usize]);
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((a, b, d));
            }
        }
    }
    best
}

/// The edge predicate of the exact algorithm: is there a pair
/// `(p, q) ∈ a_ids × b_ids` with `dist(p, q) ≤ eps`? Exits on the first hit.
pub fn within_threshold_brute<const D: usize>(
    points: &[Point<D>],
    a_ids: &[u32],
    b_ids: &[u32],
    eps: f64,
) -> bool {
    let eps_sq = eps * eps;
    a_ids.iter().any(|&a| {
        let pa = &points[a as usize];
        b_ids
            .iter()
            .any(|&b| pa.dist_sq(&points[b as usize]) <= eps_sq)
    })
}

/// Blocked variant of the edge predicate over structure-of-arrays core-point
/// views (see [`crate::cells::CoreCells::core_block`]): decides the same
/// "∃ pair within ε" boolean as [`within_threshold_brute`] — distances use
/// the identical accumulation order as [`Point::dist_sq`], so the exact same
/// pairs qualify — with the smaller side as queries against ≤64-wide blocks
/// of the larger, early-exiting between blocks.
pub fn within_threshold_blocks<const D: usize>(
    a: &SoaBlock<'_, D>,
    b: &SoaBlock<'_, D>,
    eps: f64,
) -> bool {
    kernels::bcp_block_pair(a, b, eps * eps)
}

/// Optimistic budgeted probe for pairs *above* [`BRUTE_FORCE_LIMIT`]: runs
/// the blocked predicate for at most [`PROBE_EVAL_BUDGET`] distance
/// evaluations. `Some(hit)` is an exact decision (identical to
/// [`within_threshold_blocks`]); `None` means the budget ran out and the
/// caller should fall back to the kd-tree route. Keeps the worst case at the
/// tree bound plus a constant-size probe while letting the common
/// edge-exists case skip the tree build entirely.
pub fn probe_within_threshold_blocks<const D: usize>(
    a: &SoaBlock<'_, D>,
    b: &SoaBlock<'_, D>,
    eps: f64,
) -> Option<bool> {
    kernels::bcp_block_pair_budgeted(a, b, eps * eps, PROBE_EVAL_BUDGET)
}

/// Tree-probing variant of the edge predicate: probes `tree` (built over one
/// cell's core points) with every id in `probe_ids`.
pub fn within_threshold_tree<const D: usize>(
    points: &[Point<D>],
    probe_ids: &[u32],
    tree: &KdTree<D>,
    eps: f64,
) -> bool {
    probe_ids
        .iter()
        .any(|&p| tree.nearest_within_impl(&points[p as usize], eps).is_some())
}

/// Counted twin of [`within_threshold_tree`]: adds to `nodes_visited` the
/// kd-tree nodes touched across all probes (the observability layer records it
/// as [`crate::Counter::IndexNodesVisited`]).
pub fn within_threshold_tree_counted<const D: usize>(
    points: &[Point<D>],
    probe_ids: &[u32],
    tree: &KdTree<D>,
    eps: f64,
    nodes_visited: &mut u64,
) -> bool {
    probe_ids.iter().any(|&p| {
        tree.nearest_within_counted(&points[p as usize], eps, nodes_visited)
            .is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_sets() {
        let pts = vec![p2(0.0, 0.0)];
        assert!(closest_pair(&pts, &[], &[0]).is_none());
        assert!(closest_pair(&pts, &[0], &[]).is_none());
        assert!(!within_threshold_brute(&pts, &[], &[0], 1.0));
    }

    #[test]
    fn simple_pair() {
        let pts = vec![p2(0.0, 0.0), p2(1.0, 0.0), p2(5.0, 0.0)];
        let (a, b, d) = closest_pair(&pts, &[0], &[1, 2]).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn tree_path_matches_brute_force() {
        // Large enough sets to exceed BRUTE_FORCE_LIMIT and take the tree path.
        let pts = lcg_points(300, 100.0, 99);
        let a_ids: Vec<u32> = (0..120).collect();
        let b_ids: Vec<u32> = (120..300).collect();
        assert!(a_ids.len() * b_ids.len() > BRUTE_FORCE_LIMIT);
        let fast = closest_pair(&pts, &a_ids, &b_ids).unwrap();
        let brute = closest_pair_brute(&pts, &a_ids, &b_ids).unwrap();
        assert_eq!(fast.2, brute.2, "closest distance must match");
        assert!(a_ids.contains(&fast.0) && b_ids.contains(&fast.1));
    }

    #[test]
    fn threshold_predicates_agree() {
        let pts = lcg_points(200, 50.0, 7);
        let a_ids: Vec<u32> = (0..100).collect();
        let b_ids: Vec<u32> = (100..200).collect();
        let tree = KdTree::build_entries(b_ids.iter().map(|&i| (pts[i as usize], i)).collect());
        for eps in [0.1, 1.0, 3.0, 100.0] {
            let brute = within_threshold_brute(&pts, &a_ids, &b_ids, eps);
            let via_tree = within_threshold_tree(&pts, &a_ids, &tree, eps);
            let via_bcp = closest_pair(&pts, &a_ids, &b_ids).unwrap().2 <= eps * eps;
            assert_eq!(brute, via_tree, "eps={eps}");
            assert_eq!(brute, via_bcp, "eps={eps}");
        }
    }

    #[test]
    fn threshold_includes_boundary() {
        let pts = vec![p2(0.0, 0.0), p2(3.0, 4.0)];
        assert!(within_threshold_brute(&pts, &[0], &[1], 5.0));
        assert!(!within_threshold_brute(&pts, &[0], &[1], 4.999));
    }
}
