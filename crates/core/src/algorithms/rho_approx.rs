//! "OurApprox" — ρ-approximate DBSCAN (Section 4.4, Theorem 4): O(n) expected
//! time for any fixed d, any ε, and any constant ρ.
//!
//! Identical skeleton to the exact grid algorithm, except the edge rule of the
//! re-defined graph `G` (Section 4.4):
//!
//! * edge **yes** if some core-point pair across the two cells is within ε;
//! * edge **no** if no pair is within ε(1+ρ);
//! * **don't care** in between.
//!
//! The rule is realized by building, per core cell, the approximate range
//! counter of Lemma 5 over that cell's core points, and probing it with the
//! other cell's core points: a positive (approximate) count at radius ε decides
//! the edge. Core-point labeling and border assignment remain exact, so any
//! output is a legal result of Problem 2 and inherits the sandwich guarantee of
//! Theorem 3.

use crate::cells::{assemble_clustering_ctl, connect_core_cells_ctl, CoreCells};
use crate::deadline::{precheck_degrade, DeadlineConfig, DeadlineReport, RunCtl, StageId};
use crate::error::{validate_rho, DbscanError, ResourceLimits};
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Clustering, DbscanParams};
use dbscan_geom::grid::{base_side, hierarchy_levels};
use dbscan_geom::Point;
use dbscan_index::ApproxRangeCounter;
use std::cell::Cell as StdCell;
use std::time::Instant;

/// ρ-approximate DBSCAN (the paper's Theorem 4 algorithm).
///
/// `rho` is the approximation ratio; the paper recommends (and its experiments
/// default to) `rho = 0.001`.
///
/// ```
/// use dbscan_core::{DbscanParams, algorithms::{grid_exact, rho_approx}};
/// use dbscan_geom::Point;
///
/// let pts: Vec<Point<3>> = (0..50)
///     .map(|i| Point([(i % 10) as f64, (i / 10) as f64, 0.0]))
///     .collect();
/// let params = DbscanParams::new(1.5, 4).unwrap();
/// let approx = rho_approx(&pts, params, 0.001);
/// // On well-separated data the approximate result equals the exact one.
/// assert_eq!(approx.assignments, grid_exact(&pts, params).assignments);
/// ```
pub fn rho_approx<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
) -> Clustering {
    rho_approx_instrumented(points, params, rho, &NoStats)
}

/// [`rho_approx`] with an observability sink (see [`crate::stats`]).
///
/// Records per-phase wall times plus the counter-specific operation counts:
/// Lemma 5 structures built, `query_positive` probes issued, and hierarchy
/// cells visited while answering them. With [`NoStats`] every recording site
/// compiles away and this is exactly the uninstrumented algorithm.
pub fn rho_approx_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    stats: &S,
) -> Clustering {
    try_rho_approx_instrumented(points, params, rho, &ResourceLimits::UNLIMITED, stats)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`rho_approx`]: returns a typed [`DbscanError`] for an
/// unusable `rho` (non-positive, NaN/inf, degenerate-hierarchy small, or with
/// `eps·(1+ρ)` overflowing), non-finite coordinates, or unrepresentable cell
/// indices, instead of panicking.
pub fn try_rho_approx<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
) -> Result<Clustering, DbscanError> {
    try_rho_approx_instrumented(points, params, rho, &ResourceLimits::UNLIMITED, &NoStats)
}

/// Fallible twin of [`rho_approx_instrumented`]; the infallible entry points
/// delegate here. Beyond the checks of [`validate_rho`] and the grid build,
/// this pre-validates that every point's cell index is representable at the
/// *deepest* level of the Lemma 5 hierarchy (where the unchecked build would
/// silently saturate and break the sandwich guarantee), and — under `limits`
/// — refuses runs whose worst-case aggregate counter footprint exceeds the
/// byte budget, before building anything.
pub fn try_rho_approx_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    limits: &ResourceLimits,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    rho_approx_ctl(points, params, rho, limits, stats, &RunCtl::unlimited())
}

/// Deadline-aware entry point: runs [`try_rho_approx_instrumented`] under the
/// given [`DeadlineConfig`] and additionally returns the [`DeadlineReport`].
/// Degrading an already-approximate run re-targets the remaining edge tests
/// at the (coarser) `degrade_rho`; the combined result is a valid
/// max(ρ, ρ′)-approximate clustering by the same Sandwich-Theorem argument.
pub fn try_rho_approx_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    limits: &ResourceLimits,
    deadline: &DeadlineConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(deadline);
    let out = rho_approx_ctl(points, params, rho, limits, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Cancellation-aware entry point taking an externally owned [`RunCtl`], so a
/// host (e.g. the service daemon) can interrupt or degrade the run mid-flight.
pub fn try_rho_approx_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    rho_approx_ctl(points, params, rho, limits, stats, ctl)
}

/// Runs the ρ-approximate algorithm on a prebuilt [`CoreCells`] structure
/// (from [`CoreCells::try_build_ctl`] on the same `points`), skipping the grid
/// build and core labeling. The counters themselves are still built lazily
/// here, so the same cached cells serve any `rho`. Returns
/// [`DbscanError::IndexSizeMismatch`] when `cells` was built over a different
/// number of points.
pub fn try_rho_approx_from_cells_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cells: &CoreCells<D>,
    rho: f64,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    if cells.is_core.len() != points.len() {
        return Err(DbscanError::IndexSizeMismatch {
            index_len: cells.is_core.len(),
            points_len: points.len(),
        });
    }
    let params = cells.params;
    validate_rho(params.eps(), rho)?;
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    rho_approx_finish(points, cells, params, rho, limits, stats, ctl, total)
}

pub(crate) fn rho_approx_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    validate_rho(params.eps(), rho)?;
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    let cc = CoreCells::try_build_ctl(points, params, limits, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }
    rho_approx_finish(points, &cc, params, rho, limits, stats, ctl, total)
}

#[allow(clippy::too_many_arguments)]
fn rho_approx_finish<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    params: DbscanParams,
    rho: f64,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
    total: Option<Instant>,
) -> Result<Clustering, DbscanError> {
    // Counters bucket at sides down to base_side / 2^(h-1); verify the whole
    // dataset is representable there so the lazy in-loop builds can never
    // overflow a cell coordinate.
    let leaf_side = base_side::<D>(params.eps()) / (1u64 << (hierarchy_levels(rho) - 1)) as f64;
    crate::validate::check_cell_range(points, leaf_side)?;
    if let Some(budget) = limits.max_index_bytes {
        // Worst case every core cell builds its counter; their aggregate
        // estimate is h·size_of::<node>() (+ sort scratch) per core point.
        let estimated =
            dbscan_index::counter::estimated_build_bytes::<D>(cc.num_core_points(), rho);
        if estimated > budget {
            return Err(DbscanError::ResourceLimit {
                structure: "approximate range counters",
                estimated_bytes: estimated,
                budget_bytes: budget,
            });
        }
    }
    let eps = params.eps();

    // One counter per core cell, built lazily over the cell's core points (cells
    // that never serve as the "counter side" of a pair never pay for a build).
    // Build time spent inside the edge loop is reported through `deferred` so
    // it lands in Phase::StructureBuild.
    let deferred = StdCell::new(0u64);
    let mut counters: Vec<Option<ApproxRangeCounter<D>>> =
        (0..cc.num_core_cells()).map(|_| None).collect();
    let mut degrade_counters: Vec<Option<ApproxRangeCounter<D>>> = if ctl.may_degrade() {
        (0..cc.num_core_cells()).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut uf = connect_core_cells_ctl(cc, stats, &deferred, ctl, |r1, r2| {
        stats.bump(Counter::CounterDecisions);
        if ctl.edge_degraded() {
            ctl.note_degraded_edge();
            return crate::algorithms::degraded_edge_test(
                points,
                cc,
                &mut degrade_counters,
                ctl.degrade_rho(),
                r1,
                r2,
                stats,
                &deferred,
            );
        }
        // Probe with the smaller side, count on the larger side.
        let (probe_rank, counter_rank) =
            if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len() {
                (r1, r2)
            } else {
                (r2, r1)
            };
        let build = || {
            let pts: Vec<Point<D>> = cc.core_points_of[counter_rank]
                .iter()
                .map(|&i| points[i as usize])
                .collect();
            ApproxRangeCounter::build(&pts, eps, rho)
        };
        if S::ENABLED {
            if counters[counter_rank].is_none() {
                stats.bump(Counter::CounterBuilds);
                let t = Instant::now();
                counters[counter_rank] = Some(build());
                deferred.set(deferred.get() + t.elapsed().as_nanos() as u64);
            }
            let counter = counters[counter_rank].as_ref().unwrap();
            let mut visited = 0u64;
            let mut queries = 0u64;
            let hit = cc.core_points_of[probe_rank].iter().any(|&p| {
                queries += 1;
                counter.query_positive_counted(&points[p as usize], &mut visited)
            });
            stats.add(Counter::CounterQueries, queries);
            stats.add(Counter::IndexNodesVisited, visited);
            hit
        } else {
            let counter = counters[counter_rank].get_or_insert_with(build);
            cc.core_points_of[probe_rank]
                .iter()
                .any(|&p| counter.query_positive(&points[p as usize]))
        }
    });
    if S::ENABLED {
        // Core cells that never served as the count side of a reached pair,
        // so their Lemma 5 counter was never built (the approximate
        // analogue of the exact path's brute_force_cells).
        let unbuilt = counters.iter().filter(|c| c.is_none()).count();
        stats.add(Counter::BruteForceCells, unbuilt as u64);
    }
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::EdgeTests));
    }
    let out = assemble_clustering_ctl(points, cc, &mut uf, stats, ctl);
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    stats.finish(Phase::Total, total);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::grid_exact;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_input() {
        assert_eq!(rho_approx::<2>(&[], params(1.0, 2), 0.001).num_clusters, 0);
    }

    #[test]
    fn figure5_example() {
        // The paper's Figure 5: o5 is ρ-approximate density-reachable from o3
        // (through the inflated ball) but not density-reachable. With a distance
        // gap between ε and ε(1+ρ), the approximate result may or may not merge
        // o5 — but never splits the core chain o1..o4.
        // Construct: chain o1,o2,o3 of core points, o4 near o1, o5 at distance
        // in (ε, ε(1+ρ)] from o1.
        let eps = 1.0;
        let rho = 0.5;
        let pts = vec![
            p2(0.0, 0.0),  // o1, core
            p2(0.9, 0.0),  // o2, core
            p2(1.8, 0.0),  // o3, core
            p2(0.0, 0.9),  // o4, core
            p2(-1.3, 0.0), // o5: dist 1.3 from o1 ∈ (ε, ε(1+ρ)]
        ];
        let p = params(eps, 3);
        let c = rho_approx(&pts, p, rho);
        c.validate().unwrap();
        // o1..o4 always one cluster.
        let l = c.flat_labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[0], l[3]);
        // o5 is not core and not within ε of any core point → noise under the
        // exact border rule, regardless of the approximate edges.
        assert!(c.assignments[4].is_noise());
    }

    #[test]
    fn agrees_with_exact_on_well_separated_data() {
        // Clusters separated by much more than ε(1+ρ): the approximate result
        // must equal the exact one.
        let mut pts = Vec::new();
        for b in 0..3 {
            let bx = b as f64 * 50.0;
            for i in 0..30 {
                pts.push(p2(bx + (i % 6) as f64 * 0.4, (i / 6) as f64 * 0.4));
            }
        }
        let p = params(1.0, 4);
        for rho in [0.001, 0.01, 0.1] {
            let approx = rho_approx(&pts, p, rho);
            let exact = grid_exact(&pts, p);
            assert_eq!(approx.assignments, exact.assignments, "rho={rho}");
            assert_eq!(approx.num_clusters, 3);
        }
    }

    #[test]
    fn sandwich_holds_on_random_data() {
        // Statement 1 of Theorem 3: any exact cluster is contained in some
        // approximate cluster — equivalently, exact co-clustered core points are
        // approx co-clustered.
        for seed in [11u64, 22, 33] {
            let pts = lcg_points(400, 20.0, seed);
            let p = params(1.0, 4);
            let rho = 0.1;
            let exact = grid_exact(&pts, p);
            let approx = rho_approx(&pts, p, rho);
            let outer = grid_exact(&pts, p.inflate(rho));
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    if let (crate::Assignment::Core(a), crate::Assignment::Core(b)) =
                        (&exact.assignments[i], &exact.assignments[j])
                    {
                        if a == b {
                            // Same exact cluster → same approx cluster.
                            assert_eq!(
                                approx.assignments[i].clusters()[0],
                                approx.assignments[j].clusters()[0],
                                "statement 1 violated (seed {seed}, pts {i},{j})"
                            );
                        }
                    }
                    // Statement 2: same approx cluster → same outer cluster.
                    if let (crate::Assignment::Core(a), crate::Assignment::Core(b)) =
                        (&approx.assignments[i], &approx.assignments[j])
                    {
                        if a == b {
                            assert_eq!(
                                outer.assignments[i].clusters()[0],
                                outer.assignments[j].clusters()[0],
                                "statement 2 violated (seed {seed}, pts {i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn zero_rho_rejected() {
        let _ = rho_approx::<2>(&[p2(0.0, 0.0)], params(1.0, 1), 0.0);
    }
}
