//! "OurExact" — the paper's exact algorithm for any fixed d ≥ 3 (Section 3.2,
//! Theorem 2), which also subsumes the 2D case.
//!
//! Grid of side `ε/√d`; vertices of `G` are core cells; an edge `(c₁, c₂)` exists
//! iff the bichromatic closest pair between the cells' core points is within ε.
//! Clusters are the connected components of `G` (Lemma 1); border points are
//! assigned afterwards.

use crate::bcp;
use crate::cells::{assemble_clustering_ctl, connect_core_cells_ctl, CoreCells};
use crate::deadline::{precheck_degrade, DeadlineConfig, DeadlineReport, RunCtl, StageId};
use crate::error::{DbscanError, ResourceLimits};
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Clustering, DbscanParams};
use dbscan_geom::Point;
use dbscan_index::{ApproxRangeCounter, KdTree};
use std::cell::Cell as StdCell;
use std::time::Instant;

/// Exact DBSCAN via grid + BCP (the paper's Theorem 2 algorithm).
///
/// The theoretical BCP routine of Agarwal et al. is replaced by an early-exit
/// predicate: small cell pairs use a brute-force scan, large ones probe a
/// lazily built (and cached) kd-tree over the bigger cell's core points.
///
/// ```
/// use dbscan_core::{DbscanParams, algorithms::grid_exact};
/// use dbscan_geom::Point;
///
/// let pts = vec![
///     Point([0.0, 0.0]), Point([0.5, 0.0]), Point([0.0, 0.5]), // a cluster
///     Point([9.0, 9.0]),                                       // an outlier
/// ];
/// let c = grid_exact(&pts, DbscanParams::new(1.0, 3).unwrap());
/// assert_eq!(c.num_clusters, 1);
/// assert!(c.assignments[0].is_core());
/// assert!(c.assignments[3].is_noise());
/// ```
pub fn grid_exact<const D: usize>(points: &[Point<D>], params: DbscanParams) -> Clustering {
    grid_exact_with(points, params, BcpStrategy::TreeAssisted)
}

/// How the BCP edge predicate between two core cells is evaluated.
///
/// The ablation matters for interpreting the paper's Figure 11/12: its exact
/// algorithm's cost is dominated by the BCP computations, and the quality of
/// the BCP routine moves the exact/approximate crossover. See EXPERIMENTS.md.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BcpStrategy {
    /// Early-exit brute force for small pairs, cached kd-tree probing for
    /// large ones (this crate's substitute for Agarwal et al.'s BCP).
    #[default]
    TreeAssisted,
    /// Early-exit brute force for every pair — no trees, but the scan stops at
    /// the first pair within ε.
    BruteForceOnly,
    /// Compute the full bichromatic closest pair of every ε-neighbor core-cell
    /// pair (tree-assisted) and only then compare it against ε — Section 3.2
    /// runs a BCP algorithm as a black box, so there is no threshold early exit.
    FullBcp,
    /// Like [`BcpStrategy::FullBcp`] but with the quadratic pairwise scan as
    /// the BCP routine: the most pessimistic legitimate implementation, and
    /// the closest to the cost profile behind the paper's measured OurExact
    /// curves (see EXPERIMENTS.md).
    FullBruteBcp,
}

/// [`grid_exact`] with an explicit [`BcpStrategy`]. Both strategies return the
/// identical (unique) clustering; only the running time differs.
pub fn grid_exact_with<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
) -> Clustering {
    grid_exact_instrumented(points, params, strategy, &NoStats)
}

/// [`grid_exact_with`] with an observability sink (see [`crate::stats`]).
///
/// Records per-phase wall times plus the edge-test decision counters: how many
/// candidate pairs went through early-exit brute force, tree probing (with
/// cache hits and lazy builds), or full BCP. With [`NoStats`] every recording
/// site compiles away and this is exactly the uninstrumented algorithm.
pub fn grid_exact_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
    stats: &S,
) -> Clustering {
    try_grid_exact_instrumented(points, params, strategy, &ResourceLimits::UNLIMITED, stats)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`grid_exact`]: returns a typed [`DbscanError`] for
/// non-finite coordinates or unrepresentable cell indices instead of
/// panicking.
pub fn try_grid_exact<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
) -> Result<Clustering, DbscanError> {
    try_grid_exact_with(points, params, BcpStrategy::TreeAssisted)
}

/// Fallible twin of [`grid_exact_with`].
pub fn try_grid_exact_with<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
) -> Result<Clustering, DbscanError> {
    try_grid_exact_instrumented(points, params, strategy, &ResourceLimits::UNLIMITED, &NoStats)
}

/// Fallible twin of [`grid_exact_instrumented`]: validates the input and
/// enforces `limits`' index-build byte budget, returning a typed
/// [`DbscanError`] instead of panicking. The infallible entry points all
/// delegate here.
pub fn try_grid_exact_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
    limits: &ResourceLimits,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    grid_exact_ctl(points, params, strategy, limits, stats, &RunCtl::unlimited())
}

/// Deadline-aware entry point: runs [`try_grid_exact_instrumented`] under the
/// given [`DeadlineConfig`] and additionally returns the [`DeadlineReport`]
/// describing how the budget played out. Under `degrade` the edge tests that
/// run after the budget expires switch to Lemma 5 approximate counting at
/// `degrade_rho` (see the module docs of [`crate::deadline`] for why the
/// mixed result is still a valid ρ′-approximate clustering).
pub fn try_grid_exact_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
    limits: &ResourceLimits,
    deadline: &DeadlineConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(deadline);
    let out = grid_exact_ctl(points, params, strategy, limits, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Job-boundary twin of [`try_grid_exact_instrumented`] that runs under a
/// caller-owned [`RunCtl`], so long-lived front ends (the CLI's signal
/// handling, the server's `cancel` verb) can trip the run externally and
/// read the [`DeadlineReport`](crate::DeadlineReport) via
/// [`RunCtl::report`] afterwards.
pub fn try_grid_exact_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    grid_exact_ctl(points, params, strategy, limits, stats, ctl)
}

/// Runs the edge and assembly phases over a *prebuilt* [`CoreCells`] — the
/// cache fast path of the service tier: a repeat query over the same
/// `(dataset, eps, min_pts)` skips the grid build and labeling entirely and
/// lands on the identical clustering (the cells fully determine it). The
/// cells must have been built over exactly `points`; a length mismatch is
/// refused with [`DbscanError::IndexSizeMismatch`].
pub fn try_grid_exact_from_cells_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cells: &CoreCells<D>,
    strategy: BcpStrategy,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    if cells.is_core.len() != points.len() {
        return Err(DbscanError::IndexSizeMismatch {
            index_len: cells.is_core.len(),
            points_len: points.len(),
        });
    }
    let params = cells.params;
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    grid_exact_finish(points, cells, params, strategy, stats, ctl, total)
}

pub(crate) fn grid_exact_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    strategy: BcpStrategy,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    let cc = CoreCells::try_build_ctl(points, params, limits, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }
    grid_exact_finish(points, &cc, params, strategy, stats, ctl, total)
}

/// The post-build phases shared by [`grid_exact_ctl`] (fresh cells) and
/// [`try_grid_exact_from_cells_ctl`] (cached cells): BCP edge tests over the
/// core-cell graph, then border assignment. `total` is the caller's
/// [`Phase::Total`] start mark, so a cached run's total covers exactly the
/// work it did.
#[allow(clippy::too_many_arguments)]
fn grid_exact_finish<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    params: DbscanParams,
    strategy: BcpStrategy,
    stats: &S,
    ctl: &RunCtl,
    total: Option<Instant>,
) -> Result<Clustering, DbscanError> {
    let eps = params.eps();

    // Lazily cache one kd-tree per core cell; only cells that participate in a
    // large pair ever pay for a build. Build time spent inside the edge loop is
    // reported through `deferred` so it lands in Phase::StructureBuild.
    let deferred = StdCell::new(0u64);
    let mut trees: Vec<Option<KdTree<D>>> = (0..cc.num_core_cells()).map(|_| None).collect();
    let mut degrade_counters: Vec<Option<ApproxRangeCounter<D>>> = if ctl.may_degrade() {
        (0..cc.num_core_cells()).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut uf = connect_core_cells_ctl(cc, stats, &deferred, ctl, |r1, r2| {
        if ctl.edge_degraded() {
            ctl.note_degraded_edge();
            stats.bump(Counter::CounterDecisions);
            return crate::algorithms::degraded_edge_test(
                points,
                cc,
                &mut degrade_counters,
                ctl.degrade_rho(),
                r1,
                r2,
                stats,
                &deferred,
            );
        }
        let (a, b) = (&cc.core_points_of[r1], &cc.core_points_of[r2]);
        match strategy {
            BcpStrategy::FullBcp => {
                stats.bump(Counter::FullBcpDecisions);
                return bcp::closest_pair(points, a, b).is_some_and(|(_, _, d)| d <= eps * eps);
            }
            BcpStrategy::FullBruteBcp => {
                stats.bump(Counter::FullBcpDecisions);
                return bcp::closest_pair_brute(points, a, b)
                    .is_some_and(|(_, _, d)| d <= eps * eps);
            }
            BcpStrategy::TreeAssisted | BcpStrategy::BruteForceOnly => {}
        }
        if strategy == BcpStrategy::BruteForceOnly || a.len() * b.len() <= bcp::BRUTE_FORCE_LIMIT {
            stats.bump(Counter::BruteForceDecisions);
            stats.bump(Counter::BlockKernelCalls);
            return bcp::within_threshold_blocks(&cc.core_block(r1), &cc.core_block(r2), eps);
        }
        // Large pair: optimistic budgeted probe first. Between core cells an
        // edge usually exists and the blocked scan finds it in the first few
        // chunks; only an undecided probe pays for the tree route below.
        stats.bump(Counter::BlockKernelCalls);
        if let Some(hit) =
            bcp::probe_within_threshold_blocks(&cc.core_block(r1), &cc.core_block(r2), eps)
        {
            stats.bump(Counter::BruteForceDecisions);
            return hit;
        }
        stats.bump(Counter::TreeProbeDecisions);
        let (probe, tree_rank, tree_pts) = if a.len() <= b.len() {
            (a, r2, b)
        } else {
            (b, r1, a)
        };
        if S::ENABLED {
            if trees[tree_rank].is_some() {
                stats.bump(Counter::TreeCacheHits);
            } else {
                stats.bump(Counter::KdTreeBuilds);
                let t = Instant::now();
                trees[tree_rank] = Some(KdTree::build_entries(
                    tree_pts.iter().map(|&i| (points[i as usize], i)).collect(),
                ));
                deferred.set(deferred.get() + t.elapsed().as_nanos() as u64);
            }
            let tree = trees[tree_rank].as_ref().unwrap();
            let mut nodes = 0u64;
            let hit = bcp::within_threshold_tree_counted(points, probe, tree, eps, &mut nodes);
            stats.add(Counter::IndexNodesVisited, nodes);
            hit
        } else {
            let tree = trees[tree_rank].get_or_insert_with(|| {
                KdTree::build_entries(tree_pts.iter().map(|&i| (points[i as usize], i)).collect())
            });
            bcp::within_threshold_tree(points, probe, tree, eps)
        }
    });
    if S::ENABLED {
        // Core cells whose kd-tree was never needed: with the raised
        // brute-force crossover this is the usual case, and it is the
        // counterpart of the shrinking structure_build phase.
        let unbuilt = trees.iter().filter(|t| t.is_none()).count();
        stats.add(Counter::BruteForceCells, unbuilt as u64);
    }
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::EdgeTests));
    }
    let out = assemble_clustering_ctl(points, cc, &mut uf, stats, ctl);
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    stats.finish(Phase::Total, total);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::{p2, p3};

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    #[test]
    fn empty_input() {
        let c = grid_exact::<2>(&[], params(1.0, 2));
        assert_eq!(c.num_clusters, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn single_point_is_noise_unless_min_pts_one() {
        let pts = vec![p2(0.0, 0.0)];
        assert!(grid_exact(&pts, params(1.0, 2)).assignments[0].is_noise());
        let c = grid_exact(&pts, params(1.0, 1));
        assert!(c.assignments[0].is_core());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn two_separated_blobs() {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(p2(i as f64 * 0.1, 0.0));
        }
        for i in 0..5 {
            pts.push(p2(100.0 + i as f64 * 0.1, 0.0));
        }
        let c = grid_exact(&pts, params(0.5, 3));
        c.validate().unwrap();
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.noise_count(), 0);
        // Points in the same blob share a cluster; across blobs they differ.
        let l = c.flat_labels();
        assert_eq!(l[0], l[4]);
        assert_eq!(l[5], l[9]);
        assert_ne!(l[0], l[5]);
    }

    #[test]
    fn chain_spanning_many_cells_is_one_cluster() {
        // A long chain with gaps just under ε: the "chained effect" of Section 1.
        let pts: Vec<Point<2>> = (0..100).map(|i| p2(i as f64 * 0.95, 0.0)).collect();
        let c = grid_exact(&pts, params(1.0, 2));
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.core_count(), 100);
    }

    #[test]
    fn chain_with_one_gap_splits() {
        let mut pts: Vec<Point<2>> = (0..50).map(|i| p2(i as f64 * 0.95, 0.0)).collect();
        pts.extend((0..50).map(|i| p2(60.0 + i as f64 * 0.95, 0.0)));
        let c = grid_exact(&pts, params(1.0, 2));
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn works_in_3d() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(p3(i as f64 * 0.5, 0.0, 0.0));
            pts.push(p3(0.0, 20.0 + i as f64 * 0.5, 0.0));
        }
        pts.push(p3(50.0, 50.0, 50.0));
        let c = grid_exact(&pts, params(1.0, 3));
        c.validate().unwrap();
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.noise_count(), 1);
    }

    #[test]
    fn bcp_strategies_agree() {
        let mut pts: Vec<Point<2>> = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                pts.push(p2(i as f64 * 0.3, j as f64 * 0.3));
            }
        }
        pts.push(p2(100.0, 100.0));
        let p = params(0.5, 5);
        let a = grid_exact_with(&pts, p, BcpStrategy::TreeAssisted);
        let b = grid_exact_with(&pts, p, BcpStrategy::BruteForceOnly);
        let c = grid_exact_with(&pts, p, BcpStrategy::FullBcp);
        let d = grid_exact_with(&pts, p, BcpStrategy::FullBruteBcp);
        assert_eq!(a.assignments, d.assignments);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.assignments, c.assignments);
        assert_eq!(a.num_clusters, b.num_clusters);
    }

    #[test]
    fn all_identical_points() {
        // The adversarial instance of footnote 1: everything within ε of
        // everything. Must be one cluster, and must terminate fast.
        let pts = vec![p2(1.0, 1.0); 500];
        let c = grid_exact(&pts, params(1.0, 100));
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.core_count(), 500);
    }
}
