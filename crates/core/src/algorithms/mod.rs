//! The five DBSCAN algorithms evaluated in the paper.
//!
//! All exact algorithms ([`kdd96`], [`gunawan_2d`], [`grid_exact`], [`cit08`])
//! compute the unique clustering of Problem 1 and differ only in running time;
//! [`rho_approx`] computes a legal ρ-approximate clustering (Problem 2) under the
//! sandwich guarantee of Theorem 3.

mod cit08;
mod grid_exact;
mod gunawan2d;
pub(crate) mod kdd96;
mod rho_approx;

pub use cit08::{cit08, cit08_instrumented, try_cit08, try_cit08_instrumented, Cit08Config};
pub use grid_exact::{
    grid_exact, grid_exact_instrumented, grid_exact_with, try_grid_exact,
    try_grid_exact_instrumented, try_grid_exact_with, BcpStrategy,
};
pub use gunawan2d::{gunawan_2d, gunawan_2d_instrumented, try_gunawan_2d, try_gunawan_2d_instrumented};
pub use kdd96::{
    kdd96, kdd96_instrumented, kdd96_kdtree, kdd96_kdtree_instrumented, kdd96_linear,
    kdd96_linear_instrumented, kdd96_rtree, kdd96_rtree_instrumented, try_kdd96,
    try_kdd96_instrumented, try_kdd96_kdtree, try_kdd96_kdtree_instrumented, try_kdd96_linear,
    try_kdd96_rtree, try_kdd96_rtree_instrumented,
};
pub use rho_approx::{
    rho_approx, rho_approx_instrumented, try_rho_approx, try_rho_approx_instrumented,
};
