//! The five DBSCAN algorithms evaluated in the paper.
//!
//! All exact algorithms ([`kdd96`], [`gunawan_2d`], [`grid_exact`], [`cit08`])
//! compute the unique clustering of Problem 1 and differ only in running time;
//! [`rho_approx`] computes a legal ρ-approximate clustering (Problem 2) under the
//! sandwich guarantee of Theorem 3.

mod cit08;
mod grid_exact;
mod gunawan2d;
pub(crate) mod kdd96;
mod rho_approx;

pub use cit08::{
    cit08, cit08_instrumented, try_cit08, try_cit08_ctl, try_cit08_deadline,
    try_cit08_instrumented, Cit08Config,
};
pub use grid_exact::{
    grid_exact, grid_exact_instrumented, grid_exact_with, try_grid_exact, try_grid_exact_ctl,
    try_grid_exact_deadline, try_grid_exact_from_cells_ctl, try_grid_exact_instrumented,
    try_grid_exact_with, BcpStrategy,
};
pub use gunawan2d::{
    gunawan_2d, gunawan_2d_instrumented, try_gunawan_2d, try_gunawan_2d_ctl,
    try_gunawan_2d_deadline, try_gunawan_2d_instrumented,
};
pub use kdd96::{
    kdd96, kdd96_instrumented, kdd96_kdtree, kdd96_kdtree_instrumented, kdd96_linear,
    kdd96_linear_instrumented, kdd96_rtree, kdd96_rtree_instrumented, try_kdd96,
    try_kdd96_instrumented, try_kdd96_kdtree, try_kdd96_kdtree_ctl, try_kdd96_kdtree_deadline,
    try_kdd96_kdtree_instrumented, try_kdd96_linear, try_kdd96_rtree, try_kdd96_rtree_instrumented,
};
pub use rho_approx::{
    rho_approx, rho_approx_instrumented, try_rho_approx, try_rho_approx_ctl,
    try_rho_approx_deadline, try_rho_approx_from_cells_ctl, try_rho_approx_instrumented,
};

// The ctl-threaded sequential bodies, for the parallel layer's
// budget-sharing sequential fallback.
pub(crate) use grid_exact::grid_exact_ctl;
pub(crate) use rho_approx::rho_approx_ctl;

use crate::cells::CoreCells;
use crate::stats::{Counter, StatsSink};
use dbscan_geom::Point;
use dbscan_index::ApproxRangeCounter;
use std::cell::Cell as StdCell;
use std::sync::OnceLock;
use std::time::Instant;

/// The degraded edge test shared by the sequential deadline paths: decide the
/// `(r1, r2)` edge with a Lemma 5 approximate counter at `rho` (the configured
/// `degrade_rho`), built lazily over the larger cell's core points and probed
/// with the smaller cell's. Identical mechanics to the ρ-approximate
/// algorithm's edge rule — which is what makes a mixed exact/degraded run a
/// valid ρ′-approximate clustering under the Sandwich Theorem.
#[allow(clippy::too_many_arguments)] // mirrors the exact edge-closure signature
pub(crate) fn degraded_edge_test<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    counters: &mut [Option<ApproxRangeCounter<D>>],
    rho: f64,
    r1: usize,
    r2: usize,
    stats: &S,
    deferred: &StdCell<u64>,
) -> bool {
    let eps = cc.params.eps();
    let (probe_rank, counter_rank) = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len()
    {
        (r1, r2)
    } else {
        (r2, r1)
    };
    let build = || {
        let pts: Vec<Point<D>> = cc.core_points_of[counter_rank]
            .iter()
            .map(|&i| points[i as usize])
            .collect();
        ApproxRangeCounter::build(&pts, eps, rho)
    };
    if S::ENABLED {
        if counters[counter_rank].is_none() {
            stats.bump(Counter::CounterBuilds);
            let t = Instant::now();
            counters[counter_rank] = Some(build());
            deferred.set(deferred.get() + t.elapsed().as_nanos() as u64);
        }
        let counter = counters[counter_rank].as_ref().unwrap();
        let mut visited = 0u64;
        let mut queries = 0u64;
        let hit = cc.core_points_of[probe_rank].iter().any(|&p| {
            queries += 1;
            counter.query_positive_counted(&points[p as usize], &mut visited)
        });
        stats.add(Counter::CounterQueries, queries);
        stats.add(Counter::IndexNodesVisited, visited);
        hit
    } else {
        let counter = counters[counter_rank].get_or_insert_with(build);
        cc.core_points_of[probe_rank]
            .iter()
            .any(|&p| counter.query_positive(&points[p as usize]))
    }
}

/// [`degraded_edge_test`] over `OnceLock` slots, for the `Fn + Sync` closures
/// of the parallel edge phase (racing builds are possible; the losing build is
/// dropped, and both are deterministic functions of the cell's points).
pub(crate) fn degraded_edge_test_shared<const D: usize, S: StatsSink + Sync>(
    points: &[Point<D>],
    cc: &CoreCells<D>,
    counters: &[OnceLock<ApproxRangeCounter<D>>],
    rho: f64,
    r1: usize,
    r2: usize,
    stats: &S,
) -> bool {
    let eps = cc.params.eps();
    let (probe_rank, counter_rank) = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len()
    {
        (r1, r2)
    } else {
        (r2, r1)
    };
    let counter = counters[counter_rank].get_or_init(|| {
        if S::ENABLED {
            stats.bump(Counter::CounterBuilds);
        }
        let pts: Vec<Point<D>> = cc.core_points_of[counter_rank]
            .iter()
            .map(|&i| points[i as usize])
            .collect();
        ApproxRangeCounter::build(&pts, eps, rho)
    });
    if S::ENABLED {
        let mut visited = 0u64;
        let mut queries = 0u64;
        let hit = cc.core_points_of[probe_rank].iter().any(|&p| {
            queries += 1;
            counter.query_positive_counted(&points[p as usize], &mut visited)
        });
        stats.add(Counter::CounterQueries, queries);
        stats.add(Counter::IndexNodesVisited, visited);
        hit
    } else {
        cc.core_points_of[probe_rank]
            .iter()
            .any(|&p| counter.query_positive(&points[p as usize]))
    }
}
