//! CIT08 — the grid-partitioned exact baseline (Mahran & Mahar, "Using grid for
//! accelerating density-based clustering", CIT 2008), the state-of-the-art exact
//! competitor in the paper's experiments (Section 5.3).
//!
//! The original is closed-source; this is a faithful reimplementation of the
//! scheme it describes (see DESIGN.md):
//!
//! 1. partition space into a coarse grid of side `L ≥ 2ε`;
//! 2. run plain DBSCAN (here: KDD'96 over a kd-tree) inside each partition over
//!    its *inner* points plus the *halo* of outside points within ε of the
//!    partition's box — which makes every inner point's ε-ball fully visible, so
//!    local core status and local cluster structure of inner points are exact;
//! 3. merge: a globally core point appearing (as inner or halo) in several
//!    partitions has all its local clusters unioned — core points belong to a
//!    unique cluster, so every such co-occurrence is a valid merge witness.
//!
//! Border points keep the union of their local assignments, reproducing the
//! multi-assignment semantics of Definition 3.

use crate::deadline::{DeadlineConfig, DeadlineReport, RunCtl, StageId};
use crate::error::DbscanError;
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Assignment, Clustering, DbscanParams};
use crate::unionfind::UnionFind;
use dbscan_geom::{CellCoord, FastHashMap, Point};
use dbscan_index::KdTree;

/// Tuning knobs for CIT08.
#[derive(Clone, Copy, Debug)]
pub struct Cit08Config {
    /// Partition side as a multiple of ε. Must be at least 2 so a point can
    /// never sit in the halo of both opposite neighbors along one dimension;
    /// larger values trade fewer partitions against bigger local problems.
    pub partition_eps_multiple: f64,
}

impl Default for Cit08Config {
    fn default() -> Self {
        Cit08Config {
            partition_eps_multiple: 4.0,
        }
    }
}

/// Exact DBSCAN via grid partitioning + per-partition KDD'96 + merge.
pub fn cit08<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
) -> Clustering {
    cit08_instrumented(points, params, config, &NoStats)
}

/// Fallible twin of [`cit08`]: returns a typed [`DbscanError`] for non-finite
/// coordinates or unrepresentable partition indices instead of panicking.
pub fn try_cit08<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
) -> Result<Clustering, DbscanError> {
    try_cit08_instrumented(points, params, config, &NoStats)
}

/// [`cit08`] with an observability sink (see [`crate::stats`]).
///
/// Phase mapping: the coarse partition + halo pass is [`Phase::GridBuild`];
/// per-partition kd-tree builds are [`Phase::StructureBuild`]; the local
/// KDD'96 runs record their own flood / border phases and region-query
/// counters through the shared sink; the cross-partition merge is
/// [`Phase::UnionFind`]; the final global assignment is [`Phase::BorderAssign`].
/// With [`NoStats`] every recording site compiles away.
pub fn cit08_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
    stats: &S,
) -> Clustering {
    try_cit08_instrumented(points, params, config, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`cit08_instrumented`]; the infallible entry points
/// delegate here. Partition coordinates are validated up front (at the coarse
/// side `L`), so the unchecked per-point bucketing below can never wrap.
pub fn try_cit08_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    cit08_ctl(points, params, config, stats, &RunCtl::unlimited())
}

/// Deadline-aware entry point for CIT08. The budget checkpoints once per
/// partition (the unit of local clustering); an already-running local KDD'96
/// pass finishes its partition before the expiry is observed, so cancellation
/// latency is bounded by the largest single partition. CIT08 has no
/// approximate edge phase, so `degrade` behaves like `partial`: partitions
/// not reached come back as noise, and everything already merged stays exact.
pub fn try_cit08_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
    deadline: &DeadlineConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(deadline);
    let out = cit08_ctl(points, params, config, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Cancellation-aware entry point taking an externally owned [`RunCtl`], so a
/// host (e.g. the service daemon) can interrupt the run mid-flight.
pub fn try_cit08_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    cit08_ctl(points, params, config, stats, ctl)
}

fn cit08_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    config: Cit08Config,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    let total = stats.now();
    crate::validate::check_points_finite(points)?;
    if points.is_empty() {
        stats.finish(Phase::Total, total);
        return Ok(Clustering::empty());
    }
    let eps = params.eps();
    let side = params.eps() * config.partition_eps_multiple.max(2.0 + 1e-9);
    crate::validate::check_cell_range(points, side)?;

    // ---- Step 1: inner and halo membership per partition. ----
    let partition_span = stats.now();
    let mut part_of: FastHashMap<CellCoord<D>, u32> = FastHashMap::default();
    let mut inner: Vec<Vec<u32>> = Vec::new();
    let mut halo: Vec<Vec<u32>> = Vec::new();
    fn part_idx<const D: usize>(
        coord: CellCoord<D>,
        part_of: &mut FastHashMap<CellCoord<D>, u32>,
        inner: &mut Vec<Vec<u32>>,
        halo: &mut Vec<Vec<u32>>,
    ) -> u32 {
        *part_of.entry(coord).or_insert_with(|| {
            inner.push(Vec::new());
            halo.push(Vec::new());
            (inner.len() - 1) as u32
        })
    }

    let eps_sq = eps * eps;
    for (i, p) in points.iter().enumerate() {
        let pc = CellCoord::of(p, side);
        let own = part_idx(pc, &mut part_of, &mut inner, &mut halo);
        inner[own as usize].push(i as u32);

        // Distance to the lower/upper face of the owning box along each dim;
        // L ≥ 2ε means at most one of the two can be within ε.
        let mut face_dist = [[f64::INFINITY; 2]; 64];
        debug_assert!(D <= 64);
        for d in 0..D {
            let lo = pc.0[d] as f64 * side;
            face_dist[d][0] = p[d] - lo; // toward offset -1
            face_dist[d][1] = lo + side - p[d]; // toward offset +1
        }
        // Enumerate neighbor offsets whose box is within ε of p.
        let mut offs = [0i64; 64];
        enumerate_halo::<D>(0, 0.0, eps_sq, &face_dist, &mut offs, &mut |offset| {
            let mut coord = pc;
            for d in 0..D {
                coord.0[d] += offset[d];
            }
            let idx = part_idx(coord, &mut part_of, &mut inner, &mut halo);
            halo[idx as usize].push(i as u32);
        });
    }
    stats.finish(Phase::GridBuild, partition_span);

    // ---- Step 2: local DBSCAN per non-trivial partition. ----
    let n = points.len();
    // Per point: global-cluster labels collected across runs; global core flag.
    let mut labels_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut is_core = vec![false; n];
    let mut total_clusters = 0u32;

    if ctl.armed() {
        ctl.stage_begin(StageId::Labeling, inner.len() as u64);
    }
    for pi in 0..inner.len() {
        if ctl.armed() && ctl.should_stop_no_degrade() {
            break;
        }
        if inner[pi].is_empty() {
            if ctl.armed() {
                ctl.stage_done(StageId::Labeling, 1);
            }
            continue; // halo-only partitions have nothing to cluster
        }
        let mut subset: Vec<u32> = Vec::with_capacity(inner[pi].len() + halo[pi].len());
        subset.extend_from_slice(&inner[pi]);
        subset.extend_from_slice(&halo[pi]);
        let local_pts: Vec<Point<D>> = subset.iter().map(|&i| points[i as usize]).collect();
        let tree = stats.time(Phase::StructureBuild, || KdTree::build(&local_pts));
        stats.bump(Counter::KdTreeBuilds);
        let local = super::kdd96::kdd96_impl(&local_pts, params, &tree, stats);

        let base = total_clusters;
        total_clusters += local.num_clusters as u32;
        for (li, a) in local.assignments.iter().enumerate() {
            let g = subset[li];
            for &c in a.clusters() {
                labels_of[g as usize].push(base + c);
            }
            // Core status of *inner* points is exact; halo points may be
            // under-counted locally, so only inner verdicts are recorded.
            if li < inner[pi].len() && a.is_core() {
                is_core[g as usize] = true;
            }
        }
        if ctl.armed() {
            ctl.stage_done(StageId::Labeling, 1);
        }
    }
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }

    // ---- Step 3: merge through shared core points. ----
    let merge_span = stats.now();
    let mut uf = UnionFind::new(total_clusters as usize);
    let mut union_ops = 0u64;
    for (i, labels) in labels_of.iter().enumerate() {
        if is_core[i] && labels.len() > 1 {
            for w in labels.windows(2) {
                uf.union(w[0], w[1]);
                union_ops += 1;
            }
        }
    }
    let (component_of, num_clusters) = uf.compact_labels();
    stats.add(Counter::UnionOps, union_ops);
    stats.finish(Phase::UnionFind, merge_span);

    let assemble_span = stats.now();
    let assignments = (0..n)
        .map(|i| {
            if is_core[i] {
                Assignment::Core(component_of[labels_of[i][0] as usize])
            } else if labels_of[i].is_empty() {
                Assignment::Noise
            } else {
                let mut cs: Vec<u32> = labels_of[i]
                    .iter()
                    .map(|&l| component_of[l as usize])
                    .collect();
                cs.sort_unstable();
                cs.dedup();
                Assignment::Border(cs)
            }
        })
        .collect();
    stats.finish(Phase::BorderAssign, assemble_span);
    stats.finish(Phase::Total, total);
    Ok(Clustering {
        assignments,
        num_clusters,
    })
}

/// Recursively enumerates the neighbor-partition offsets whose box lies within
/// ε of the point (per-dim face distances precomputed). `acc` carries the sum of
/// squared per-dim gaps for the non-zero offsets chosen so far.
fn enumerate_halo<const D: usize>(
    dim: usize,
    acc: f64,
    eps_sq: f64,
    face_dist: &[[f64; 2]; 64],
    offs: &mut [i64; 64],
    f: &mut impl FnMut(&[i64; 64]),
) {
    if acc > eps_sq {
        return;
    }
    if dim == D {
        if offs[..D].iter().any(|&o| o != 0) {
            f(offs);
        }
        return;
    }
    offs[dim] = 0;
    enumerate_halo::<D>(dim + 1, acc, eps_sq, face_dist, offs, f);
    for (side, off) in [(0usize, -1i64), (1, 1)] {
        let gap = face_dist[dim][side];
        let add = gap * gap;
        if acc + add <= eps_sq {
            offs[dim] = off;
            enumerate_halo::<D>(dim + 1, acc + add, eps_sq, face_dist, offs, f);
        }
    }
    offs[dim] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::grid_exact;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_input() {
        let c = cit08::<2>(&[], params(1.0, 2), Cit08Config::default());
        assert_eq!(c.num_clusters, 0);
    }

    #[test]
    fn cluster_straddling_partition_boundary_merges() {
        // eps = 1, partition side = 4: a tight chain crossing x = 4.
        let pts: Vec<Point<2>> = (0..20).map(|i| p2(i as f64 * 0.5, 0.5)).collect();
        let c = cit08(&pts, params(1.0, 3), Cit08Config::default());
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn agrees_with_grid_exact_on_random_data() {
        for seed in [3u64, 4, 5] {
            let pts = lcg_points(500, 40.0, seed);
            for (eps, min_pts) in [(1.0, 4), (2.0, 8), (0.7, 2)] {
                let p = params(eps, min_pts);
                let a = cit08(&pts, p, Cit08Config::default());
                let b = grid_exact(&pts, p);
                assert_eq!(a.num_clusters, b.num_clusters, "seed={seed} eps={eps}");
                assert_eq!(a.core_count(), b.core_count(), "seed={seed} eps={eps}");
                assert_eq!(a.noise_count(), b.noise_count(), "seed={seed} eps={eps}");
            }
        }
    }

    #[test]
    fn small_partition_multiple_still_exact() {
        let pts = lcg_points(300, 30.0, 9);
        let p = params(1.5, 5);
        let tight = cit08(
            &pts,
            p,
            Cit08Config {
                partition_eps_multiple: 2.0,
            },
        );
        let reference = grid_exact(&pts, p);
        assert_eq!(tight.num_clusters, reference.num_clusters);
        assert_eq!(tight.core_count(), reference.core_count());
    }

    #[test]
    fn border_multi_assignment_survives_partitioning() {
        let pts = vec![
            p2(0.0, 0.0),
            p2(-0.5, 0.0),
            p2(-0.2, 0.5),
            p2(-0.3, -0.4),
            p2(2.6, 0.0),
            p2(3.1, 0.0),
            p2(2.8, 0.5),
            p2(2.9, -0.4),
            p2(1.3, 0.0),
        ];
        let c = cit08(&pts, params(1.4, 4), Cit08Config::default());
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.assignments[8].clusters().len(), 2);
    }
}
