//! The original DBSCAN algorithm of Ester, Kriegel, Sander, and Xu (KDD'96).
//!
//! One region query per point, cluster growth by seed expansion. The KDD'96
//! paper claimed O(n log n) time; as Section 1.1 of *DBSCAN Revisited* explains,
//! the true worst case is O(n²) *regardless of the index*, because the n region
//! queries can return Θ(n) points each (footnote 1). The index is therefore a
//! pluggable [`RangeIndex`]; the paper's implementation used an R*-tree, for
//! which our STR R-tree substitutes.
//!
//! After the classic pass (which, like the original, hands each border point to
//! the first cluster that reaches it), a post-pass re-queries the border points
//! to produce the full multi-assignment semantics of Definition 3, so results
//! are directly comparable with the grid algorithms'.

use crate::deadline::{DeadlineConfig, DeadlineReport, RunCtl, StageId};
use crate::error::DbscanError;
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Assignment, Clustering, DbscanParams};
use dbscan_geom::Point;
use dbscan_index::{KdTree, LinearScan, RTree, RangeIndex};
use std::collections::VecDeque;

const UNCLASSIFIED: u32 = u32::MAX;
const NOISE: u32 = u32::MAX - 1;

/// KDD'96 DBSCAN over any range index.
pub fn kdd96<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
) -> Clustering {
    kdd96_instrumented(points, params, index, &NoStats)
}

/// Fallible twin of [`kdd96`]: returns a typed [`DbscanError`] for non-finite
/// coordinates or an index that does not cover the point set, instead of
/// panicking.
pub fn try_kdd96<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
) -> Result<Clustering, DbscanError> {
    try_kdd96_instrumented(points, params, index, &NoStats)
}

/// [`kdd96`] with an observability sink (see [`crate::stats`]).
///
/// Phase mapping (the grid template's phases, reinterpreted — see the table in
/// EXPERIMENTS.md): the seed-expansion flood is [`Phase::Labeling`] (its region
/// queries are what decide core status), the border multi-assignment post-pass
/// is [`Phase::BorderAssign`]. Counters: one [`Counter::RangeQueries`] per
/// region query, [`Counter::RangePointsReturned`] totals their result sizes
/// (the Θ(n²) witness of footnote 1), [`Counter::IndexNodesVisited`] the
/// index traversal work. Index builds are timed by the `kdd96_*_instrumented`
/// wrappers, not here. With [`NoStats`] every recording site compiles away.
pub fn kdd96_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
    stats: &S,
) -> Clustering {
    try_kdd96_instrumented(points, params, index, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`kdd96_instrumented`]; the infallible entry points
/// delegate here.
pub fn try_kdd96_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    let total = stats.now();
    let out = try_kdd96_impl(points, params, index, stats)?;
    stats.finish(Phase::Total, total);
    Ok(out)
}

/// The body of [`kdd96_instrumented`] without the [`Phase::Total`] span, so
/// callers that embed KDD'96 as a sub-step (the index-building wrappers below,
/// CIT08's per-partition runs) can record one enclosing total themselves.
pub(crate) fn kdd96_impl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
    stats: &S,
) -> Clustering {
    try_kdd96_impl(points, params, index, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`kdd96_impl`] (no [`Phase::Total`] span of its own).
pub(crate) fn try_kdd96_impl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    try_kdd96_impl_ctl(points, params, index, stats, &RunCtl::unlimited())
}

/// Deadline-aware body of the KDD'96 algorithm. The seed-expansion flood has
/// no approximate fallback (there is no edge phase to switch to Lemma 5
/// counting), so the budget checkpoints — one per outer point and one per
/// dequeued seed — use [`RunCtl::should_stop_no_degrade`]: under `degrade`
/// the run truncates exactly as under `partial`. On truncation, core flags
/// already decided stay (each was established by a completed region query);
/// still-`UNCLASSIFIED` points and labeled-but-unverified border candidates
/// come back as noise — never a wrong cluster.
pub(crate) fn try_kdd96_impl_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    index: &impl RangeIndex<D>,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    crate::validate::check_points_finite(points)?;
    if index.len() != points.len() {
        return Err(DbscanError::IndexSizeMismatch {
            index_len: index.len(),
            points_len: points.len(),
        });
    }
    let n = points.len();
    let eps = params.eps();
    let min_pts = params.min_pts();

    let query = |q: u32, neighbors: &mut Vec<u32>| {
        neighbors.clear();
        if S::ENABLED {
            let mut work = 0u64;
            index.range_query_counted(&points[q as usize], eps, neighbors, &mut work);
            stats.bump(Counter::RangeQueries);
            stats.add(Counter::RangePointsReturned, neighbors.len() as u64);
            stats.add(Counter::IndexNodesVisited, work);
            // Per-query distribution of the aggregate above. The grid
            // algorithms' labeling counts are MinPts-early-stopped, so this
            // histogram is only meaningful for full region queries.
            stats.trace_hist(
                crate::trace::hist::HistKind::NeighborListLen,
                neighbors.len() as u64,
            );
        } else {
            index.range_query(&points[q as usize], eps, neighbors);
        }
    };

    let flood_span = stats.now();
    if ctl.armed() {
        ctl.stage_begin(StageId::Labeling, n as u64);
    }
    let mut label = vec![UNCLASSIFIED; n];
    let mut is_core = vec![false; n];
    let mut num_clusters = 0u32;
    let mut neighbors: Vec<u32> = Vec::new();
    let mut seeds: VecDeque<u32> = VecDeque::new();

    'flood: for i in 0..n as u32 {
        if ctl.armed() && ctl.should_stop_no_degrade() {
            break;
        }
        if label[i as usize] != UNCLASSIFIED {
            if ctl.armed() {
                ctl.stage_done(StageId::Labeling, 1);
            }
            continue;
        }
        query(i, &mut neighbors);
        if neighbors.len() < min_pts {
            label[i as usize] = NOISE; // may be promoted to border later
            if ctl.armed() {
                ctl.stage_done(StageId::Labeling, 1);
            }
            continue;
        }
        // i starts a new cluster; flood out from its neighborhood.
        is_core[i as usize] = true;
        let cid = num_clusters;
        num_clusters += 1;
        label[i as usize] = cid;
        seeds.clear();
        for &q in &neighbors {
            match label[q as usize] {
                UNCLASSIFIED => {
                    label[q as usize] = cid;
                    seeds.push_back(q);
                }
                NOISE => label[q as usize] = cid, // border; never expands
                _ => {}
            }
        }
        while let Some(q) = seeds.pop_front() {
            if ctl.armed() && ctl.should_stop_no_degrade() {
                break 'flood;
            }
            query(q, &mut neighbors);
            if neighbors.len() < min_pts {
                continue; // q is a border point of this cluster
            }
            is_core[q as usize] = true;
            for &r in &neighbors {
                match label[r as usize] {
                    UNCLASSIFIED => {
                        label[r as usize] = cid;
                        seeds.push_back(r);
                    }
                    NOISE => label[r as usize] = cid,
                    _ => {}
                }
            }
        }
        if ctl.armed() {
            ctl.stage_done(StageId::Labeling, 1);
        }
    }

    stats.finish(Phase::Labeling, flood_span);
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }

    // Post-pass: full border multi-assignment (Definition 3 allows a border
    // point in several clusters; the classic pass records only the first).
    let border_span = stats.now();
    if ctl.armed() {
        ctl.stage_begin(StageId::BorderAssign, n as u64);
    }
    let truncated_flood = ctl.armed() && ctl.truncated();
    let mut border_truncated = false;
    let mut assignments = Vec::with_capacity(n);
    for i in 0..n as u32 {
        if ctl.armed() && !border_truncated && ctl.should_stop_no_degrade() {
            border_truncated = true;
        }
        let a = if is_core[i as usize] {
            Assignment::Core(label[i as usize])
        } else if label[i as usize] == NOISE || label[i as usize] == UNCLASSIFIED {
            // UNCLASSIFIED survives the flood only when it was truncated.
            Assignment::Noise
        } else if border_truncated || truncated_flood {
            // A labeled non-core point is a border *candidate*; confirming
            // its (multi-)assignment needs a region query we no longer have
            // budget for — and after a truncated flood the core flags around
            // it may be incomplete. Conservative answer: noise.
            Assignment::Noise
        } else {
            query(i, &mut neighbors);
            let mut clusters: Vec<u32> = neighbors
                .iter()
                .filter(|&&q| is_core[q as usize])
                .map(|&q| label[q as usize])
                .collect();
            clusters.sort_unstable();
            clusters.dedup();
            debug_assert!(
                !clusters.is_empty(),
                "labeled border point must touch a core"
            );
            Assignment::Border(clusters)
        };
        assignments.push(a);
        if ctl.armed() {
            ctl.stage_done(StageId::BorderAssign, 1);
        }
    }
    stats.finish(Phase::BorderAssign, border_span);
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    Ok(Clustering {
        assignments,
        num_clusters: num_clusters as usize,
    })
}

/// KDD'96 over a kd-tree built on the fly.
pub fn kdd96_kdtree<const D: usize>(points: &[Point<D>], params: DbscanParams) -> Clustering {
    kdd96_kdtree_instrumented(points, params, &NoStats)
}

/// Fallible twin of [`kdd96_kdtree`].
pub fn try_kdd96_kdtree<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
) -> Result<Clustering, DbscanError> {
    try_kdd96_kdtree_instrumented(points, params, &NoStats)
}

/// [`kdd96_kdtree`] with an observability sink; the index build is timed as
/// [`Phase::StructureBuild`].
pub fn kdd96_kdtree_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
) -> Clustering {
    try_kdd96_kdtree_instrumented(points, params, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`kdd96_kdtree_instrumented`]. Validates the points before
/// building the index, so a non-finite coordinate surfaces as a typed error
/// rather than a panic inside the kd-tree construction.
pub fn try_kdd96_kdtree_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    crate::validate::check_points_finite(points)?;
    let total = stats.now();
    let index = stats.time(Phase::StructureBuild, || KdTree::build(points));
    stats.bump(Counter::KdTreeBuilds);
    let out = try_kdd96_impl(points, params, &index, stats)?;
    stats.finish(Phase::Total, total);
    Ok(out)
}

/// Deadline-aware entry point for the kd-tree-indexed KDD'96 run. KDD'96 has
/// no approximate edge phase, so `degrade` behaves like `partial` here (see
/// [`try_kdd96_impl_ctl`]); the report still records the outcome.
pub fn try_kdd96_kdtree_deadline<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    deadline: &DeadlineConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    crate::validate::check_points_finite(points)?;
    let ctl = RunCtl::new(deadline);
    let total = stats.now();
    let index = stats.time(Phase::StructureBuild, || KdTree::build(points));
    stats.bump(Counter::KdTreeBuilds);
    let out = try_kdd96_impl_ctl(points, params, &index, stats, &ctl)?;
    stats.finish(Phase::Total, total);
    Ok((out, ctl.report()))
}

/// Cancellation-aware kd-tree entry point taking an externally owned
/// [`RunCtl`], so a host (e.g. the service daemon) can interrupt the run
/// mid-flight.
pub fn try_kdd96_kdtree_ctl<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    crate::validate::check_points_finite(points)?;
    let total = stats.now();
    let index = stats.time(Phase::StructureBuild, || KdTree::build(points));
    stats.bump(Counter::KdTreeBuilds);
    let out = try_kdd96_impl_ctl(points, params, &index, stats, ctl)?;
    stats.finish(Phase::Total, total);
    Ok(out)
}

/// KDD'96 over an STR R-tree built on the fly (closest to the original setup).
pub fn kdd96_rtree<const D: usize>(points: &[Point<D>], params: DbscanParams) -> Clustering {
    kdd96_rtree_instrumented(points, params, &NoStats)
}

/// Fallible twin of [`kdd96_rtree`].
pub fn try_kdd96_rtree<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
) -> Result<Clustering, DbscanError> {
    try_kdd96_rtree_instrumented(points, params, &NoStats)
}

/// [`kdd96_rtree`] with an observability sink; the index build is timed as
/// [`Phase::StructureBuild`].
pub fn kdd96_rtree_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
) -> Clustering {
    try_kdd96_rtree_instrumented(points, params, stats).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`kdd96_rtree_instrumented`]; validates points before the
/// index build.
pub fn try_kdd96_rtree_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    crate::validate::check_points_finite(points)?;
    let total = stats.now();
    let index = stats.time(Phase::StructureBuild, || RTree::build(points));
    let out = try_kdd96_impl(points, params, &index, stats)?;
    stats.finish(Phase::Total, total);
    Ok(out)
}

/// KDD'96 with no index at all — the O(n²) straw man.
pub fn kdd96_linear<const D: usize>(points: &[Point<D>], params: DbscanParams) -> Clustering {
    kdd96_linear_instrumented(points, params, &NoStats)
}

/// Fallible twin of [`kdd96_linear`].
pub fn try_kdd96_linear<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
) -> Result<Clustering, DbscanError> {
    try_kdd96_instrumented(points, params, &LinearScan::new(points), &NoStats)
}

/// [`kdd96_linear`] with an observability sink (there is no index to build, so
/// no [`Phase::StructureBuild`] time is recorded).
pub fn kdd96_linear_instrumented<const D: usize, S: StatsSink>(
    points: &[Point<D>],
    params: DbscanParams,
    stats: &S,
) -> Clustering {
    kdd96_instrumented(points, params, &LinearScan::new(points), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::grid_exact;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_input() {
        assert_eq!(kdd96_linear::<2>(&[], params(1.0, 2)).num_clusters, 0);
    }

    #[test]
    fn basic_two_clusters_with_noise() {
        let pts = vec![
            p2(0.0, 0.0),
            p2(0.3, 0.0),
            p2(0.0, 0.3),
            p2(10.0, 10.0),
            p2(10.3, 10.0),
            p2(10.0, 10.3),
            p2(5.0, 5.0),
        ];
        for c in [
            kdd96_linear(&pts, params(0.5, 3)),
            kdd96_kdtree(&pts, params(0.5, 3)),
            kdd96_rtree(&pts, params(0.5, 3)),
        ] {
            c.validate().unwrap();
            assert_eq!(c.num_clusters, 2);
            assert!(c.assignments[6].is_noise());
        }
    }

    #[test]
    fn all_three_indexes_agree_with_grid_exact() {
        for seed in [5u64, 6] {
            let pts = lcg_points(400, 20.0, seed);
            for (eps, min_pts) in [(1.0, 4), (0.6, 2), (2.5, 12)] {
                let p = params(eps, min_pts);
                let reference = grid_exact(&pts, p);
                for (name, c) in [
                    ("linear", kdd96_linear(&pts, p)),
                    ("kdtree", kdd96_kdtree(&pts, p)),
                    ("rtree", kdd96_rtree(&pts, p)),
                ] {
                    // Cluster ids may be numbered differently; compare counts
                    // and co-membership through the canonical exact result.
                    assert_eq!(
                        c.num_clusters, reference.num_clusters,
                        "{name} seed={seed} eps={eps} min_pts={min_pts}"
                    );
                    assert_eq!(c.core_count(), reference.core_count(), "{name}");
                    assert_eq!(c.noise_count(), reference.noise_count(), "{name}");
                }
            }
        }
    }

    #[test]
    fn border_reached_by_two_clusters_is_multi_assigned() {
        // Same geometry as the border-module test: a bridge border point.
        let pts = vec![
            p2(0.0, 0.0),
            p2(-0.5, 0.0),
            p2(-0.2, 0.5),
            p2(-0.3, -0.4),
            p2(2.6, 0.0),
            p2(3.1, 0.0),
            p2(2.8, 0.5),
            p2(2.9, -0.4),
            p2(1.3, 0.0),
        ];
        let c = kdd96_linear(&pts, params(1.4, 4));
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.assignments[8].clusters().len(), 2);
    }

    #[test]
    fn quadratic_instance_terminates_correctly() {
        // Footnote 1's adversarial input: all points within ε of each other.
        let pts = vec![p2(0.0, 0.0); 300];
        let c = kdd96_linear(&pts, params(1.0, 10));
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.core_count(), 300);
    }
}
