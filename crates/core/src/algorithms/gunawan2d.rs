//! Gunawan's 2D algorithm [11] (Section 2.2): the first genuinely
//! O(n log n)-time exact DBSCAN, valid only for d = 2.
//!
//! Identical skeleton to [`grid_exact`](crate::algorithms::grid_exact) — grid of
//! side `ε/√2`, core-cell graph, connected components — but the edge computation
//! follows \[11\]: for each ε-neighbor core-cell pair `(c₁, c₂)`, every core point
//! of `c₁` runs a nearest-neighbor query against the core points of `c₂`, adding
//! the edge as soon as some nearest distance is at most ε. Gunawan answers the
//! NN queries with a per-cell Voronoi diagram; we use a per-cell kd-tree, which
//! has the same O(log n) practical query bound in 2D (see DESIGN.md).

use crate::cells::{assemble_clustering_ctl, connect_core_cells_ctl, CoreCells};
use crate::deadline::{precheck_degrade, DeadlineConfig, DeadlineReport, RunCtl, StageId};
use crate::error::{DbscanError, ResourceLimits};
use crate::stats::{Counter, NoStats, Phase, StatsSink};
use crate::types::{Clustering, DbscanParams};
use dbscan_geom::Point;
use dbscan_index::{ApproxRangeCounter, KdTree};
use std::cell::Cell as StdCell;

/// Exact 2D DBSCAN following Gunawan \[11\].
pub fn gunawan_2d(points: &[Point<2>], params: DbscanParams) -> Clustering {
    gunawan_2d_instrumented(points, params, &NoStats)
}

/// Fallible twin of [`gunawan_2d`]: returns a typed [`DbscanError`] for
/// non-finite coordinates or unrepresentable cell indices instead of
/// panicking.
pub fn try_gunawan_2d(points: &[Point<2>], params: DbscanParams) -> Result<Clustering, DbscanError> {
    try_gunawan_2d_instrumented(points, params, &ResourceLimits::UNLIMITED, &NoStats)
}

/// [`gunawan_2d`] with an observability sink (see [`crate::stats`]).
///
/// The eager per-cell NN-structure builds are timed as
/// [`Phase::StructureBuild`]; every edge test is a tree-probe decision. With
/// [`NoStats`] every recording site compiles away.
pub fn gunawan_2d_instrumented<S: StatsSink>(
    points: &[Point<2>],
    params: DbscanParams,
    stats: &S,
) -> Clustering {
    try_gunawan_2d_instrumented(points, params, &ResourceLimits::UNLIMITED, stats)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`gunawan_2d_instrumented`]; the infallible entry points
/// delegate here.
pub fn try_gunawan_2d_instrumented<S: StatsSink>(
    points: &[Point<2>],
    params: DbscanParams,
    limits: &ResourceLimits,
    stats: &S,
) -> Result<Clustering, DbscanError> {
    gunawan_2d_ctl(points, params, limits, stats, &RunCtl::unlimited())
}

/// Deadline-aware entry point: runs [`try_gunawan_2d_instrumented`] under the
/// given [`DeadlineConfig`] and additionally returns the [`DeadlineReport`].
pub fn try_gunawan_2d_deadline<S: StatsSink>(
    points: &[Point<2>],
    params: DbscanParams,
    limits: &ResourceLimits,
    deadline: &DeadlineConfig,
    stats: &S,
) -> Result<(Clustering, DeadlineReport), DbscanError> {
    let ctl = RunCtl::new(deadline);
    let out = gunawan_2d_ctl(points, params, limits, stats, &ctl)?;
    Ok((out, ctl.report()))
}

/// Cancellation-aware entry point taking an externally owned [`RunCtl`], so a
/// host (e.g. the service daemon) can interrupt the run mid-flight.
pub fn try_gunawan_2d_ctl<S: StatsSink>(
    points: &[Point<2>],
    params: DbscanParams,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    gunawan_2d_ctl(points, params, limits, stats, ctl)
}

fn gunawan_2d_ctl<S: StatsSink>(
    points: &[Point<2>],
    params: DbscanParams,
    limits: &ResourceLimits,
    stats: &S,
    ctl: &RunCtl,
) -> Result<Clustering, DbscanError> {
    precheck_degrade(points, params, ctl)?;
    let total = stats.now();
    let cc = CoreCells::try_build_ctl(points, params, limits, stats, ctl)?;
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::Labeling));
    }
    let eps = params.eps();

    // One NN structure per core cell, built eagerly like the Voronoi diagrams
    // of \[11\] (each is built exactly once, over that cell's core points).
    // The eager build is not checkpointed: it is a bounded O(n log n) pass,
    // and under `degrade` some trees may simply go unused.
    let trees: Vec<KdTree<2>> = stats.time(Phase::StructureBuild, || {
        cc.core_points_of
            .iter()
            .map(|ids| {
                KdTree::build_entries(ids.iter().map(|&i| (points[i as usize], i)).collect())
            })
            .collect()
    });
    stats.add(Counter::KdTreeBuilds, trees.len() as u64);

    let deferred = StdCell::new(0u64);
    let mut degrade_counters: Vec<Option<ApproxRangeCounter<2>>> = if ctl.may_degrade() {
        (0..cc.num_core_cells()).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut uf = connect_core_cells_ctl(&cc, stats, &deferred, ctl, |r1, r2| {
        if ctl.edge_degraded() {
            ctl.note_degraded_edge();
            stats.bump(Counter::CounterDecisions);
            return crate::algorithms::degraded_edge_test(
                points,
                &cc,
                &mut degrade_counters,
                ctl.degrade_rho(),
                r1,
                r2,
                stats,
                &deferred,
            );
        }
        stats.bump(Counter::TreeProbeDecisions);
        // Probe the smaller cell's core points against the larger cell's tree.
        let (probe, tree) = if cc.core_points_of[r1].len() <= cc.core_points_of[r2].len() {
            (&cc.core_points_of[r1], &trees[r2])
        } else {
            (&cc.core_points_of[r2], &trees[r1])
        };
        if S::ENABLED {
            let mut nodes = 0u64;
            let hit = probe.iter().any(|&p| {
                tree.nearest_within_counted(&points[p as usize], eps, &mut nodes)
                    .is_some()
            });
            stats.add(Counter::IndexNodesVisited, nodes);
            hit
        } else {
            probe
                .iter()
                .any(|&p| tree.nearest_within_impl(&points[p as usize], eps).is_some())
        }
    });
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::EdgeTests));
    }
    let out = assemble_clustering_ctl(points, &cc, &mut uf, stats, ctl);
    if ctl.aborted() {
        return Err(ctl.deadline_error(StageId::BorderAssign));
    }
    stats.finish(Phase::Total, total);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::grid_exact;
    use dbscan_geom::point::p2;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams::new(eps, min_pts).unwrap()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(gunawan_2d(&[], params(1.0, 2)).num_clusters, 0);
        let one = gunawan_2d(&[p2(0.0, 0.0)], params(1.0, 1));
        assert_eq!(one.num_clusters, 1);
    }

    #[test]
    fn agrees_with_grid_exact_on_random_data() {
        for seed in [1u64, 2, 3] {
            let pts = lcg_points(500, 25.0, seed);
            for (eps, min_pts) in [(1.0, 4), (2.0, 10), (0.5, 2)] {
                let p = params(eps, min_pts);
                let a = gunawan_2d(&pts, p);
                let b = grid_exact(&pts, p);
                assert_eq!(a.num_clusters, b.num_clusters, "seed={seed} eps={eps}");
                assert_eq!(a.assignments, b.assignments, "seed={seed} eps={eps}");
            }
        }
    }

    #[test]
    fn snake_shaped_cluster() {
        // Density-based clustering's advantage: an arbitrary-shape cluster
        // (Figure 1). A sine-wave snake stays one cluster.
        let pts: Vec<Point<2>> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.1;
                p2(t, (t * 0.7).sin() * 5.0)
            })
            .collect();
        let c = gunawan_2d(&pts, params(0.5, 3));
        assert_eq!(c.num_clusters, 1);
    }
}
