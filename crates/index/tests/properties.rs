//! Property-based tests for the spatial indexes in dimensions 3 and 7 (the
//! extremes of the paper's synthetic sweep).

use dbscan_geom::Point;
use dbscan_index::{ApproxRangeCounter, GridIndex, KdTree, LinearScan, RTree, RangeIndex};
use proptest::prelude::*;

fn arb_points<const D: usize>(max_n: usize, span: f64) -> impl Strategy<Value = Vec<Point<D>>> {
    prop::collection::vec(prop::collection::vec(-span..span, D), 1..max_n).prop_map(|rows| {
        rows.into_iter()
            .map(|row| {
                let mut c = [0.0; D];
                c.copy_from_slice(&row);
                Point(c)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trees_match_linear_in_7d(
        pts in arb_points::<7>(100, 8.0),
        q in prop::collection::vec(-9.0..9.0f64, 7),
        r in 0.0..10.0f64,
    ) {
        let mut qa = [0.0; 7];
        qa.copy_from_slice(&q);
        let q = Point(qa);
        let lin = LinearScan::new(&pts);
        let kd = KdTree::build(&pts);
        let rt = RTree::build(&pts);
        let mut expect = Vec::new();
        lin.range_query(&q, r, &mut expect);
        expect.sort_unstable();
        let mut got_kd = Vec::new();
        kd.range_query(&q, r, &mut got_kd);
        got_kd.sort_unstable();
        let mut got_rt = Vec::new();
        rt.range_query(&q, r, &mut got_rt);
        got_rt.sort_unstable();
        prop_assert_eq!(&got_kd, &expect);
        prop_assert_eq!(&got_rt, &expect);
    }

    #[test]
    fn knn_is_prefix_monotone(
        pts in arb_points::<3>(80, 10.0),
        q in prop::collection::vec(-11.0..11.0f64, 3),
    ) {
        let mut qa = [0.0; 3];
        qa.copy_from_slice(&q);
        let q = Point(qa);
        let kd = KdTree::build(&pts);
        let k5 = kd.k_nearest(&q, 5);
        let k10 = kd.k_nearest(&q, 10);
        // k5 distances are a prefix of k10 distances.
        let d5: Vec<f64> = k5.iter().map(|&(_, d)| d).collect();
        let d10: Vec<f64> = k10.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(&d10[..d5.len()], &d5[..]);
        // Distances are sorted.
        prop_assert!(d10.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn grid_count_matches_brute_force_3d(
        pts in arb_points::<3>(120, 10.0),
        eps in 0.2..6.0f64,
    ) {
        let g = GridIndex::build(&pts, eps);
        for q in 0..pts.len().min(20) as u32 {
            let brute = pts
                .iter()
                .filter(|p| p.dist_sq(&pts[q as usize]) <= eps * eps)
                .count();
            prop_assert_eq!(g.count_within_eps(&pts, q, usize::MAX), brute);
        }
    }

    #[test]
    fn counter_bounds_hold_in_7d(
        pts in arb_points::<7>(100, 6.0),
        eps in 0.5..5.0f64,
        rho in 0.01..0.9f64,
    ) {
        let c = ApproxRangeCounter::build(&pts, eps, rho);
        for q in pts.iter().take(15) {
            let lo = pts.iter().filter(|p| p.dist_sq(q) <= eps * eps).count();
            let outer = eps * (1.0 + rho);
            let hi = pts.iter().filter(|p| p.dist_sq(q) <= outer * outer).count();
            let ans = c.query(q);
            prop_assert!(lo <= ans && ans <= hi, "{lo} <= {ans} <= {hi}");
        }
        prop_assert_eq!(c.num_points(), pts.len());
    }

    #[test]
    fn count_within_cap_is_min_of_true_count(
        pts in arb_points::<3>(100, 8.0),
        r in 0.1..8.0f64,
        cap in 0usize..12,
    ) {
        let kd = KdTree::build(&pts);
        let q = pts[0];
        let full = kd.count_within(&q, r, usize::MAX);
        prop_assert_eq!(kd.count_within(&q, r, cap), full.min(cap));
    }
}
