//! Cross-validation of the grid's kd-tree-based ε-neighbor discovery against
//! the explicit offset enumeration (feasible in low dimensions only).

use dbscan_geom::grid::{base_side, neighbor_offsets};
use dbscan_geom::{CellCoord, FastHashSet, Point};
use dbscan_index::GridIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points<const D: usize>(n: usize, span: f64, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen::<f64>() * span - span / 2.0;
            }
            Point(c)
        })
        .collect()
}

fn check_against_offsets<const D: usize>(pts: &[Point<D>], eps: f64) {
    let grid = GridIndex::build(pts, eps);
    let side = base_side::<D>(eps);
    let offsets = neighbor_offsets::<D>(side, eps);

    // Index of every non-empty cell by coordinate.
    let coords: Vec<CellCoord<D>> = grid.cells().iter().map(|c| c.coord).collect();
    let occupied: FastHashSet<CellCoord<D>> = coords.iter().copied().collect();

    for (i, coord) in coords.iter().enumerate() {
        // Expected: every *occupied* offset cell that is an ε-neighbor.
        let mut expected: Vec<CellCoord<D>> = offsets
            .iter()
            .filter_map(|off| {
                let mut c = *coord;
                for (d, o) in off.iter().enumerate() {
                    c.0[d] += o;
                }
                (c != *coord && occupied.contains(&c)).then_some(c)
            })
            .filter(|c| coord.eps_neighbors(c, side, eps))
            .collect();
        expected.sort_unstable();

        let mut got: Vec<CellCoord<D>> = grid
            .neighbors_of(i as u32)
            .iter()
            .map(|&j| coords[j as usize])
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected, "cell {coord:?}");
    }
}

#[test]
fn neighbor_discovery_matches_offsets_2d() {
    for (eps, seed) in [(1.0, 1u64), (3.3, 2), (0.4, 3)] {
        let pts = random_points::<2>(500, 20.0, seed);
        check_against_offsets(&pts, eps);
    }
}

#[test]
fn neighbor_discovery_matches_offsets_3d() {
    for (eps, seed) in [(1.5, 4u64), (4.0, 5)] {
        let pts = random_points::<3>(400, 15.0, seed);
        check_against_offsets(&pts, eps);
    }
}

#[test]
fn neighbor_discovery_with_sparse_far_cells() {
    // Widely separated single-point cells: no cell should see any neighbor.
    let pts: Vec<Point<3>> = (0..20)
        .map(|i| Point([i as f64 * 1_000.0, 0.0, 0.0]))
        .collect();
    let grid = GridIndex::build(&pts, 1.0);
    for i in 0..grid.num_cells() as u32 {
        assert!(grid.neighbors_of(i).is_empty());
    }
}

#[test]
fn neighbor_discovery_dense_block() {
    // A solid block of adjacent cells: every interior cell must see the full
    // conservative neighborhood that is occupied.
    let eps = 2f64.sqrt(); // side = 1 in 2D
    let mut pts = Vec::new();
    for x in 0..9 {
        for y in 0..9 {
            pts.push(Point([x as f64 + 0.5, y as f64 + 0.5]));
        }
    }
    check_against_offsets(&pts, eps);
    let grid = GridIndex::build(&pts, eps);
    // The center cell (4.5, 4.5) sees the full 5x5 block minus itself = 24.
    let center =
        grid.cell_of_point(pts.iter().position(|p| p.coords() == &[4.5, 4.5]).unwrap() as u32);
    assert_eq!(grid.neighbors_of(center).len(), 24);
}
