//! Exact-equivalence properties of the blocked SoA distance kernels
//! (`dbscan_geom::kernels`) against the scalar `Point::dist_sq` loops they
//! replace. The kernels promise *bit-identical* results — same accumulation
//! order per candidate, blocking only across independent candidates — so
//! every assertion here is exact equality, never approximate: any drift is a
//! correctness bug in the hot path of the exact algorithm.
//!
//! Coverage axes: dimensions 2/3/5/7 (the paper's synthetic sweep extremes),
//! ragged tails (lengths straddling the 64-wide block boundary), duplicate
//! points, and adversarial ±1e308 coordinates whose squared differences
//! overflow to infinity identically on both paths.

use dbscan_geom::kernels::{
    any_within_block, bcp_block_pair, bcp_block_pair_budgeted, count_within_aos_capped,
    count_within_block, count_within_block_capped, dist_sq_one_to_block, SoaBlock,
};
use dbscan_geom::Point;
use proptest::prelude::*;

/// Coordinate pool mixing ordinary values, exact duplicates (small integer
/// grid), and the extremes of the f64 range.
fn arb_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -50.0..50.0f64,
        4 => (-4i32..4).prop_map(|v| v as f64),
        1 => Just(1e308),
        1 => Just(-1e308),
        1 => Just(0.0),
    ]
}

fn arb_points<const D: usize>(max_n: usize) -> impl Strategy<Value = Vec<Point<D>>> {
    // 0..max_n points; sizes concentrate around the BLOCK=64 boundary so the
    // ragged last chunk and the multi-chunk paths are both exercised.
    prop_oneof![
        prop::collection::vec(prop::collection::vec(arb_coord(), D), 0..20),
        prop::collection::vec(prop::collection::vec(arb_coord(), D), 60..70),
        prop::collection::vec(prop::collection::vec(arb_coord(), D), 120..max_n),
    ]
    .prop_map(|rows| {
        rows.into_iter()
            .map(|row| {
                let mut c = [0.0; D];
                c.copy_from_slice(&row);
                Point(c)
            })
            .collect()
    })
}

fn block_data<const D: usize>(pts: &[Point<D>]) -> Vec<f64> {
    let ids: Vec<u32> = (0..pts.len() as u32).collect();
    SoaBlock::gather(pts, &ids)
}

/// Scalar oracle: the exact count the capped kernels must clamp to.
fn scalar_count<const D: usize>(q: &Point<D>, pts: &[Point<D>], eps_sq: f64) -> usize {
    pts.iter().filter(|p| p.dist_sq(q) <= eps_sq).count()
}

fn scalar_bcp<const D: usize>(a: &[Point<D>], b: &[Point<D>], eps_sq: f64) -> bool {
    a.iter().any(|p| b.iter().any(|r| p.dist_sq(r) <= eps_sq))
}

macro_rules! kernel_equivalence_in_d {
    ($d:literal, $dists:ident, $counts:ident, $bcp:ident) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// Every distance the block kernel writes is bit-identical to
            /// the scalar computation — including inf from ±1e308 overflow.
            #[test]
            fn $dists(
                pts in arb_points::<$d>(200),
                q in prop::collection::vec(arb_coord(), $d),
            ) {
                let mut qa = [0.0; $d];
                qa.copy_from_slice(&q);
                let q = Point(qa);
                let data = block_data(&pts);
                let block = SoaBlock::<$d>::from_contiguous(&data, pts.len());
                let mut out = vec![0.0; pts.len()];
                dist_sq_one_to_block(&q, &block, &mut out);
                for (j, p) in pts.iter().enumerate() {
                    prop_assert_eq!(
                        out[j].to_bits(),
                        p.dist_sq(&q).to_bits(),
                        "candidate {} in D={}", j, $d
                    );
                }
            }

            /// Counting kernels (full, capped, AoS) and the any-within
            /// predicate agree exactly with the scalar filter-count.
            #[test]
            fn $counts(
                pts in arb_points::<$d>(200),
                q in prop::collection::vec(arb_coord(), $d),
                eps in 0.0..200.0f64,
                cap in 0usize..70,
            ) {
                let mut qa = [0.0; $d];
                qa.copy_from_slice(&q);
                let q = Point(qa);
                let eps_sq = eps * eps;
                let data = block_data(&pts);
                let block = SoaBlock::<$d>::from_contiguous(&data, pts.len());
                let oracle = scalar_count(&q, &pts, eps_sq);
                prop_assert_eq!(count_within_block(&q, &block, eps_sq), oracle);
                prop_assert_eq!(any_within_block(&q, &block, eps_sq), oracle > 0);
                let (capped, examined) = count_within_block_capped(&q, &block, eps_sq, cap);
                prop_assert_eq!(capped.min(cap), oracle.min(cap));
                prop_assert!(examined <= pts.len());
                prop_assert_eq!(
                    count_within_aos_capped(&q, &pts, eps_sq, cap).min(cap),
                    oracle.min(cap)
                );
            }

            /// The blocked BCP predicate — and its budgeted probe whenever it
            /// decides — matches the scalar double loop in both argument
            /// orders.
            #[test]
            fn $bcp(
                a in arb_points::<$d>(150),
                b in arb_points::<$d>(150),
                eps in 0.0..200.0f64,
                budget in 0usize..20_000,
            ) {
                let eps_sq = eps * eps;
                let da = block_data(&a);
                let db = block_data(&b);
                let ba = SoaBlock::<$d>::from_contiguous(&da, a.len());
                let bb = SoaBlock::<$d>::from_contiguous(&db, b.len());
                let oracle = scalar_bcp(&a, &b, eps_sq);
                prop_assert_eq!(bcp_block_pair(&ba, &bb, eps_sq), oracle);
                prop_assert_eq!(bcp_block_pair(&bb, &ba, eps_sq), oracle);
                // An unlimited budget always decides, and decides right.
                prop_assert_eq!(
                    bcp_block_pair_budgeted(&ba, &bb, eps_sq, usize::MAX),
                    Some(oracle)
                );
                // A finite budget may abstain (None) but must never decide
                // differently from the oracle.
                if let Some(hit) = bcp_block_pair_budgeted(&ba, &bb, eps_sq, budget) {
                    prop_assert_eq!(hit, oracle);
                }
            }
        }
    };
}

kernel_equivalence_in_d!(2, dists_match_scalar_2d, counts_match_scalar_2d, bcp_matches_scalar_2d);
kernel_equivalence_in_d!(3, dists_match_scalar_3d, counts_match_scalar_3d, bcp_matches_scalar_3d);
kernel_equivalence_in_d!(5, dists_match_scalar_5d, counts_match_scalar_5d, bcp_matches_scalar_5d);
kernel_equivalence_in_d!(7, dists_match_scalar_7d, counts_match_scalar_7d, bcp_matches_scalar_7d);
