//! The side-`ε/√d` uniform grid shared by the paper's exact (Section 3.2) and
//! ρ-approximate (Section 4.4) algorithms.
//!
//! Besides bucketing points into cells, the index precomputes, for every non-empty
//! cell, the list of non-empty *ε-neighbor* cells (cells whose minimum distance is
//! at most ε). In 2D one can enumerate the fixed 21-cell pattern; for general `d`
//! the offset pattern has `Θ((2√d+3)^d)` entries (over a million for d = 7), so we
//! instead find non-empty neighbors with a kd-tree over cell centers — the lists
//! only ever contain cells that actually exist.
//!
//! Point storage is structure-of-arrays: a single counting-sort pass groups the
//! point ids by cell into one global array (no per-cell `Vec` growth) and
//! scatters the coordinates into one contiguous `f64` lane per dimension per
//! cell, so neighborhood scans run the blocked kernels of
//! [`dbscan_geom::kernels`] over unit-stride data.

use crate::error::{check_budget, BuildError};
use crate::kdtree::KdTree;
use dbscan_geom::kernels::{self, SoaBlock};
use dbscan_geom::{CellCoord, FastHashMap, Point};
use std::mem::size_of;

/// One non-empty grid cell: its integer coordinates and the range it owns in
/// the grid's counting-sorted point-id array and SoA coordinate lanes.
pub struct Cell<const D: usize> {
    pub coord: CellCoord<D>,
    start: u32,
    len: u32,
}

impl<const D: usize> Cell<D> {
    /// Number of points in the cell.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A uniform grid over a point set with cell side `ε/√d` and precomputed
/// ε-neighbor lists.
pub struct GridIndex<const D: usize> {
    eps: f64,
    side: f64,
    cells: Vec<Cell<D>>,
    /// Point ids grouped by cell (counting sort order): cell `c` owns
    /// `point_ids[c.start .. c.start + c.len]`, ids ascending within a cell.
    point_ids: Vec<u32>,
    /// SoA coordinate lanes, one contiguous `len*D`-float region per cell
    /// starting at `start*D`; within it, lane `d` spans `[d*len, (d+1)*len)`.
    /// `soa` position `j` of a cell holds the coordinates of
    /// `point_ids[start + j]`.
    soa: Vec<f64>,
    /// For each point, the index of its cell in `cells`.
    cell_of_point: Vec<u32>,
    /// Flattened ε-neighbor lists (cell indices, excluding the cell itself).
    neighbors: Vec<u32>,
    neighbor_ranges: Vec<(u32, u32)>,
    /// Whether two points sharing a cell are guaranteed within ε (true up to
    /// floating-point rounding of the side length; when rounding makes the cell
    /// diagonal marginally exceed ε we fall back to explicit distance checks).
    same_cell_within_eps: bool,
}

impl<const D: usize> GridIndex<D> {
    /// Approximate resident heap footprint of the built index in bytes,
    /// counting the backing buffers (cells, point buckets, SoA lanes,
    /// neighbor lists). Used by hosts that cache built indexes under a byte
    /// budget; the estimate deliberately ignores allocator slack.
    pub fn approx_bytes(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<Cell<D>>()
            + self.point_ids.len() * std::mem::size_of::<u32>()
            + self.soa.len() * std::mem::size_of::<f64>()
            + self.cell_of_point.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<u32>()
            + self.neighbor_ranges.len() * std::mem::size_of::<(u32, u32)>()) as u64
    }

    /// Builds the grid for radius `eps` over `points`. Expected O(n) for the
    /// bucketing plus O(m log m) for the neighbor discovery over the `m ≤ n`
    /// non-empty cells.
    ///
    /// Panics on invalid `eps` or unrepresentable cell coordinates; callers
    /// with untrusted input should use [`GridIndex::try_build`].
    pub fn build(points: &[Point<D>], eps: f64) -> Self {
        Self::try_build(points, eps, None).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`GridIndex::build`].
    ///
    /// Rejects, with a typed [`BuildError`] instead of a panic or a silent
    /// wrap: non-positive/non-finite `eps` (which would produce a degenerate
    /// cell side), coordinates whose integer cell index overflows `i64`
    /// (today's `as i64` saturation silently merges distant points into one
    /// boundary cell), and — when `max_bytes` is given — builds whose
    /// estimated footprint (point buckets, SoA lanes, cell table, kd-tree
    /// over centers, neighbor lists) exceeds the budget, *before* the large
    /// allocations happen.
    pub fn try_build(
        points: &[Point<D>],
        eps: f64,
        max_bytes: Option<u64>,
    ) -> Result<Self, BuildError> {
        if !(eps > 0.0 && eps.is_finite()) {
            // Surface the same wording as the historical `assert!`: the side
            // is bad because eps is.
            return Err(BuildError::Cell(dbscan_geom::CellError::BadSide {
                side: dbscan_geom::grid::base_side::<D>(eps),
            }));
        }
        let side = dbscan_geom::grid::base_side::<D>(eps);

        // Fixed per-point cost of the bucketing phase: one u32 each in
        // `cell_of_point` and `point_ids`, plus D f64 coordinate lanes.
        let n = points.len() as u64;
        let per_point = (8 + 8 * D) as u64;
        check_budget("grid index", n.saturating_mul(per_point), max_bytes)?;

        // Counting-sort build, pass 1: discover cells and count occupancy.
        let mut map: FastHashMap<CellCoord<D>, u32> = FastHashMap::default();
        let mut cells: Vec<Cell<D>> = Vec::new();
        let mut cell_of_point = Vec::with_capacity(points.len());
        for p in points {
            let coord = CellCoord::try_of(p, side)?;
            let idx = *map.entry(coord).or_insert_with(|| {
                cells.push(Cell {
                    coord,
                    start: 0,
                    len: 0,
                });
                (cells.len() - 1) as u32
            });
            cells[idx as usize].len += 1;
            cell_of_point.push(idx);
        }
        // Prefix sums assign each cell its range.
        let mut running = 0u32;
        for cell in &mut cells {
            cell.start = running;
            running += cell.len;
        }
        // Pass 2: scatter ids and coordinates. The scan over points is in
        // ascending id order, so ids within a cell come out ascending.
        let mut point_ids = vec![0u32; points.len()];
        let mut soa = vec![0.0f64; points.len() * D];
        let mut cursor: Vec<u32> = cells.iter().map(|c| c.start).collect();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of_point[i] as usize;
            let pos = cursor[c] as usize;
            cursor[c] += 1;
            point_ids[pos] = i as u32;
            let cell = &cells[c];
            let (s, l) = (cell.start as usize, cell.len as usize);
            let local = pos - s;
            for d in 0..D {
                soa[s * D + d * l + local] = p[d];
            }
        }

        // The neighbor-discovery phase allocates per *cell*: a center point,
        // roughly one kd-tree node, and a (start, end) range — plus the
        // neighbor lists themselves, accounted incrementally below.
        let m = cells.len() as u64;
        let per_cell = (size_of::<Cell<D>>() + size_of::<Point<D>>() + 48 + 8) as u64;
        let fixed_bytes = n
            .saturating_mul(per_point)
            .saturating_add(m.saturating_mul(per_cell));
        check_budget("grid index", fixed_bytes, max_bytes)?;

        // Discover non-empty ε-neighbors via a kd-tree over cell centers. Two
        // cells with min-distance ≤ ε have centers within ε + diagonal = 2ε
        // (the diagonal of a side-ε/√d cell is exactly ε).
        let centers: Vec<Point<D>> = cells.iter().map(|c| c.coord.center(side)).collect();
        let tree = KdTree::build(&centers);
        let reach = eps + side * (D as f64).sqrt() + 1e-9 * eps;
        let mut neighbors = Vec::new();
        let mut neighbor_ranges = Vec::with_capacity(cells.len());
        let mut buf: Vec<u32> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            buf.clear();
            tree.for_each_within(&centers[i], reach, |j, _| {
                if j as usize != i
                    && cell
                        .coord
                        .eps_neighbors(&cells[j as usize].coord, side, eps)
                {
                    buf.push(j);
                }
                true
            });
            buf.sort_unstable();
            let start = neighbors.len() as u32;
            neighbors.extend_from_slice(&buf);
            neighbor_ranges.push((start, neighbors.len() as u32));
            // Neighbor lists dominate memory on dense grids (up to ~(2√d+3)^d
            // entries per cell); re-check the budget as they grow.
            check_budget(
                "grid index",
                fixed_bytes.saturating_add(neighbors.len() as u64 * 4),
                max_bytes,
            )?;
        }

        let same_cell_within_eps = side * side * (D as f64) <= eps * eps;
        Ok(GridIndex {
            eps,
            side,
            cells,
            point_ids,
            soa,
            cell_of_point,
            neighbors,
            neighbor_ranges,
            same_cell_within_eps,
        })
    }

    /// The radius the grid was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The cell side length `ε/√d`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// All non-empty cells.
    pub fn cells(&self) -> &[Cell<D>] {
        &self.cells
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of points in cell `cell_idx` — the payload size a per-cell
    /// task (labeling, border assignment) reports to observability layers.
    pub fn cell_population(&self, cell_idx: u32) -> usize {
        self.cells[cell_idx as usize].len()
    }

    /// Ids of the points in cell `cell_idx`, ascending.
    pub fn points_of(&self, cell_idx: u32) -> &[u32] {
        let c = &self.cells[cell_idx as usize];
        &self.point_ids[c.start as usize..(c.start + c.len) as usize]
    }

    /// SoA view of cell `cell_idx`'s coordinates; position `j` corresponds to
    /// `points_of(cell_idx)[j]`.
    pub fn cell_block(&self, cell_idx: u32) -> SoaBlock<'_, D> {
        let c = &self.cells[cell_idx as usize];
        let (s, l) = (c.start as usize, c.len as usize);
        SoaBlock::from_contiguous(&self.soa[s * D..(s + l) * D], l)
    }

    /// Index (into [`Self::cells`]) of the cell containing point `p_idx`.
    pub fn cell_of_point(&self, p_idx: u32) -> u32 {
        self.cell_of_point[p_idx as usize]
    }

    /// Indices of the non-empty ε-neighbor cells of `cell_idx` (excluding itself).
    pub fn neighbors_of(&self, cell_idx: u32) -> &[u32] {
        let (s, e) = self.neighbor_ranges[cell_idx as usize];
        &self.neighbors[s as usize..e as usize]
    }

    /// Counts dataset points within the closed ball `B(q, ε)`, where `q` is the
    /// dataset point with index `q_idx`, stopping early at `cap`.
    ///
    /// Points sharing `q`'s cell are within ε by the grid's defining property, so
    /// they are counted without distance computations; neighbor cells are scanned
    /// with the blocked SoA kernel (branchless within a block, cap check between
    /// blocks). With `cap = MinPts` this is the paper's labeling step:
    /// O(MinPts) work per neighbor cell, O(1) neighbor cells.
    pub fn count_within_eps(&self, points: &[Point<D>], q_idx: u32, cap: usize) -> usize {
        let q = &points[q_idx as usize];
        let cell_idx = self.cell_of_point[q_idx as usize];
        let eps_sq = self.eps * self.eps;

        let mut count = if self.same_cell_within_eps {
            self.cells[cell_idx as usize].len()
        } else {
            kernels::count_within_block(q, &self.cell_block(cell_idx), eps_sq)
        };
        if count >= cap {
            return count.min(cap);
        }
        for &nb in self.neighbors_of(cell_idx) {
            let (c, _) =
                kernels::count_within_block_capped(q, &self.cell_block(nb), eps_sq, cap - count);
            count += c;
            if count >= cap {
                return cap;
            }
        }
        count
    }

    /// Counted twin of [`Self::count_within_eps`]: adds to `examined` the number
    /// of points whose distance to `q` was actually computed (own-cell points
    /// taken on the grid guarantee are free and not counted). Kept separate so
    /// the labeling hot path carries no extra bookkeeping.
    pub fn count_within_eps_counted(
        &self,
        points: &[Point<D>],
        q_idx: u32,
        cap: usize,
        examined: &mut u64,
    ) -> usize {
        let q = &points[q_idx as usize];
        let cell_idx = self.cell_of_point[q_idx as usize];
        let eps_sq = self.eps * self.eps;

        let mut count = if self.same_cell_within_eps {
            self.cells[cell_idx as usize].len()
        } else {
            *examined += self.cells[cell_idx as usize].len() as u64;
            kernels::count_within_block(q, &self.cell_block(cell_idx), eps_sq)
        };
        if count >= cap {
            return count.min(cap);
        }
        for &nb in self.neighbors_of(cell_idx) {
            let (c, ex) =
                kernels::count_within_block_capped(q, &self.cell_block(nb), eps_sq, cap - count);
            *examined += ex as u64;
            count += c;
            if count >= cap {
                return cap;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn buckets_points_correctly() {
        let eps = 2.0f64.sqrt(); // side = 1.0 in 2D
        let pts = vec![p2(0.5, 0.5), p2(0.7, 0.7), p2(5.5, 0.5), p2(-0.5, -0.5)];
        let g = GridIndex::build(&pts, eps);
        assert_eq!(g.num_cells(), 3);
        assert_eq!(g.cell_of_point(0), g.cell_of_point(1));
        assert_ne!(g.cell_of_point(0), g.cell_of_point(2));
        assert_eq!(g.points_of(g.cell_of_point(0)), &[0, 1]);
    }

    #[test]
    fn soa_lanes_mirror_point_ids() {
        let pts = vec![p2(0.5, 0.5), p2(0.7, 0.1), p2(5.5, 0.5), p2(-0.5, -0.5)];
        let g = GridIndex::build(&pts, 2.0f64.sqrt());
        let mut seen = 0;
        for ci in 0..g.num_cells() as u32 {
            let ids = g.points_of(ci);
            let block = g.cell_block(ci);
            assert_eq!(block.len(), ids.len());
            for (j, &id) in ids.iter().enumerate() {
                assert_eq!(block.point(j), pts[id as usize], "cell {ci} slot {j}");
                assert_eq!(g.cell_of_point(id), ci);
            }
            seen += ids.len();
        }
        assert_eq!(seen, pts.len(), "counting sort is a permutation");
    }

    #[test]
    fn neighbor_lists_are_symmetric_and_correct() {
        let eps = 1.0;
        let pts = vec![p2(0.1, 0.1), p2(0.9, 0.1), p2(3.0, 3.0)];
        let g = GridIndex::build(&pts, eps);
        for i in 0..g.num_cells() as u32 {
            for &j in g.neighbors_of(i) {
                assert!(
                    g.neighbors_of(j).contains(&i),
                    "neighbor lists must be symmetric"
                );
                assert!(g.cells()[i as usize].coord.eps_neighbors(
                    &g.cells()[j as usize].coord,
                    g.side(),
                    eps
                ));
            }
        }
        // The far-away cell is no one's neighbor.
        let far = g.cell_of_point(2);
        assert!(g.neighbors_of(far).is_empty());
    }

    #[test]
    fn count_within_eps_matches_brute_force() {
        // Deterministic pseudo-random points via a simple LCG, no rand dependency.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 10.0
        };
        let pts: Vec<Point<2>> = (0..300).map(|_| p2(next(), next())).collect();
        let eps = 1.3;
        let g = GridIndex::build(&pts, eps);
        for q in 0..pts.len() as u32 {
            let brute = pts
                .iter()
                .filter(|p| p.dist_sq(&pts[q as usize]) <= eps * eps)
                .count();
            assert_eq!(g.count_within_eps(&pts, q, usize::MAX), brute, "q={q}");
            // Capped version agrees up to the cap.
            assert_eq!(g.count_within_eps(&pts, q, 3), brute.min(3));
            // Counted twin agrees with both.
            let mut examined = 0u64;
            assert_eq!(
                g.count_within_eps_counted(&pts, q, usize::MAX, &mut examined),
                brute
            );
            let mut capped_examined = 0u64;
            assert_eq!(
                g.count_within_eps_counted(&pts, q, 3, &mut capped_examined),
                brute.min(3)
            );
            assert!(capped_examined <= examined, "the cap can only reduce work");
        }
    }

    #[test]
    fn single_point_counts_itself() {
        let pts = vec![p2(4.0, 4.0)];
        let g = GridIndex::build(&pts, 1.0);
        assert_eq!(g.count_within_eps(&pts, 0, usize::MAX), 1);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_rejected() {
        let pts = vec![p2(0.0, 0.0)];
        let _ = GridIndex::build(&pts, 0.0);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Point<2>> = vec![];
        let g = GridIndex::build(&pts, 1.0);
        assert_eq!(g.num_cells(), 0);
    }

    #[test]
    fn try_build_rejects_bad_eps() {
        let pts = vec![p2(0.0, 0.0)];
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                GridIndex::try_build(&pts, eps, None),
                Err(BuildError::Cell(dbscan_geom::CellError::BadSide { .. }))
            ));
        }
    }

    #[test]
    fn try_build_rejects_cell_overflow() {
        // 1e308 / (1/sqrt(2)) overflows any i64 cell coordinate.
        let pts = vec![p2(0.0, 0.0), p2(1e308, 1e308)];
        assert!(matches!(
            GridIndex::try_build(&pts, 1.0, None),
            Err(BuildError::Cell(dbscan_geom::CellError::Overflow { dim: 0, .. }))
        ));
    }

    #[test]
    fn try_build_respects_byte_budget() {
        let pts: Vec<Point<2>> = (0..100).map(|i| p2(i as f64, 0.0)).collect();
        assert!(matches!(
            GridIndex::try_build(&pts, 1.0, Some(64)),
            Err(BuildError::Budget { structure: "grid index", .. })
        ));
        // A generous budget admits the same build.
        assert!(GridIndex::try_build(&pts, 1.0, Some(1 << 20)).is_ok());
    }
}
