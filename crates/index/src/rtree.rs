//! An STR bulk-loaded R-tree.
//!
//! The original KDD'96 implementation ran its region queries against an R*-tree.
//! For a static dataset, Sort-Tile-Recursive (STR) bulk loading produces packed
//! R-trees whose query performance matches or beats incrementally built R*-trees,
//! so it is the substitution used here (see DESIGN.md). Leaves hold points; every
//! node stores the exact bounding box of its subtree.

use crate::traits::RangeIndex;
use dbscan_geom::{Aabb, Point};

/// Maximum number of entries (points or child nodes) per node.
const NODE_CAP: usize = 16;

struct RNode<const D: usize> {
    bbox: Aabb<D>,
    /// Range into `entries` (leaf) or `nodes` (internal).
    start: u32,
    end: u32,
    leaf: bool,
}

/// A packed, static R-tree built with the STR algorithm.
pub struct RTree<const D: usize> {
    entries: Vec<(Point<D>, u32)>,
    nodes: Vec<RNode<D>>,
    root: Option<u32>,
}

impl<const D: usize> RTree<D> {
    /// Bulk-loads a tree over `pts`, reporting indices `0..pts.len()`.
    pub fn build(pts: &[Point<D>]) -> Self {
        let entries: Vec<(Point<D>, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect();
        Self::build_entries(entries)
    }

    /// Bulk-loads a tree over arbitrary `(point, id)` entries.
    pub fn build_entries(mut entries: Vec<(Point<D>, u32)>) -> Self {
        if entries.is_empty() {
            return RTree {
                entries,
                nodes: Vec::new(),
                root: None,
            };
        }
        str_tile(&mut entries, 0);

        // Leaf level: consecutive chunks of NODE_CAP entries.
        let mut nodes: Vec<RNode<D>> = Vec::new();
        let mut level: Vec<u32> = Vec::new();
        let mut start = 0usize;
        while start < entries.len() {
            let end = (start + NODE_CAP).min(entries.len());
            let bbox = bbox_of_points(&entries[start..end]);
            level.push(nodes.len() as u32);
            nodes.push(RNode {
                bbox,
                start: start as u32,
                end: end as u32,
                leaf: true,
            });
            start = end;
        }

        // Upper levels: group NODE_CAP consecutive children. STR ordering keeps
        // consecutive nodes spatially coherent, so packing is near-optimal.
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::with_capacity(level.len() / NODE_CAP + 1);
            let mut i = 0usize;
            while i < level.len() {
                let j = (i + NODE_CAP).min(level.len());
                debug_assert!(level[i..j].windows(2).all(|w| w[0] + 1 == w[1]));
                let mut bbox = nodes[level[i] as usize].bbox;
                for &c in &level[i + 1..j] {
                    bbox = bbox.union(&nodes[c as usize].bbox);
                }
                next.push(nodes.len() as u32);
                nodes.push(RNode {
                    bbox,
                    start: level[i],
                    end: level[j - 1] + 1,
                    leaf: false,
                });
                i = j;
            }
            level = next;
        }

        let root = Some(level[0]);
        RTree {
            entries,
            nodes,
            root,
        }
    }

    /// Bounding box of all indexed points (`None` if empty).
    pub fn bbox(&self) -> Option<Aabb<D>> {
        self.root.map(|r| self.nodes[r as usize].bbox)
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(mut node) = self.root else { return 0 };
        let mut h = 1;
        while !self.nodes[node as usize].leaf {
            node = self.nodes[node as usize].start;
            h += 1;
        }
        h
    }

    /// Calls `f(id, dist_sq)` for every point within `B(q, r)`; `f` returning
    /// `false` stops the traversal.
    pub fn for_each_within(&self, q: &Point<D>, r: f64, mut f: impl FnMut(u32, f64) -> bool) {
        if let Some(root) = self.root {
            self.visit(root, q, r * r, &mut f);
        }
    }

    fn visit(
        &self,
        node: u32,
        q: &Point<D>,
        r_sq: f64,
        f: &mut impl FnMut(u32, f64) -> bool,
    ) -> bool {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > r_sq {
            return true;
        }
        if n.leaf {
            for (p, id) in &self.entries[n.start as usize..n.end as usize] {
                let d = p.dist_sq(q);
                if d <= r_sq && !f(*id, d) {
                    return false;
                }
            }
            true
        } else {
            (n.start..n.end).all(|c| self.visit(c, q, r_sq, f))
        }
    }

    /// Counted twin of [`Self::for_each_within`]: adds to `nodes_visited` every
    /// node touched, including nodes rejected by the bounding-box test. Separate
    /// from the uncounted recursion so the hot path stays unchanged.
    pub fn for_each_within_counted(
        &self,
        q: &Point<D>,
        r: f64,
        nodes_visited: &mut u64,
        mut f: impl FnMut(u32, f64) -> bool,
    ) {
        if let Some(root) = self.root {
            self.visit_counted(root, q, r * r, nodes_visited, &mut f);
        }
    }

    fn visit_counted(
        &self,
        node: u32,
        q: &Point<D>,
        r_sq: f64,
        nodes_visited: &mut u64,
        f: &mut impl FnMut(u32, f64) -> bool,
    ) -> bool {
        *nodes_visited += 1;
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > r_sq {
            return true;
        }
        if n.leaf {
            for (p, id) in &self.entries[n.start as usize..n.end as usize] {
                let d = p.dist_sq(q);
                if d <= r_sq && !f(*id, d) {
                    return false;
                }
            }
            true
        } else {
            (n.start..n.end).all(|c| self.visit_counted(c, q, r_sq, nodes_visited, f))
        }
    }

    fn nn(&self, node: u32, q: &Point<D>, bound: &mut f64, best: &mut Option<(u32, f64)>) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > *bound {
            return;
        }
        if n.leaf {
            for (p, id) in &self.entries[n.start as usize..n.end as usize] {
                let d = p.dist_sq(q);
                if d <= *bound && best.is_none_or(|(_, bd)| d < bd) {
                    *best = Some((*id, d));
                    *bound = d;
                }
            }
        } else {
            // Order children by min distance for faster bound shrinkage.
            let mut order: Vec<(f64, u32)> = (n.start..n.end)
                .map(|c| (self.nodes[c as usize].bbox.min_dist_sq(q), c))
                .collect();
            order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (d, c) in order {
                if d > *bound {
                    break;
                }
                self.nn(c, q, bound, best);
            }
        }
    }
}

fn bbox_of_points<const D: usize>(entries: &[(Point<D>, u32)]) -> Aabb<D> {
    let mut bbox = Aabb::point(entries[0].0);
    for (p, _) in &entries[1..] {
        bbox.extend(p);
    }
    bbox
}

/// Sort-Tile-Recursive partitioning: sort by dimension `dim`, cut into vertical
/// slabs sized so that each slab holds an integral number of eventual leaf pages,
/// and recurse on the next dimension within each slab.
fn str_tile<const D: usize>(entries: &mut [(Point<D>, u32)], dim: usize) {
    let n = entries.len();
    if n <= NODE_CAP || dim >= D {
        return;
    }
    entries.sort_unstable_by(|a, b| a.0[dim].partial_cmp(&b.0[dim]).unwrap());
    if dim == D - 1 {
        return;
    }
    let pages = n.div_ceil(NODE_CAP);
    let remaining_dims = (D - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = (n.div_ceil(slabs.max(1))).div_ceil(NODE_CAP) * NODE_CAP;
    let mut start = 0usize;
    while start < n {
        let end = (start + slab_size.max(NODE_CAP)).min(n);
        str_tile(&mut entries[start..end], dim + 1);
        start = end;
    }
}

impl<const D: usize> RangeIndex<D> for RTree<D> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn range_query(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>) {
        self.for_each_within(q, r, |id, _| {
            out.push(id);
            true
        });
    }

    fn count_within(&self, q: &Point<D>, r: f64, cap: usize) -> usize {
        if cap == 0 {
            return 0;
        }
        let mut count = 0;
        self.for_each_within(q, r, |_, _| {
            count += 1;
            count < cap
        });
        count
    }

    fn nearest_within(&self, q: &Point<D>, r: f64) -> Option<(u32, f64)> {
        let root = self.root?;
        let mut best = None;
        let mut bound = r * r;
        self.nn(root, q, &mut bound, &mut best);
        best
    }

    fn range_query_counted(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>, work: &mut u64) {
        self.for_each_within_counted(q, r, work, |id, _| {
            out.push(id);
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbscan_geom::point::{p2, p3};

    fn grid_points(n_side: usize) -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                pts.push(p2(x as f64, y as f64));
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::<3>::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.nearest_within(&p3(0.0, 0.0, 0.0), 1.0).is_none());
    }

    #[test]
    fn small_tree_is_single_leaf() {
        let pts = vec![p2(0.0, 0.0), p2(1.0, 1.0)];
        let tree = RTree::build(&pts);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.count_within(&p2(0.0, 0.0), 2.0, 10), 2);
    }

    #[test]
    fn multi_level_tree_builds() {
        let pts = grid_points(40); // 1600 points -> at least 3 levels at cap 16
        let tree = RTree::build(&pts);
        assert!(tree.height() >= 3, "height = {}", tree.height());
        assert_eq!(tree.len(), 1600);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = grid_points(25);
        let tree = RTree::build(&pts);
        let lin = LinearScan::new(&pts);
        for q in [p2(7.7, 3.2), p2(0.0, 24.0), p2(-2.0, -2.0)] {
            for r in [0.9, 3.0, 10.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                tree.range_query(&q, r, &mut a);
                lin.range_query(&q, r, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "q={q:?} r={r}");
            }
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = grid_points(20);
        let tree = RTree::build(&pts);
        let lin = LinearScan::new(&pts);
        for q in [p2(11.4, 3.9), p2(25.0, 25.0)] {
            let a = tree.nearest_within(&q, 1e9).unwrap();
            let b = lin.nearest_within(&q, 1e9).unwrap();
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn root_bbox_covers_everything() {
        let pts = grid_points(12);
        let tree = RTree::build(&pts);
        let bbox = tree.bbox().unwrap();
        for p in &pts {
            assert!(bbox.contains(p));
        }
    }

    #[test]
    fn counted_range_query_matches_uncounted() {
        let pts = grid_points(25);
        let tree = RTree::build(&pts);
        for q in [p2(7.7, 3.2), p2(-2.0, -2.0)] {
            for r in [0.9, 3.0, 10.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let mut work = 0u64;
                tree.range_query(&q, r, &mut a);
                tree.range_query_counted(&q, r, &mut b, &mut work);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "q={q:?} r={r}");
                assert!(work >= 1);
            }
        }
    }

    #[test]
    fn duplicate_points() {
        let pts: Vec<Point<2>> = (0..200).map(|_| p2(5.0, 5.0)).collect();
        let tree = RTree::build(&pts);
        assert_eq!(tree.count_within(&p2(5.0, 5.0), 0.0, usize::MAX), 200);
    }
}
