//! The range-query interface shared by all point indexes.

use dbscan_geom::Point;

/// An immutable index over a fixed point set, answering the ball queries DBSCAN
/// needs. Implementations return *original* point indices (`u32`, as every dataset
/// in the paper fits comfortably below 2³² points).
pub trait RangeIndex<const D: usize> {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends to `out` the indices of all points within the closed ball `B(q, r)`.
    ///
    /// This is the "region query" of the original KDD'96 algorithm. `out` is not
    /// cleared, so callers can reuse one buffer across queries.
    fn range_query(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>);

    /// Counts points within `B(q, r)`, stopping early once `cap` points have been
    /// seen. Returns `min(|B(q, r) ∩ P|, cap)`.
    ///
    /// The early stop is what makes grid-based core-point labeling run in
    /// O(MinPts) amortized time per point (Section 2.2).
    fn count_within(&self, q: &Point<D>, r: f64, cap: usize) -> usize;

    /// Returns the index and squared distance of the nearest indexed point to `q`
    /// among those within the closed ball `B(q, r)`, or `None` if the ball is empty.
    fn nearest_within(&self, q: &Point<D>, r: f64) -> Option<(u32, f64)>;

    /// Whether any indexed point lies within the closed ball `B(q, r)`.
    fn any_within(&self, q: &Point<D>, r: f64) -> bool {
        self.count_within(q, r, 1) > 0
    }

    /// Like [`RangeIndex::range_query`], additionally adding to `work` a measure
    /// of the traversal effort: tree indexes count nodes touched (including
    /// nodes rejected by their bounding box — the rejection test is work), the
    /// linear scan counts points examined.
    ///
    /// The default ignores `work` so that structures without a meaningful
    /// traversal metric still satisfy the trait; the observability layer in
    /// `dbscan-core` only ever reads the counter as "relative effort", never as
    /// an exact node count.
    fn range_query_counted(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>, work: &mut u64) {
        let _ = work;
        self.range_query(q, r, out);
    }
}
