//! Typed failures for index construction.
//!
//! The access structures in this crate are built over untrusted spans (the CLI
//! feeds them raw CSV data) and can be asked to materialize multi-gigabyte
//! neighbor lists or counter hierarchies. The fallible `try_build` entry points
//! return a [`BuildError`] instead of saturating cell coordinates or dying on
//! OOM; the classic infallible builders delegate to them and panic with the
//! same message, preserving their historical signatures.

use dbscan_geom::CellError;
use std::fmt;

/// Why an index could not be built.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BuildError {
    /// A grid-cell coordinate could not be computed (bad side length derived
    /// from `eps`, or a coordinate whose cell index overflows `i64`).
    Cell(CellError),
    /// A scalar build parameter is out of its valid range.
    Param {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The estimated memory footprint of the structure exceeds the caller's
    /// byte budget; the build is refused before any large allocation happens.
    Budget {
        /// Which structure was being built.
        structure: &'static str,
        /// Estimated bytes the build would need.
        estimated_bytes: u64,
        /// The configured budget it exceeds.
        budget_bytes: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Cell(e) => write!(f, "{e}"),
            BuildError::Param { what, value } => {
                write!(f, "{what} must be positive (and not absurdly small): got {value}")
            }
            BuildError::Budget {
                structure,
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "building the {structure} would need an estimated {estimated_bytes} \
                 bytes, exceeding the {budget_bytes}-byte memory budget"
            ),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Cell(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CellError> for BuildError {
    fn from(e: CellError) -> Self {
        BuildError::Cell(e)
    }
}

/// Checks an estimated allocation size against an optional byte budget.
pub(crate) fn check_budget(
    structure: &'static str,
    estimated_bytes: u64,
    budget_bytes: Option<u64>,
) -> Result<(), BuildError> {
    match budget_bytes {
        Some(budget) if estimated_bytes > budget => Err(BuildError::Budget {
            structure,
            estimated_bytes,
            budget_bytes: budget,
        }),
        _ => Ok(()),
    }
}
