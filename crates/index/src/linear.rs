//! The trivial linear-scan index.
//!
//! Every query walks the whole point set. This is (a) the oracle that the tree and
//! grid structures are validated against in tests, and (b) a faithful lower bound
//! for what the original KDD'96 algorithm degenerates to on adversarial inputs
//! (footnote 1 of the paper).

use crate::traits::RangeIndex;
use dbscan_geom::Point;

/// A "no index" index: stores the points and scans them on every query.
pub struct LinearScan<'a, const D: usize> {
    pts: &'a [Point<D>],
}

impl<'a, const D: usize> LinearScan<'a, D> {
    /// Wraps a point slice. O(1).
    pub fn new(pts: &'a [Point<D>]) -> Self {
        LinearScan { pts }
    }
}

impl<const D: usize> RangeIndex<D> for LinearScan<'_, D> {
    fn len(&self) -> usize {
        self.pts.len()
    }

    fn range_query(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>) {
        let r_sq = r * r;
        for (i, p) in self.pts.iter().enumerate() {
            if p.dist_sq(q) <= r_sq {
                out.push(i as u32);
            }
        }
    }

    fn count_within(&self, q: &Point<D>, r: f64, cap: usize) -> usize {
        // Shares the blocked early-stop-at-cap loop with the kd-tree and grid
        // implementations (see `dbscan_geom::kernels`): branchless within a
        // block, cap consulted between blocks, overshoot clamped.
        dbscan_geom::kernels::count_within_aos_capped(q, self.pts, r * r, cap).min(cap)
    }

    fn nearest_within(&self, q: &Point<D>, r: f64) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        let r_sq = r * r;
        for (i, p) in self.pts.iter().enumerate() {
            let d = p.dist_sq(q);
            if d <= r_sq && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i as u32, d));
            }
        }
        best
    }

    fn range_query_counted(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>, work: &mut u64) {
        // Every query examines the full point set — that is the point of this
        // index as a baseline.
        *work += self.pts.len() as u64;
        self.range_query(q, r, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn sample() -> Vec<Point<2>> {
        vec![p2(0.0, 0.0), p2(1.0, 0.0), p2(0.0, 2.0), p2(5.0, 5.0)]
    }

    #[test]
    fn range_query_reports_closed_ball() {
        let pts = sample();
        let idx = LinearScan::new(&pts);
        let mut out = Vec::new();
        idx.range_query(&p2(0.0, 0.0), 2.0, &mut out);
        assert_eq!(out, vec![0, 1, 2]); // point at distance exactly 2 included
    }

    #[test]
    fn count_within_caps() {
        let pts = sample();
        let idx = LinearScan::new(&pts);
        assert_eq!(idx.count_within(&p2(0.0, 0.0), 10.0, 2), 2);
        assert_eq!(idx.count_within(&p2(0.0, 0.0), 10.0, 100), 4);
        assert_eq!(idx.count_within(&p2(100.0, 100.0), 1.0, 100), 0);
    }

    #[test]
    fn nearest_within_finds_closest() {
        let pts = sample();
        let idx = LinearScan::new(&pts);
        let (i, d) = idx.nearest_within(&p2(0.9, 0.0), 10.0).unwrap();
        assert_eq!(i, 1);
        assert!((d - 0.01).abs() < 1e-12);
        assert!(idx.nearest_within(&p2(100.0, 0.0), 1.0).is_none());
    }

    #[test]
    fn empty_index() {
        let pts: Vec<Point<2>> = vec![];
        let idx = LinearScan::new(&pts);
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(&p2(0.0, 0.0), 1.0, 5), 0);
        assert!(!idx.any_within(&p2(0.0, 0.0), 1.0));
    }
}
