//! Spatial index substrates for the *DBSCAN Revisited* reproduction.
//!
//! The paper's algorithms and baselines need four different access structures,
//! all built here from scratch:
//!
//! * [`LinearScan`] — the trivial O(n)-per-query index; the ground truth every
//!   other structure is tested against, and the honest worst case of the original
//!   KDD'96 algorithm;
//! * [`KdTree`] — a bulk-built kd-tree supporting ε-range reporting, capped range
//!   counting, and nearest-neighbor queries; used by the KDD96 baseline, by the
//!   Gunawan-style edge computation, and as the practical stand-in for the
//!   Agarwal et al. BCP routine (see DESIGN.md, substitutions);
//! * [`RTree`] — an STR bulk-loaded R-tree, standing in for the R*-tree that
//!   backed the original DBSCAN implementation;
//! * [`GridIndex`] — the side-`ε/√d` grid of Sections 2.2/3.2 with per-cell point
//!   lists and precomputed ε-neighbor cell lists (found through a kd-tree over
//!   non-empty cell centers, since enumerating all `(2√d+3)^d` offsets is
//!   infeasible for d ≥ 5);
//! * [`ApproxRangeCounter`] — the quadtree-like hierarchical grid of Lemma 5
//!   answering approximate range-count queries in O(1) expected time for fixed ρ.

pub mod counter;
pub mod error;
pub mod grid;
pub mod kdtree;
pub mod linear;
pub mod rtree;
pub mod traits;

pub use counter::ApproxRangeCounter;
pub use error::BuildError;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use linear::LinearScan;
pub use rtree::RTree;
pub use traits::RangeIndex;
